//! The wire protocol: length-prefixed binary frames over any
//! byte stream (`std::net::TcpStream` in practice).
//!
//! ## Framing
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts the payload only and must be ≤ [`MAX_FRAME`]; a peer
//! sending a larger length is malformed and the connection is dropped.
//! All integers are little-endian.
//!
//! ## Request payloads
//!
//! ```text
//! LOOKUP          (0x01): key u64
//! INSERT          (0x02): key u64, sat_len u32, sat_len × word u64
//! DELETE          (0x03): key u64
//! PING            (0x04): (empty)
//! SHARD_OP        (0x05): shard u32, epoch u64, then one of
//!                         LOOKUP/INSERT/DELETE encodings above
//! STATUS          (0x06): (empty)
//! EPOCH_SET       (0x07): epoch u64
//! MIGRATE_EXPORT  (0x08): shard u32, chunk u32
//! MIGRATE_INSTALL (0x09): shard u32, total u32, chunk u32,
//!                         byte_len u32, byte_len × u8
//! ```
//!
//! The cluster opcodes (`SHARD_OP` and up) address a *global* shard on a
//! multi-tenant node and carry the sender's cluster-map epoch; a
//! single-engine [`TcpServer`](crate::TcpServer) answers them with
//! [`ServeError::Protocol`]. Shard images larger than [`MAX_FRAME`]
//! migrate as numbered chunks: the receiver pulls `MIGRATE_EXPORT`
//! chunk-by-chunk (the source snapshots on chunk 0 and serves the rest
//! from that staging image) and pushes `MIGRATE_INSTALL` chunks, with
//! the install taking effect when the last chunk lands.
//!
//! ## Response payloads
//!
//! ```text
//! FOUND        (0x01): sat_len u32, sat_len × word u64
//! MISS         (0x02): (empty)
//! INSERT_OK    (0x03): (empty)
//! DELETE_FOUND (0x04): (empty)
//! DELETE_MISS  (0x05): (empty)
//! PONG         (0x06): (empty)
//! NODE_STATUS  (0x07): epoch u64, n u32, n × shard u32
//! EPOCH_OK     (0x08): (empty)
//! EXPORT_CHUNK (0x09): total u32, chunk u32, byte_len u32, byte_len × u8
//! INSTALL_OK   (0x0A): installed u8 (1 once the last chunk landed)
//! ERROR        (0xFF): code u8, code-specific payload (see
//!                      [`ServeError`] encoding below)
//! ```
//!
//! Error codes: `OVERLOADED=1` (shard u32, depth u32), `TIMED_OUT=2`,
//! `SHUTTING_DOWN=3`, `DISCONNECTED=4`, `DICT=5` (tag u8 + payload),
//! `PROTOCOL=6` (string), `WRONG_SHARD=7` (shard u32), `STALE_EPOCH=8`
//! (request u64, node u64). Dictionary tags mirror
//! [`pdm_dict::DictError`]; strings are `len u32` + UTF-8 bytes, and
//! I/O faults carry their stable [`pdm::IoFaultKind::label`].

use crate::scheduler::{Op, Reply};
use crate::ServeError;
use pdm::{IoFaultKind, Word};
use pdm_dict::DictError;
use std::io::{self, Read, Write};

/// Hard cap on a frame payload (1 MiB) — far above any legitimate
/// message (the widest satellite payload is a few KiB) and small enough
/// that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Request opcodes.
pub mod opcode {
    /// Look up a key.
    pub const LOOKUP: u8 = 0x01;
    /// Insert a key with satellite words.
    pub const INSERT: u8 = 0x02;
    /// Delete a key.
    pub const DELETE: u8 = 0x03;
    /// Liveness probe.
    pub const PING: u8 = 0x04;
    /// A shard-addressed operation on a multi-tenant cluster node.
    pub const SHARD_OP: u8 = 0x05;
    /// Ask a node for its epoch and hosted shards.
    pub const STATUS: u8 = 0x06;
    /// Raise a node's cluster-map epoch.
    pub const EPOCH_SET: u8 = 0x07;
    /// Pull one chunk of a shard's frozen image.
    pub const MIGRATE_EXPORT: u8 = 0x08;
    /// Push one chunk of a shard image to install.
    pub const MIGRATE_INSTALL: u8 = 0x09;
}

/// Response status bytes.
pub mod status {
    /// Lookup hit; satellite words follow.
    pub const FOUND: u8 = 0x01;
    /// Lookup miss.
    pub const MISS: u8 = 0x02;
    /// Insert acknowledged durable.
    pub const INSERT_OK: u8 = 0x03;
    /// Delete applied; the key had been present.
    pub const DELETE_FOUND: u8 = 0x04;
    /// Delete applied; the key was absent.
    pub const DELETE_MISS: u8 = 0x05;
    /// Reply to [`super::opcode::PING`].
    pub const PONG: u8 = 0x06;
    /// Reply to [`super::opcode::STATUS`]: epoch + hosted shards.
    pub const NODE_STATUS: u8 = 0x07;
    /// Reply to [`super::opcode::EPOCH_SET`].
    pub const EPOCH_OK: u8 = 0x08;
    /// Reply to [`super::opcode::MIGRATE_EXPORT`]: one image chunk.
    pub const EXPORT_CHUNK: u8 = 0x09;
    /// Reply to [`super::opcode::MIGRATE_INSTALL`].
    pub const INSTALL_OK: u8 = 0x0A;
    /// A [`super::ServeError`] follows.
    pub const ERROR: u8 = 0xFF;
}

mod errcode {
    pub const OVERLOADED: u8 = 1;
    pub const TIMED_OUT: u8 = 2;
    pub const SHUTTING_DOWN: u8 = 3;
    pub const DISCONNECTED: u8 = 4;
    pub const DICT: u8 = 5;
    pub const PROTOCOL: u8 = 6;
    pub const WRONG_SHARD: u8 = 7;
    pub const STALE_EPOCH: u8 = 8;
}

mod dicttag {
    pub const CAPACITY: u8 = 1;
    pub const DUPLICATE: u8 = 2;
    pub const BUCKET_OVERFLOW: u8 = 3;
    pub const LEVELS: u8 = 4;
    pub const EXPANSION: u8 = 5;
    pub const UNSUPPORTED: u8 = 6;
    pub const SAT_WIDTH: u8 = 7;
    pub const IO: u8 = 8;
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// A dictionary operation.
    Op(Op),
    /// A liveness probe.
    Ping,
    /// A dictionary operation addressed to a global shard on a
    /// multi-tenant cluster node, carrying the sender's map epoch.
    ShardOp {
        /// Global shard index.
        shard: u32,
        /// The cluster-map epoch the sender routed under.
        epoch: u64,
        /// The operation itself.
        op: Op,
    },
    /// Ask the node for its epoch and hosted shards.
    Status,
    /// Raise the node's cluster-map epoch (idempotent; never lowers).
    EpochSet {
        /// The epoch to raise to.
        epoch: u64,
    },
    /// Pull chunk `chunk` of `shard`'s frozen image. Chunk 0 freezes
    /// the snapshot; later chunks read from the same staging image.
    MigrateExport {
        /// Global shard index.
        shard: u32,
        /// Zero-based chunk index.
        chunk: u32,
    },
    /// Push chunk `chunk` of `total` of a shard image; the install
    /// takes effect when the last chunk lands.
    MigrateInstall {
        /// Global shard index.
        shard: u32,
        /// Total number of chunks in this image.
        total: u32,
        /// Zero-based chunk index.
        chunk: u32,
        /// This chunk's bytes.
        bytes: Vec<u8>,
    },
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// The operation succeeded.
    Reply(Reply),
    /// Answer to [`WireRequest::Ping`].
    Pong,
    /// Answer to [`WireRequest::Status`].
    NodeStatus {
        /// The node's cluster-map epoch.
        epoch: u64,
        /// Global shard indices the node currently hosts.
        shards: Vec<u32>,
    },
    /// Answer to [`WireRequest::EpochSet`].
    EpochOk,
    /// Answer to [`WireRequest::MigrateExport`]: one image chunk.
    ExportChunk {
        /// Total number of chunks in the frozen image.
        total: u32,
        /// The chunk index this answers.
        chunk: u32,
        /// The chunk's bytes.
        bytes: Vec<u8>,
    },
    /// Answer to [`WireRequest::MigrateInstall`].
    InstallOk {
        /// True once the final chunk landed and the shard is live.
        installed: bool,
    },
    /// The operation failed.
    Err(ServeError),
}

// ---------------------------------------------------------------- framing

/// Write one frame (length prefix + payload).
///
/// # Errors
/// Propagates stream write failures; refuses payloads over [`MAX_FRAME`]
/// with [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean EOF **before** the length
/// prefix (the peer closed between messages); EOF mid-frame is an error.
///
/// # Errors
/// Propagates stream read failures; rejects length prefixes over
/// [`MAX_FRAME`] with [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first read so a clean close is distinguishable from a
    // truncated frame.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// What one polling read attempt produced (see [`read_frame_poll`]).
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The read timeout expired with **no** frame bytes consumed — the
    /// connection is idle; re-check the stop condition and poll again.
    Idle,
    /// Clean EOF between frames.
    Eof,
    /// `should_stop` returned true while a frame was only partially read.
    Stopped,
}

/// Read one frame from a stream with a read timeout installed, without
/// ever desynchronizing on a timeout that lands *mid-frame*: a
/// `WouldBlock`/`TimedOut` before the first byte of a frame returns
/// [`FrameRead::Idle`] (the caller re-checks its stop flag and calls
/// again), while a timeout after a frame has started keeps accumulating
/// the partial bytes — consulting `should_stop` between attempts so a
/// peer that dies mid-frame cannot wedge shutdown.
///
/// # Errors
/// Propagates stream errors other than the timeout kinds; rejects
/// oversized length prefixes with [`io::ErrorKind::InvalidData`] and
/// EOF inside a frame with [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame_poll<R: Read>(
    r: &mut R,
    should_stop: impl Fn() -> bool,
) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 {
                    return Ok(FrameRead::Idle);
                }
                if should_stop() {
                    return Ok(FrameRead::Stopped);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if should_stop() {
                    return Ok(FrameRead::Stopped);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(payload))
}

// ------------------------------------------------------------- primitives

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(ServeError::Protocol(format!(
                "truncated frame: wanted {n} bytes at offset {}",
                self.at
            )));
        };
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn words(&mut self) -> Result<Vec<Word>, ServeError> {
        let n = self.u32()? as usize;
        // The frame cap already bounds n, but check against the
        // remaining bytes so a lying count fails cleanly.
        if n > (self.buf.len() - self.at) / 8 {
            return Err(ServeError::Protocol(format!(
                "satellite count {n} exceeds frame remainder"
            )));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ServeError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, ServeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::Protocol("non-utf8 string in frame".into()))
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing bytes in frame",
                self.buf.len() - self.at
            )))
        }
    }
}

fn put_words(out: &mut Vec<u8>, words: &[Word]) {
    out.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Lookup(key) => {
            out.push(opcode::LOOKUP);
            out.extend_from_slice(&key.to_le_bytes());
        }
        Op::Insert(key, sat) => {
            out.push(opcode::INSERT);
            out.extend_from_slice(&key.to_le_bytes());
            put_words(out, sat);
        }
        Op::Delete(key) => {
            out.push(opcode::DELETE);
            out.extend_from_slice(&key.to_le_bytes());
        }
    }
}

fn take_op(c: &mut Cursor<'_>) -> Result<Op, ServeError> {
    Ok(match c.u8()? {
        opcode::LOOKUP => Op::Lookup(c.u64()?),
        opcode::INSERT => {
            let key = c.u64()?;
            let sat = c.words()?;
            Op::Insert(key, sat)
        }
        opcode::DELETE => Op::Delete(c.u64()?),
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown inner opcode {other:#04x}"
            )))
        }
    })
}

// --------------------------------------------------------------- requests

/// Encode a request payload.
#[must_use]
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        WireRequest::Op(op) => put_op(&mut out, op),
        WireRequest::Ping => out.push(opcode::PING),
        WireRequest::ShardOp { shard, epoch, op } => {
            out.push(opcode::SHARD_OP);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            put_op(&mut out, op);
        }
        WireRequest::Status => out.push(opcode::STATUS),
        WireRequest::EpochSet { epoch } => {
            out.push(opcode::EPOCH_SET);
            out.extend_from_slice(&epoch.to_le_bytes());
        }
        WireRequest::MigrateExport { shard, chunk } => {
            out.push(opcode::MIGRATE_EXPORT);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&chunk.to_le_bytes());
        }
        WireRequest::MigrateInstall {
            shard,
            total,
            chunk,
            bytes,
        } => {
            out.push(opcode::MIGRATE_INSTALL);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&total.to_le_bytes());
            out.extend_from_slice(&chunk.to_le_bytes());
            put_bytes(&mut out, bytes);
        }
    }
    out
}

/// Decode a request payload.
///
/// # Errors
/// [`ServeError::Protocol`] on unknown opcodes, truncation, or trailing
/// bytes.
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, ServeError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        opcode::LOOKUP => WireRequest::Op(Op::Lookup(c.u64()?)),
        opcode::INSERT => {
            let key = c.u64()?;
            let sat = c.words()?;
            WireRequest::Op(Op::Insert(key, sat))
        }
        opcode::DELETE => WireRequest::Op(Op::Delete(c.u64()?)),
        opcode::PING => WireRequest::Ping,
        opcode::SHARD_OP => {
            let shard = c.u32()?;
            let epoch = c.u64()?;
            let op = take_op(&mut c)?;
            WireRequest::ShardOp { shard, epoch, op }
        }
        opcode::STATUS => WireRequest::Status,
        opcode::EPOCH_SET => WireRequest::EpochSet { epoch: c.u64()? },
        opcode::MIGRATE_EXPORT => WireRequest::MigrateExport {
            shard: c.u32()?,
            chunk: c.u32()?,
        },
        opcode::MIGRATE_INSTALL => {
            let shard = c.u32()?;
            let total = c.u32()?;
            let chunk = c.u32()?;
            let bytes = c.bytes()?;
            WireRequest::MigrateInstall {
                shard,
                total,
                chunk,
                bytes,
            }
        }
        other => return Err(ServeError::Protocol(format!("unknown opcode {other:#04x}"))),
    };
    c.done()?;
    Ok(req)
}

// -------------------------------------------------------------- responses

/// Encode a response payload.
#[must_use]
pub fn encode_response(resp: &WireResponse) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        WireResponse::Reply(Reply::Lookup(Some(sat))) => {
            out.push(status::FOUND);
            put_words(&mut out, sat);
        }
        WireResponse::Reply(Reply::Lookup(None)) => out.push(status::MISS),
        WireResponse::Reply(Reply::Inserted) => out.push(status::INSERT_OK),
        WireResponse::Reply(Reply::Deleted(true)) => out.push(status::DELETE_FOUND),
        WireResponse::Reply(Reply::Deleted(false)) => out.push(status::DELETE_MISS),
        WireResponse::Pong => out.push(status::PONG),
        WireResponse::NodeStatus { epoch, shards } => {
            out.push(status::NODE_STATUS);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
            for s in shards {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        WireResponse::EpochOk => out.push(status::EPOCH_OK),
        WireResponse::ExportChunk {
            total,
            chunk,
            bytes,
        } => {
            out.push(status::EXPORT_CHUNK);
            out.extend_from_slice(&total.to_le_bytes());
            out.extend_from_slice(&chunk.to_le_bytes());
            put_bytes(&mut out, bytes);
        }
        WireResponse::InstallOk { installed } => {
            out.push(status::INSTALL_OK);
            out.push(u8::from(*installed));
        }
        WireResponse::Err(e) => {
            out.push(status::ERROR);
            encode_error(&mut out, e);
        }
    }
    out
}

fn encode_error(out: &mut Vec<u8>, e: &ServeError) {
    match e {
        ServeError::Overloaded { shard, depth } => {
            out.push(errcode::OVERLOADED);
            out.extend_from_slice(&(*shard as u32).to_le_bytes());
            out.extend_from_slice(&(*depth as u32).to_le_bytes());
        }
        ServeError::TimedOut => out.push(errcode::TIMED_OUT),
        ServeError::ShuttingDown => out.push(errcode::SHUTTING_DOWN),
        ServeError::Disconnected => out.push(errcode::DISCONNECTED),
        ServeError::Dict(d) => {
            out.push(errcode::DICT);
            encode_dict_error(out, d);
        }
        ServeError::Protocol(msg) => {
            out.push(errcode::PROTOCOL);
            put_string(out, msg);
        }
        ServeError::WrongShard { shard } => {
            out.push(errcode::WRONG_SHARD);
            out.extend_from_slice(&shard.to_le_bytes());
        }
        ServeError::StaleEpoch { request, node } => {
            out.push(errcode::STALE_EPOCH);
            out.extend_from_slice(&request.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
        }
    }
}

fn encode_dict_error(out: &mut Vec<u8>, d: &DictError) {
    match d {
        DictError::CapacityExhausted { capacity } => {
            out.push(dicttag::CAPACITY);
            out.extend_from_slice(&(*capacity as u64).to_le_bytes());
        }
        DictError::DuplicateKey(key) => {
            out.push(dicttag::DUPLICATE);
            out.extend_from_slice(&key.to_le_bytes());
        }
        DictError::BucketOverflow { key } => {
            out.push(dicttag::BUCKET_OVERFLOW);
            out.extend_from_slice(&key.to_le_bytes());
        }
        DictError::LevelsExhausted { key } => {
            out.push(dicttag::LEVELS);
            out.extend_from_slice(&key.to_le_bytes());
        }
        DictError::ExpansionFailure(msg) => {
            out.push(dicttag::EXPANSION);
            put_string(out, msg);
        }
        DictError::UnsupportedParams(msg) => {
            out.push(dicttag::UNSUPPORTED);
            put_string(out, msg);
        }
        DictError::SatelliteWidth { expected, got } => {
            out.push(dicttag::SAT_WIDTH);
            out.extend_from_slice(&(*expected as u32).to_le_bytes());
            out.extend_from_slice(&(*got as u32).to_le_bytes());
        }
        DictError::Io { kind, disk, addr } => {
            out.push(dicttag::IO);
            put_string(out, kind.label());
            out.extend_from_slice(&(*disk as u32).to_le_bytes());
            out.extend_from_slice(&(*addr as u64).to_le_bytes());
        }
        // Both error enums are non_exhaustive; unknown variants cross
        // the wire as their display string.
        other => {
            out.push(dicttag::EXPANSION);
            put_string(out, &other.to_string());
        }
    }
}

/// Decode a response payload.
///
/// # Errors
/// [`ServeError::Protocol`] on unknown status bytes, truncation, or
/// trailing bytes.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, ServeError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        status::FOUND => WireResponse::Reply(Reply::Lookup(Some(c.words()?))),
        status::MISS => WireResponse::Reply(Reply::Lookup(None)),
        status::INSERT_OK => WireResponse::Reply(Reply::Inserted),
        status::DELETE_FOUND => WireResponse::Reply(Reply::Deleted(true)),
        status::DELETE_MISS => WireResponse::Reply(Reply::Deleted(false)),
        status::PONG => WireResponse::Pong,
        status::NODE_STATUS => {
            let epoch = c.u64()?;
            let n = c.u32()? as usize;
            if n > (payload.len()) / 4 {
                return Err(ServeError::Protocol(format!(
                    "shard count {n} exceeds frame remainder"
                )));
            }
            let shards = (0..n).map(|_| c.u32()).collect::<Result<_, _>>()?;
            WireResponse::NodeStatus { epoch, shards }
        }
        status::EPOCH_OK => WireResponse::EpochOk,
        status::EXPORT_CHUNK => {
            let total = c.u32()?;
            let chunk = c.u32()?;
            let bytes = c.bytes()?;
            WireResponse::ExportChunk {
                total,
                chunk,
                bytes,
            }
        }
        status::INSTALL_OK => WireResponse::InstallOk {
            installed: c.u8()? != 0,
        },
        status::ERROR => WireResponse::Err(decode_error(&mut c)?),
        other => return Err(ServeError::Protocol(format!("unknown status {other:#04x}"))),
    };
    c.done()?;
    Ok(resp)
}

fn decode_error(c: &mut Cursor<'_>) -> Result<ServeError, ServeError> {
    Ok(match c.u8()? {
        errcode::OVERLOADED => ServeError::Overloaded {
            shard: c.u32()? as usize,
            depth: c.u32()? as usize,
        },
        errcode::TIMED_OUT => ServeError::TimedOut,
        errcode::SHUTTING_DOWN => ServeError::ShuttingDown,
        errcode::DISCONNECTED => ServeError::Disconnected,
        errcode::DICT => ServeError::Dict(decode_dict_error(c)?),
        errcode::PROTOCOL => ServeError::Protocol(c.string()?),
        errcode::WRONG_SHARD => ServeError::WrongShard { shard: c.u32()? },
        errcode::STALE_EPOCH => ServeError::StaleEpoch {
            request: c.u64()?,
            node: c.u64()?,
        },
        other => return Err(ServeError::Protocol(format!("unknown error code {other}"))),
    })
}

fn decode_dict_error(c: &mut Cursor<'_>) -> Result<DictError, ServeError> {
    Ok(match c.u8()? {
        dicttag::CAPACITY => DictError::CapacityExhausted {
            capacity: c.u64()? as usize,
        },
        dicttag::DUPLICATE => DictError::DuplicateKey(c.u64()?),
        dicttag::BUCKET_OVERFLOW => DictError::BucketOverflow { key: c.u64()? },
        dicttag::LEVELS => DictError::LevelsExhausted { key: c.u64()? },
        dicttag::EXPANSION => DictError::ExpansionFailure(c.string()?),
        dicttag::UNSUPPORTED => DictError::UnsupportedParams(c.string()?),
        dicttag::SAT_WIDTH => DictError::SatelliteWidth {
            expected: c.u32()? as usize,
            got: c.u32()? as usize,
        },
        dicttag::IO => {
            let label = c.string()?;
            let kind = match label.as_str() {
                "disk_dead" => IoFaultKind::DiskDead,
                "transient" => IoFaultKind::TransientError,
                "checksum_mismatch" => IoFaultKind::ChecksumMismatch,
                "torn_write" => IoFaultKind::TornWrite,
                "misconfigured" => IoFaultKind::Misconfigured,
                other => {
                    return Err(ServeError::Protocol(format!("unknown fault label {other:?}")))
                }
            };
            DictError::Io {
                kind,
                disk: c.u32()? as usize,
                addr: c.u64()? as usize,
            }
        }
        other => return Err(ServeError::Protocol(format!("unknown dict tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: WireRequest) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: WireResponse) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(WireRequest::Op(Op::Lookup(u64::MAX)));
        roundtrip_req(WireRequest::Op(Op::Insert(7, vec![])));
        roundtrip_req(WireRequest::Op(Op::Insert(7, vec![1, 2, u64::MAX])));
        roundtrip_req(WireRequest::Op(Op::Delete(0)));
        roundtrip_req(WireRequest::Ping);
    }

    #[test]
    fn cluster_requests_roundtrip() {
        for op in [Op::Lookup(9), Op::Insert(3, vec![1, 2]), Op::Delete(u64::MAX)] {
            roundtrip_req(WireRequest::ShardOp {
                shard: 17,
                epoch: 3,
                op,
            });
        }
        roundtrip_req(WireRequest::Status);
        roundtrip_req(WireRequest::EpochSet { epoch: u64::MAX });
        roundtrip_req(WireRequest::MigrateExport { shard: 0, chunk: 7 });
        roundtrip_req(WireRequest::MigrateInstall {
            shard: 2,
            total: 3,
            chunk: 1,
            bytes: vec![0xAB; 100],
        });
        roundtrip_req(WireRequest::MigrateInstall {
            shard: 2,
            total: 1,
            chunk: 0,
            bytes: vec![],
        });
    }

    #[test]
    fn cluster_responses_roundtrip() {
        roundtrip_resp(WireResponse::NodeStatus {
            epoch: 5,
            shards: vec![0, 7, 31],
        });
        roundtrip_resp(WireResponse::NodeStatus {
            epoch: 0,
            shards: vec![],
        });
        roundtrip_resp(WireResponse::EpochOk);
        roundtrip_resp(WireResponse::ExportChunk {
            total: 4,
            chunk: 3,
            bytes: vec![1, 2, 3],
        });
        roundtrip_resp(WireResponse::InstallOk { installed: true });
        roundtrip_resp(WireResponse::InstallOk { installed: false });
        roundtrip_resp(WireResponse::Err(ServeError::WrongShard { shard: 8 }));
        roundtrip_resp(WireResponse::Err(ServeError::StaleEpoch {
            request: 1,
            node: 2,
        }));
    }

    #[test]
    fn malformed_cluster_frames_are_typed_errors() {
        // ShardOp with an unknown inner opcode.
        let mut bad = vec![opcode::SHARD_OP];
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.push(opcode::PING); // ping is not a valid inner op
        assert!(matches!(decode_request(&bad), Err(ServeError::Protocol(_))));
        // Install whose byte count exceeds the frame.
        let mut lying = vec![opcode::MIGRATE_INSTALL];
        lying.extend_from_slice(&0u32.to_le_bytes());
        lying.extend_from_slice(&1u32.to_le_bytes());
        lying.extend_from_slice(&0u32.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&lying),
            Err(ServeError::Protocol(_))
        ));
        // NodeStatus whose shard count exceeds the frame.
        let mut lying = vec![status::NODE_STATUS];
        lying.extend_from_slice(&0u64.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&lying),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(WireResponse::Reply(Reply::Lookup(None)));
        roundtrip_resp(WireResponse::Reply(Reply::Lookup(Some(vec![9, 8]))));
        roundtrip_resp(WireResponse::Reply(Reply::Inserted));
        roundtrip_resp(WireResponse::Reply(Reply::Deleted(true)));
        roundtrip_resp(WireResponse::Reply(Reply::Deleted(false)));
        roundtrip_resp(WireResponse::Pong);
    }

    #[test]
    fn errors_roundtrip() {
        for e in [
            ServeError::Overloaded { shard: 3, depth: 256 },
            ServeError::TimedOut,
            ServeError::ShuttingDown,
            ServeError::Disconnected,
            ServeError::Protocol("bad frame".into()),
            ServeError::Dict(DictError::CapacityExhausted { capacity: 1024 }),
            ServeError::Dict(DictError::DuplicateKey(42)),
            ServeError::Dict(DictError::BucketOverflow { key: 5 }),
            ServeError::Dict(DictError::LevelsExhausted { key: 6 }),
            ServeError::Dict(DictError::ExpansionFailure("graph".into())),
            ServeError::Dict(DictError::UnsupportedParams("d too small".into())),
            ServeError::Dict(DictError::SatelliteWidth { expected: 2, got: 5 }),
            ServeError::Dict(DictError::Io {
                kind: IoFaultKind::ChecksumMismatch,
                disk: 7,
                addr: 99,
            }),
        ] {
            roundtrip_resp(WireResponse::Err(e));
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(matches!(
            decode_request(&[]),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            decode_request(&[0xEE]),
            Err(ServeError::Protocol(_))
        ));
        // Truncated lookup key.
        assert!(matches!(
            decode_request(&[opcode::LOOKUP, 1, 2]),
            Err(ServeError::Protocol(_))
        ));
        // Trailing garbage.
        let mut ok = encode_request(&WireRequest::Ping);
        ok.push(0);
        assert!(matches!(decode_request(&ok), Err(ServeError::Protocol(_))));
        // Satellite count exceeding the frame.
        let mut lying = vec![opcode::INSERT];
        lying.extend_from_slice(&7u64.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&lying),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            decode_response(&[0x77]),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn framing_roundtrips_over_a_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn oversized_and_truncated_frames_rejected() {
        let mut r = io::Cursor::new((MAX_FRAME as u32 + 1).to_le_bytes().to_vec());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Length prefix promises 10 bytes, stream has 2.
        let mut bytes = 10u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2]);
        let mut r = io::Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // EOF splitting the length prefix itself.
        let mut r = io::Cursor::new(vec![5u8, 0]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME + 1])
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidInput
        );
    }
}
