//! # `pdm-server` — the concurrent request-serving engine
//!
//! The paper's headline use case is "an environment with many concurrent
//! lookups and updates" (webmail/HTTP servers, Section 1): many clients,
//! each retrieving a block's worth of data from a huge set, in a highly
//! random fashion. Its argument for deterministic structures there is
//! twofold — worst-case (not expected) I/O bounds survive adversarial
//! load, and the no-central-directory / never-move-data discipline makes
//! concurrency control trivial.
//!
//! This crate is the serving layer that turns those properties into a
//! system:
//!
//! * **Shard-parallel batch accumulation** ([`ServeEngine`]): operations
//!   from any number of concurrent clients are routed to per-shard
//!   worker threads, and each worker **coalesces** its queued requests
//!   into `lookup_batch` / `insert_batch` calls — so concurrent traffic
//!   amortizes parallel I/O rounds exactly as the batch planner promises
//!   (one round of `D` disks serves many keys), instead of paying the
//!   full per-op cost under a lock as one-op-per-acquisition serving
//!   does.
//! * **Admission control** ([`queue::BoundedQueue`]): per-shard queues
//!   are bounded; a full queue rejects with [`ServeError::Overloaded`]
//!   at submission time (backpressure, never unbounded growth), and
//!   every admitted request carries a deadline — requests that outlive
//!   it are answered [`ServeError::TimedOut`], never silently dropped.
//! * **Graceful shutdown** ([`ServeEngine::shutdown`]): queues close
//!   (new submissions get [`ServeError::ShuttingDown`]), workers drain
//!   and execute everything already admitted, then run a journal
//!   checkpoint ([`pdm_dict::Dict::checkpoint`]) so the served image is
//!   always [`pdm_dict::Dict::recover`]-consistent.
//! * **Crash fidelity**: workers watch their shard's crash-point
//!   injection ([`pdm::FaultPlan::crash_after`]); once a crash fires, no
//!   further request is acknowledged (clients see
//!   [`ServeError::Disconnected`], exactly like a killed process's
//!   dropped connections) — so "every acked write is durable" is a
//!   testable property of the engine, not an aspiration.
//! * **A wire protocol** ([`protocol`], [`TcpServer`], [`TcpClient`]):
//!   a length-prefixed binary protocol over `std::net` TCP, so the
//!   engine serves out-of-process clients with zero dependencies.
//!
//! In-process clients use [`DictClient`] (cloneable, `Send + Sync`);
//! its sync calls block for the reply, and [`DictClient::submit`]
//! pipelines without waiting so a single client can keep a shard's
//! coalescing window full.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod netfault;
pub mod protocol;
pub mod queue;
pub mod scheduler;
pub mod server;

pub use client::{DictClient, Pending, TcpClient};
pub use netfault::{ChaosNet, Dir, FrameAction, LinkStats, NetFault, NetFaultPlan};
pub use scheduler::{
    EngineConfig, EngineStats, Op, Reply, ServeEngine, ServeMetrics, SERVE_LOOKUP_CENTI_IOS,
};
pub use server::TcpServer;

use pdm_dict::DictError;

/// Errors of the serving layer. Dictionary-level failures pass through
/// as [`ServeError::Dict`]; everything else is a property of serving
/// (admission, deadlines, lifecycle, the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The target shard's queue was full at submission: the engine is at
    /// capacity and applies backpressure instead of queueing unboundedly.
    /// Retry later (ideally with jitter) — nothing was enqueued.
    Overloaded {
        /// Shard whose queue was full.
        shard: usize,
        /// The configured queue bound it was sitting at.
        depth: usize,
    },
    /// The request was admitted but its deadline passed before a worker
    /// executed it; it was **not** applied.
    TimedOut,
    /// The engine is shutting down and admits no new requests. Requests
    /// admitted before shutdown still execute and reply.
    ShuttingDown,
    /// The serving process died (crash injection fired, or a worker
    /// vanished) before this request was acknowledged. Like a broken TCP
    /// connection, the request's effect is **in doubt**: recovery
    /// ([`pdm_dict::Dict::recover`]) decides, and only acknowledged
    /// writes are guaranteed durable.
    Disconnected,
    /// The dictionary executed the operation and reported an error
    /// (duplicate key, capacity, I/O fault, ...).
    Dict(DictError),
    /// A malformed frame, an unknown opcode, or an I/O failure on the
    /// wire.
    Protocol(String),
    /// A shard-addressed request reached a node that does not host that
    /// shard (the client's cluster map is wrong or mid-update). Refresh
    /// the map and retry on the right node.
    WrongShard {
        /// The global shard the request addressed.
        shard: u32,
    },
    /// A shard-addressed request carried a cluster-map epoch older than
    /// the node's. The client must refresh its map before retrying —
    /// acting on a stale map could read a moved shard's leftovers.
    StaleEpoch {
        /// The epoch the request carried.
        request: u64,
        /// The epoch the node is at.
        node: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { shard, depth } => {
                write!(f, "shard {shard} overloaded (queue at bound {depth})")
            }
            ServeError::TimedOut => write!(f, "request deadline passed before execution"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Disconnected => {
                write!(f, "server connection lost before acknowledgment (effect in doubt)")
            }
            ServeError::Dict(e) => write!(f, "dictionary error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::WrongShard { shard } => {
                write!(f, "node does not host shard {shard}")
            }
            ServeError::StaleEpoch { request, node } => {
                write!(
                    f,
                    "request epoch {request} is stale (node is at epoch {node})"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Dict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DictError> for ServeError {
    fn from(e: DictError) -> Self {
        ServeError::Dict(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = ServeError::Overloaded { shard: 3, depth: 64 };
        assert!(e.to_string().contains("shard 3"));
        assert!(ServeError::TimedOut.to_string().contains("deadline"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
        assert!(ServeError::Disconnected.to_string().contains("in doubt"));
        let d: ServeError = DictError::DuplicateKey(9).into();
        assert!(d.to_string().contains('9'));
        assert!(std::error::Error::source(&d).is_some());
        let w = ServeError::WrongShard { shard: 11 };
        assert!(w.to_string().contains("shard 11"));
        let s = ServeError::StaleEpoch { request: 2, node: 5 };
        assert!(s.to_string().contains("epoch 2"));
        assert!(s.to_string().contains("epoch 5"));
    }
}
