//! Bounded admission queues and one-shot reply slots — the two blocking
//! primitives the engine is built from (`std::sync` only).
//!
//! [`BoundedQueue`] is the admission-control point: `push` never blocks
//! and never queues past the bound — a full queue is an immediate,
//! typed rejection, which is what keeps the engine's memory and tail
//! latency bounded under overload. Workers block in
//! [`BoundedQueue::drain`], which hands back *everything* queued (up to
//! a cap) in one wakeup — the coalescing window.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recover from mutex poisoning: every critical section here leaves the
/// queue in a valid state (pushes and pops are single `VecDeque` calls),
/// so a panicking peer cannot corrupt it.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a [`BoundedQueue::push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRefused {
    /// The queue sat at its bound.
    Full,
    /// The queue was closed ([`BoundedQueue::close`]).
    Closed,
}

/// A closable MPSC queue with a hard bound and batch draining.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled on push and on close; workers wait on it in `drain`.
    nonempty: Condvar,
    bound: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue refusing pushes past `bound` items.
    ///
    /// # Panics
    /// Panics if `bound == 0` (a queue that can hold nothing cannot
    /// serve anything).
    #[must_use]
    pub fn new(bound: usize) -> Self {
        assert!(bound > 0, "queue bound must be positive");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            bound,
        }
    }

    /// The configured bound.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Items currently queued (racy by nature; for gauges).
    #[must_use]
    pub fn depth(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// Enqueue `item`, or refuse without queueing: [`PushRefused::Full`]
    /// at the bound (backpressure), [`PushRefused::Closed`] after
    /// [`close`](Self::close). Never blocks.
    ///
    /// # Errors
    /// Returns the item back alongside the refusal so the caller can
    /// reply to it (nothing is ever silently dropped).
    pub fn push(&self, item: T) -> Result<usize, (PushRefused, T)> {
        let mut s = lock(&self.state);
        if s.closed {
            return Err((PushRefused::Closed, item));
        }
        if s.items.len() >= self.bound {
            return Err((PushRefused::Full, item));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Block until at least one item is queued (or the queue is closed),
    /// then pop up to `max` items — the coalescing window: everything
    /// that accumulated while the worker was busy comes out as one
    /// batch. Returns `None` only when the queue is closed **and**
    /// empty: the drain-then-exit contract of graceful shutdown.
    pub fn drain(&self, max: usize) -> Option<Vec<T>> {
        let mut s = lock(&self.state);
        loop {
            if !s.items.is_empty() {
                let n = s.items.len().min(max);
                return Some(s.items.drain(..n).collect());
            }
            if s.closed {
                return None;
            }
            s = self
                .nonempty
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Like [`drain`](Self::drain) but gives up after `timeout`,
    /// returning an empty batch (used by workers that must poll a side
    /// condition while idle).
    pub fn drain_timeout(&self, max: usize, timeout: Duration) -> Option<Vec<T>> {
        let deadline = Instant::now() + timeout;
        let mut s = lock(&self.state);
        loop {
            if !s.items.is_empty() {
                let n = s.items.len().min(max);
                return Some(s.items.drain(..n).collect());
            }
            if s.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(Vec::new());
            }
            let (guard, _) = self
                .nonempty
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s = guard;
        }
    }

    /// Close the queue: subsequent pushes are refused, blocked drains
    /// wake, and drains keep returning queued items until empty (so a
    /// graceful shutdown serves everything already admitted).
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.nonempty.notify_all();
    }

    /// Whether [`close`](Self::close) was called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }
}

/// A write-once reply slot a client blocks on (`Arc<OneShot<_>>` pairs a
/// request with its response channel).
#[derive(Debug)]
pub struct OneShot<T> {
    value: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> Default for OneShot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OneShot<T> {
    /// An empty slot.
    #[must_use]
    pub fn new() -> Self {
        OneShot {
            value: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Fill the slot and wake the waiter. First write wins; a second
    /// write is discarded (e.g. a worker answering a request the client
    /// already gave up on) and reported as `false`.
    pub fn put(&self, value: T) -> bool {
        let mut v = lock(&self.value);
        if v.is_some() {
            return false;
        }
        *v = Some(value);
        drop(v);
        self.ready.notify_all();
        true
    }

    /// Block until the slot is filled and take the value.
    pub fn wait(&self) -> T {
        let mut v = lock(&self.value);
        loop {
            if let Some(value) = v.take() {
                return value;
            }
            v = self
                .ready
                .wait(v)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Block until the slot is filled or `deadline` passes.
    pub fn wait_deadline(&self, deadline: Instant) -> Option<T> {
        let mut v = lock(&self.value);
        loop {
            if let Some(value) = v.take() {
                return Some(value);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(v, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            v = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_respects_bound_and_returns_item() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        let (why, item) = q.push(3).unwrap_err();
        assert_eq!(why, PushRefused::Full);
        assert_eq!(item, 3, "a refused item comes back to the caller");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn drain_takes_everything_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain(3), Some(vec![0, 1, 2]));
        assert_eq!(q.drain(10), Some(vec![3, 4]));
    }

    #[test]
    fn closed_queue_refuses_pushes_but_drains_dry() {
        let q = BoundedQueue::new(8);
        q.push(7).unwrap();
        q.close();
        assert!(q.is_closed());
        let (why, _) = q.push(8).unwrap_err();
        assert_eq!(why, PushRefused::Closed);
        assert_eq!(q.drain(10), Some(vec![7]), "admitted items still drain");
        assert_eq!(q.drain(10), None, "closed and empty ends the worker");
    }

    #[test]
    fn drain_blocks_until_a_push_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || q2.drain(4));
        std::thread::sleep(Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(worker.join().unwrap(), Some(vec![42]));
    }

    #[test]
    fn drain_timeout_returns_empty_when_idle() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert_eq!(q.drain_timeout(4, Duration::from_millis(5)), Some(vec![]));
    }

    #[test]
    fn oneshot_first_write_wins() {
        let s = OneShot::new();
        assert!(s.put(1));
        assert!(!s.put(2));
        assert_eq!(s.wait(), 1);
    }

    #[test]
    fn oneshot_wait_deadline_times_out_empty() {
        let s: OneShot<u8> = OneShot::new();
        assert_eq!(s.wait_deadline(Instant::now() + Duration::from_millis(5)), None);
    }

    #[test]
    fn oneshot_crosses_threads() {
        let s = Arc::new(OneShot::new());
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || s2.wait());
        std::thread::sleep(Duration::from_millis(10));
        s.put(99u64);
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
