//! Client handles: the in-process [`DictClient`] and the out-of-process
//! [`TcpClient`].

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, WireRequest, WireResponse,
};
use crate::queue::OneShot;
use crate::scheduler::{Op, OpResult, Reply, Shared};
use crate::ServeError;
use pdm::Word;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A cloneable, thread-safe handle onto a [`ServeEngine`]. Any number of
/// threads may hold clones and call concurrently; each call routes to
/// the key's shard queue.
///
/// The sync calls ([`lookup`](Self::lookup), [`insert`](Self::insert),
/// [`delete`](Self::delete)) block until the engine replies — at most
/// the engine deadline plus one coalescing window. [`submit`](Self::submit)
/// pipelines: it returns a [`Pending`] immediately, so one thread can
/// keep many operations in flight and fill the shard's coalescing
/// window on its own.
///
/// [`ServeEngine`]: crate::ServeEngine
#[derive(Clone)]
pub struct DictClient {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for DictClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DictClient")
            .field("shards", &self.shared.queues.len())
            .finish_non_exhaustive()
    }
}

/// An operation submitted through [`DictClient::submit`] whose reply has
/// not been awaited yet. Dropping a `Pending` abandons the reply (the
/// operation still executes).
#[derive(Debug)]
#[must_use = "the reply is lost unless waited on"]
pub struct Pending {
    slot: Arc<OneShot<OpResult>>,
}

impl Pending {
    /// Block until the engine replies.
    pub fn wait(self) -> OpResult {
        self.slot.wait()
    }

    /// Block until the engine replies or `timeout` passes (`None`). A
    /// healthy engine always answers within its configured deadline;
    /// `None` therefore means the worker is gone (e.g. it panicked) —
    /// callers use this to degrade with a typed error instead of
    /// hanging forever on a reply that will never come.
    pub fn wait_timeout(self, timeout: Duration) -> Option<OpResult> {
        self.slot.wait_deadline(std::time::Instant::now() + timeout)
    }
}

impl DictClient {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        DictClient { shared }
    }

    /// Submit without waiting; pair with [`Pending::wait`].
    ///
    /// Pipelined operations may be reordered within one coalescing
    /// window (inserts before deletes before lookups), so only
    /// operations without mutual ordering constraints should be in
    /// flight together — wait for the ack when ordering matters.
    ///
    /// # Errors
    /// Admission refusals: [`ServeError::Overloaded`],
    /// [`ServeError::ShuttingDown`], [`ServeError::Disconnected`].
    pub fn submit(&self, op: Op) -> Result<Pending, ServeError> {
        let slot = self.shared.submit(op, self.shared.cfg.deadline)?;
        Ok(Pending { slot })
    }

    /// Like [`submit`](Self::submit) with an explicit deadline instead
    /// of the engine default.
    ///
    /// # Errors
    /// Same as [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        op: Op,
        deadline: Duration,
    ) -> Result<Pending, ServeError> {
        let slot = self.shared.submit(op, deadline)?;
        Ok(Pending { slot })
    }

    /// Look up `key`, blocking for the answer.
    ///
    /// # Errors
    /// Admission refusals, [`ServeError::TimedOut`], or a passed-through
    /// [`ServeError::Dict`].
    pub fn lookup(&self, key: u64) -> Result<Option<Vec<Word>>, ServeError> {
        match self.submit(Op::Lookup(key))?.wait()? {
            Reply::Lookup(satellite) => Ok(satellite),
            other => Err(ServeError::Protocol(format!(
                "engine answered lookup with {other:?}"
            ))),
        }
    }

    /// Insert `key` with satellite words, blocking for the durable ack.
    ///
    /// # Errors
    /// Admission refusals, [`ServeError::TimedOut`], or a passed-through
    /// [`ServeError::Dict`] (e.g. duplicate key).
    pub fn insert(&self, key: u64, satellite: &[Word]) -> Result<(), ServeError> {
        match self.submit(Op::Insert(key, satellite.to_vec()))?.wait()? {
            Reply::Inserted => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "engine answered insert with {other:?}"
            ))),
        }
    }

    /// Delete `key`, blocking for the ack. Returns whether the key had
    /// been present.
    ///
    /// # Errors
    /// Admission refusals, [`ServeError::TimedOut`], or a passed-through
    /// [`ServeError::Dict`].
    pub fn delete(&self, key: u64) -> Result<bool, ServeError> {
        match self.submit(Op::Delete(key))?.wait()? {
            Reply::Deleted(was_present) => Ok(was_present),
            other => Err(ServeError::Protocol(format!(
                "engine answered delete with {other:?}"
            ))),
        }
    }

    /// Number of shards behind this handle.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shared.queues.len()
    }
}

/// A blocking wire-protocol client over one TCP connection
/// (one-request-one-response; open several connections for pipelining —
/// the server coalesces across connections anyway).
///
/// With a deadline installed ([`set_deadline`](Self::set_deadline) or
/// [`connect_timeout`](Self::connect_timeout)), every request's read
/// waits at most that long before surfacing [`ServeError::TimedOut`]
/// instead of hanging on a dead peer. A timed-out connection is
/// **poisoned** — the late response may still be in flight, so the
/// stream position is untrustworthy and every later request answers
/// [`ServeError::Disconnected`]; reconnect to continue.
#[derive(Debug)]
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    deadline: Option<Duration>,
    poisoned: bool,
}

impl TcpClient {
    /// Connect to a [`TcpServer`](crate::TcpServer).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?, None)
    }

    /// Connect with a bound on the connection attempt **and** install the
    /// same bound as the per-request deadline. A dead or unreachable peer
    /// surfaces as a typed error within `timeout`, never as a hang.
    ///
    /// # Errors
    /// Propagates connection failures, including
    /// [`io::ErrorKind::TimedOut`] when the attempt exceeds `timeout`.
    pub fn connect_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Self> {
        let mut last = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => return Self::from_stream(stream, Some(timeout)),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no socket addresses resolved")
        }))
    }

    fn from_stream(stream: TcpStream, deadline: Option<Duration>) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadline)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpClient {
            reader,
            writer: BufWriter::new(stream),
            deadline,
            poisoned: false,
        })
    }

    /// Install (or with `None` remove) the per-request deadline: the
    /// longest any single [`request`](Self::request) blocks waiting for
    /// the response before answering [`ServeError::TimedOut`].
    ///
    /// # Errors
    /// Propagates the socket-option failure.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(deadline)?;
        self.deadline = deadline;
        Ok(())
    }

    /// The installed per-request deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether a previous timeout poisoned this connection (the stream
    /// position is untrustworthy; reconnect to continue).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// One request/response exchange.
    ///
    /// # Errors
    /// [`ServeError::Protocol`] on wire failures or malformed frames,
    /// [`ServeError::TimedOut`] when the installed deadline expires
    /// before the response arrives (poisons the connection),
    /// [`ServeError::Disconnected`] on a closed or poisoned connection.
    pub fn request(&mut self, req: &WireRequest) -> Result<WireResponse, ServeError> {
        if self.poisoned {
            return Err(ServeError::Disconnected);
        }
        let wire = |e: io::Error| ServeError::Protocol(format!("wire: {e}"));
        write_frame(&mut self.writer, &encode_request(req)).map_err(wire)?;
        let payload = match read_frame(&mut self.reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Err(ServeError::Disconnected),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The response may still arrive later; never try to
                // resynchronize a half-read stream.
                self.poisoned = true;
                return Err(ServeError::TimedOut);
            }
            Err(e) => return Err(wire(e)),
        };
        decode_response(&payload)
    }

    fn op(&mut self, op: Op) -> Result<Reply, ServeError> {
        match self.request(&WireRequest::Op(op))? {
            WireResponse::Reply(reply) => Ok(reply),
            WireResponse::Err(e) => Err(e),
            other => Err(ServeError::Protocol(format!(
                "server answered op with {other:?}"
            ))),
        }
    }

    /// Look up `key` over the wire.
    ///
    /// # Errors
    /// Wire failures and every server-side [`ServeError`].
    pub fn lookup(&mut self, key: u64) -> Result<Option<Vec<Word>>, ServeError> {
        match self.op(Op::Lookup(key))? {
            Reply::Lookup(satellite) => Ok(satellite),
            other => Err(ServeError::Protocol(format!(
                "server answered lookup with {other:?}"
            ))),
        }
    }

    /// Insert `key` over the wire.
    ///
    /// # Errors
    /// Wire failures and every server-side [`ServeError`].
    pub fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<(), ServeError> {
        match self.op(Op::Insert(key, satellite.to_vec()))? {
            Reply::Inserted => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "server answered insert with {other:?}"
            ))),
        }
    }

    /// Delete `key` over the wire.
    ///
    /// # Errors
    /// Wire failures and every server-side [`ServeError`].
    pub fn delete(&mut self, key: u64) -> Result<bool, ServeError> {
        match self.op(Op::Delete(key))? {
            Reply::Deleted(was_present) => Ok(was_present),
            other => Err(ServeError::Protocol(format!(
                "server answered delete with {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Wire failures, or a non-pong answer.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.request(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "server answered ping with {other:?}"
            ))),
        }
    }
}
