//! Client handles: the in-process [`DictClient`] and the out-of-process
//! [`TcpClient`].

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, WireRequest, WireResponse,
};
use crate::queue::OneShot;
use crate::scheduler::{Op, OpResult, Reply, Shared};
use crate::ServeError;
use pdm::Word;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A cloneable, thread-safe handle onto a [`ServeEngine`]. Any number of
/// threads may hold clones and call concurrently; each call routes to
/// the key's shard queue.
///
/// The sync calls ([`lookup`](Self::lookup), [`insert`](Self::insert),
/// [`delete`](Self::delete)) block until the engine replies — at most
/// the engine deadline plus one coalescing window. [`submit`](Self::submit)
/// pipelines: it returns a [`Pending`] immediately, so one thread can
/// keep many operations in flight and fill the shard's coalescing
/// window on its own.
///
/// [`ServeEngine`]: crate::ServeEngine
#[derive(Clone)]
pub struct DictClient {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for DictClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DictClient")
            .field("shards", &self.shared.queues.len())
            .finish_non_exhaustive()
    }
}

/// An operation submitted through [`DictClient::submit`] whose reply has
/// not been awaited yet. Dropping a `Pending` abandons the reply (the
/// operation still executes).
#[derive(Debug)]
#[must_use = "the reply is lost unless waited on"]
pub struct Pending {
    slot: Arc<OneShot<OpResult>>,
}

impl Pending {
    /// Block until the engine replies.
    pub fn wait(self) -> OpResult {
        self.slot.wait()
    }
}

impl DictClient {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        DictClient { shared }
    }

    /// Submit without waiting; pair with [`Pending::wait`].
    ///
    /// Pipelined operations may be reordered within one coalescing
    /// window (inserts before deletes before lookups), so only
    /// operations without mutual ordering constraints should be in
    /// flight together — wait for the ack when ordering matters.
    ///
    /// # Errors
    /// Admission refusals: [`ServeError::Overloaded`],
    /// [`ServeError::ShuttingDown`], [`ServeError::Disconnected`].
    pub fn submit(&self, op: Op) -> Result<Pending, ServeError> {
        let slot = self.shared.submit(op, self.shared.cfg.deadline)?;
        Ok(Pending { slot })
    }

    /// Like [`submit`](Self::submit) with an explicit deadline instead
    /// of the engine default.
    ///
    /// # Errors
    /// Same as [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        op: Op,
        deadline: Duration,
    ) -> Result<Pending, ServeError> {
        let slot = self.shared.submit(op, deadline)?;
        Ok(Pending { slot })
    }

    /// Look up `key`, blocking for the answer.
    ///
    /// # Errors
    /// Admission refusals, [`ServeError::TimedOut`], or a passed-through
    /// [`ServeError::Dict`].
    pub fn lookup(&self, key: u64) -> Result<Option<Vec<Word>>, ServeError> {
        match self.submit(Op::Lookup(key))?.wait()? {
            Reply::Lookup(satellite) => Ok(satellite),
            other => Err(ServeError::Protocol(format!(
                "engine answered lookup with {other:?}"
            ))),
        }
    }

    /// Insert `key` with satellite words, blocking for the durable ack.
    ///
    /// # Errors
    /// Admission refusals, [`ServeError::TimedOut`], or a passed-through
    /// [`ServeError::Dict`] (e.g. duplicate key).
    pub fn insert(&self, key: u64, satellite: &[Word]) -> Result<(), ServeError> {
        match self.submit(Op::Insert(key, satellite.to_vec()))?.wait()? {
            Reply::Inserted => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "engine answered insert with {other:?}"
            ))),
        }
    }

    /// Delete `key`, blocking for the ack. Returns whether the key had
    /// been present.
    ///
    /// # Errors
    /// Admission refusals, [`ServeError::TimedOut`], or a passed-through
    /// [`ServeError::Dict`].
    pub fn delete(&self, key: u64) -> Result<bool, ServeError> {
        match self.submit(Op::Delete(key))?.wait()? {
            Reply::Deleted(was_present) => Ok(was_present),
            other => Err(ServeError::Protocol(format!(
                "engine answered delete with {other:?}"
            ))),
        }
    }

    /// Number of shards behind this handle.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shared.queues.len()
    }
}

/// A blocking wire-protocol client over one TCP connection
/// (one-request-one-response; open several connections for pipelining —
/// the server coalesces across connections anyway).
#[derive(Debug)]
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connect to a [`TcpServer`](crate::TcpServer).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response exchange.
    ///
    /// # Errors
    /// [`ServeError::Protocol`] on wire failures or malformed frames.
    pub fn request(&mut self, req: &WireRequest) -> Result<WireResponse, ServeError> {
        let wire = |e: io::Error| ServeError::Protocol(format!("wire: {e}"));
        write_frame(&mut self.writer, &encode_request(req)).map_err(wire)?;
        let payload = read_frame(&mut self.reader)
            .map_err(wire)?
            .ok_or(ServeError::Disconnected)?;
        decode_response(&payload)
    }

    fn op(&mut self, op: Op) -> Result<Reply, ServeError> {
        match self.request(&WireRequest::Op(op))? {
            WireResponse::Reply(reply) => Ok(reply),
            WireResponse::Err(e) => Err(e),
            WireResponse::Pong => {
                Err(ServeError::Protocol("server answered op with pong".into()))
            }
        }
    }

    /// Look up `key` over the wire.
    ///
    /// # Errors
    /// Wire failures and every server-side [`ServeError`].
    pub fn lookup(&mut self, key: u64) -> Result<Option<Vec<Word>>, ServeError> {
        match self.op(Op::Lookup(key))? {
            Reply::Lookup(satellite) => Ok(satellite),
            other => Err(ServeError::Protocol(format!(
                "server answered lookup with {other:?}"
            ))),
        }
    }

    /// Insert `key` over the wire.
    ///
    /// # Errors
    /// Wire failures and every server-side [`ServeError`].
    pub fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<(), ServeError> {
        match self.op(Op::Insert(key, satellite.to_vec()))? {
            Reply::Inserted => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "server answered insert with {other:?}"
            ))),
        }
    }

    /// Delete `key` over the wire.
    ///
    /// # Errors
    /// Wire failures and every server-side [`ServeError`].
    pub fn delete(&mut self, key: u64) -> Result<bool, ServeError> {
        match self.op(Op::Delete(key))? {
            Reply::Deleted(was_present) => Ok(was_present),
            other => Err(ServeError::Protocol(format!(
                "server answered delete with {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Wire failures, or a non-pong answer.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.request(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "server answered ping with {other:?}"
            ))),
        }
    }
}
