//! The TCP front-end: accepts connections, decodes request frames,
//! drives a [`DictClient`], and writes response frames back.
//!
//! Concurrency model: one thread per connection (each blocks in the
//! engine while its request is served — exactly the shape the
//! coalescing engine wants, since many blocked connections means a full
//! window). Requests on one connection are strictly
//! one-request-one-response; concurrency comes from connections, which
//! is how the paper's "many concurrent clients" environment looks to a
//! server anyway.
//!
//! Every error is answered on the wire as an `ERROR` frame — including
//! malformed requests, which get [`ServeError::Protocol`] before the
//! connection is dropped. Admission rejections ([`ServeError::Overloaded`])
//! are ordinary responses: the client sees typed backpressure, not a
//! closed socket.

use crate::client::DictClient;
use crate::protocol::{
    decode_request, encode_response, read_frame_poll, write_frame, FrameRead, WireRequest,
    WireResponse,
};
use crate::scheduler::Op;
use crate::ServeError;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default for [`ServerConfig::read_poll`].
pub const DEFAULT_READ_POLL: Duration = Duration::from_millis(50);

/// Tuning knobs of the TCP front-end.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// How long a connection thread blocks in `read` before re-checking
    /// the stop flag. Bounds shutdown latency, invisible to clients;
    /// lower it when a test or drill needs fast server teardown.
    pub read_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_poll: DEFAULT_READ_POLL,
        }
    }
}

impl ServerConfig {
    /// Set the stop-flag re-check interval for connection reads.
    ///
    /// # Panics
    /// Panics if `poll` is zero (a zero read timeout would mean
    /// "no timeout" to the OS and connections would never observe stop).
    #[must_use]
    pub fn with_read_poll(mut self, poll: Duration) -> Self {
        assert!(!poll.is_zero(), "read poll must be positive");
        self.read_poll = poll;
        self
    }
}

/// A wire-protocol server in front of a [`ServeEngine`]
/// (via its [`DictClient`]).
///
/// ```no_run
/// use pdm_server::{EngineConfig, ServeEngine, TcpServer, TcpClient};
/// # fn shards() -> Vec<Box<dyn pdm_dict::Dict + Send>> { unimplemented!() }
///
/// let engine = ServeEngine::new(shards(), EngineConfig::default());
/// let server = TcpServer::bind("127.0.0.1:0", engine.client()).unwrap();
/// let mut client = TcpClient::connect(server.local_addr()).unwrap();
/// client.insert(7, &[42]).unwrap();
/// assert_eq!(client.lookup(7).unwrap(), Some(vec![42]));
/// server.shutdown();
/// let _shards = engine.shutdown();
/// ```
///
/// [`ServeEngine`]: crate::ServeEngine
#[derive(Debug)]
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
}

impl TcpServer {
    /// Bind and start accepting. Pass `"127.0.0.1:0"` to let the OS pick
    /// a port; read it back with [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, client: DictClient) -> io::Result<Self> {
        Self::bind_with(addr, client, ServerConfig::default())
    }

    /// Like [`bind`](Self::bind) with explicit [`ServerConfig`] tuning.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        client: DictClient,
        cfg: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("pdm-serve-accept".into())
                .spawn(move || accept_loop(&listener, &client, &stop, cfg))?
        };
        Ok(TcpServer {
            local_addr,
            stop,
            acceptor,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, wake every connection thread, and join them all.
    /// In-flight requests finish and answer first (a request already in
    /// the engine keeps its reply slot). Does **not** shut the engine
    /// down — call [`ServeEngine::shutdown`](crate::ServeEngine::shutdown)
    /// afterwards for the drain + checkpoint.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        // Unblock `accept` with a throwaway connection; if that fails the
        // listener is already dead and accept has returned anyway.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.acceptor.join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    client: &DictClient,
    stop: &Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    let connections: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let client = client.clone();
        let stop = Arc::clone(stop);
        let handle = std::thread::Builder::new()
            .name(format!("pdm-serve-conn-{next_id}"))
            .spawn(move || {
                // A failing connection takes only itself down.
                let _ = serve_connection(stream, &client, &stop, cfg);
            });
        next_id += 1;
        if let Ok(handle) = handle {
            let mut conns = connections.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            // Reap finished connections opportunistically so the vec
            // does not grow with connection churn.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
    let conns = std::mem::take(
        &mut *connections.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for handle in conns {
        let _ = handle.join();
    }
}

/// Serve one connection until the peer closes, the stop flag rises, or a
/// wire error. Malformed frames answer `ERROR` then drop the connection.
fn serve_connection(
    stream: TcpStream,
    client: &DictClient,
    stop: &AtomicBool,
    cfg: ServerConfig,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_poll))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        // Mid-frame read polls keep accumulating (a slow writer must not
        // desynchronize the stream); idle polls re-check the stop flag.
        let payload = match read_frame_poll(&mut reader, || stop.load(Ordering::Acquire)) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Eof) => return Ok(()), // peer closed cleanly
            Ok(FrameRead::Idle) => continue,     // read poll expired; re-check stop
            Ok(FrameRead::Stopped) => return Ok(()),
            Err(e) => return Err(e),
        };
        let response = match decode_request(&payload) {
            Ok(WireRequest::Ping) => WireResponse::Pong,
            Ok(WireRequest::Op(op)) => match execute(client, op) {
                Ok(reply) => WireResponse::Reply(reply),
                Err(e) => WireResponse::Err(e),
            },
            // Cluster opcodes only make sense on a multi-tenant cluster
            // node; a single-engine server answers them typed.
            Ok(_) => WireResponse::Err(ServeError::Protocol(
                "cluster request on a single-engine server".into(),
            )),
            Err(malformed) => {
                // Answer, then drop: after a framing error the stream
                // position is untrustworthy.
                write_frame(&mut writer, &encode_response(&WireResponse::Err(malformed)))?;
                writer.flush()?;
                return Ok(());
            }
        };
        write_frame(&mut writer, &encode_response(&response))?;
    }
}

fn execute(client: &DictClient, op: Op) -> Result<crate::Reply, ServeError> {
    client.submit(op)?.wait()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TcpClient;
    use crate::scheduler::{EngineConfig, ServeEngine};
    use pdm_dict::{Dict, DictParams, Dictionary};

    fn engine(shards: usize, seed: u64) -> ServeEngine {
        let shards = (0..shards as u64)
            .map(|i| {
                let params = DictParams::new(64, 1 << 40, 1)
                    .with_degree(16)
                    .with_epsilon(1.0)
                    .with_seed(seed + i);
                Box::new(Dictionary::new(params, 256).unwrap()) as Box<dyn Dict + Send>
            })
            .collect();
        ServeEngine::new(shards, EngineConfig::default())
    }

    #[test]
    fn tcp_roundtrip_end_to_end() {
        let engine = engine(2, 31);
        let server = TcpServer::bind("127.0.0.1:0", engine.client()).unwrap();
        let addr = server.local_addr();

        std::thread::scope(|s| {
            for t in 0..3u64 {
                s.spawn(move || {
                    let mut client = TcpClient::connect(addr).unwrap();
                    client.ping().unwrap();
                    for i in 0..20 {
                        let key = t * 1000 + i;
                        client.insert(key, &[t]).unwrap();
                        assert_eq!(client.lookup(key).unwrap(), Some(vec![t]));
                    }
                    assert!(client.delete(t * 1000).unwrap());
                    assert!(!client.delete(t * 1000).unwrap());
                    assert_eq!(client.lookup(t * 1000).unwrap(), None);
                });
            }
        });

        // Server-side errors cross the wire typed, not as dropped sockets.
        let mut client = TcpClient::connect(addr).unwrap();
        client.insert(5000, &[9]).unwrap();
        assert_eq!(
            client.insert(5000, &[9]),
            Err(ServeError::Dict(pdm_dict::DictError::DuplicateKey(5000)))
        );

        server.shutdown();
        let shards = engine.shutdown();
        assert_eq!(
            shards.iter().map(|d| d.len()).sum::<usize>(),
            3 * 19 + 1,
            "20 inserts − 1 delete per thread, plus the duplicate probe"
        );
    }

    #[test]
    fn malformed_frame_answers_error_then_drops() {
        use crate::protocol::{read_frame, write_frame, decode_response};
        let engine = engine(1, 47);
        let server = TcpServer::bind("127.0.0.1:0", engine.client()).unwrap();

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_frame(&mut stream, &[0xEE, 1, 2, 3]).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("typed answer");
        match decode_response(&payload).unwrap() {
            crate::protocol::WireResponse::Err(ServeError::Protocol(msg)) => {
                assert!(msg.contains("opcode"), "{msg}");
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
        // The connection was dropped after the answer.
        assert!(read_frame(&mut stream).unwrap().is_none());

        server.shutdown();
        drop(engine.shutdown());
    }
}
