//! The shard-parallel serving engine: per-shard worker threads that
//! coalesce queued requests into batched dictionary calls.
//!
//! ## Why coalescing is the whole point
//!
//! One parallel I/O round touches up to `D` disks; a single lookup needs
//! one or two blocks of it. Serving one operation per lock acquisition
//! (the [`pdm_dict::ShardedDictionary`] discipline) therefore wastes
//! almost the entire round under concurrency. Here, requests that arrive
//! while a worker is busy accumulate in its shard queue; the worker
//! drains them all in one wakeup and serves them as **one**
//! `lookup_batch` / `insert_batch`, whose planner packs block requests
//! into shared rounds ([`pdm::BatchPlan`]). The busier the server, the
//! larger the window — batching improves *under* load instead of
//! degrading, which is exactly the behaviour the paper's worst-case
//! bounds make safe to rely on.
//!
//! ## Ordering contract
//!
//! Requests of one drained window execute inserts → deletes → lookups;
//! windows execute in FIFO order per shard. A client that waits for each
//! reply before submitting the next operation (the sync [`DictClient`]
//! calls) therefore observes program order. Operations pipelined through
//! [`DictClient::submit`] without waiting may be reordered *within* a
//! window — and, when the hot-key cache is enabled, a pipelined lookup
//! may additionally be answered at submission time ahead of the client's
//! own queued mutations (see [`EngineConfig::cache`]) — so pipelined
//! operations must not be order-dependent (same as issuing them from
//! different connections).
//!
//! [`DictClient`]: crate::client::DictClient
//! [`DictClient::submit`]: crate::client::DictClient::submit

use crate::client::DictClient;
use crate::queue::{BoundedQueue, OneShot, PushRefused};
use crate::ServeError;
use expander::mix::mix64;
use pdm::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use pdm::Word;
use pdm_cache::{CacheAnswer, CacheConfig, CacheCounters, HotCache};
use pdm_dict::Dict;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One dictionary operation as submitted by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Look up a key.
    Lookup(u64),
    /// Insert a key with satellite words.
    Insert(u64, Vec<Word>),
    /// Delete a key.
    Delete(u64),
}

impl Op {
    /// The key this operation addresses (routing input).
    #[must_use]
    pub fn key(&self) -> u64 {
        match *self {
            Op::Lookup(k) | Op::Insert(k, _) | Op::Delete(k) => k,
        }
    }

}

/// A successful operation's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Lookup answer: the satellite words, or `None` on a miss.
    Lookup(Option<Vec<Word>>),
    /// The insert was applied and acknowledged.
    Inserted,
    /// The delete was applied; `true` if the key had been present.
    Deleted(bool),
}

/// What a request resolves to.
pub type OpResult = Result<Reply, ServeError>;

/// An admitted request: the operation, its deadline, and the slot the
/// submitting client blocks on.
#[derive(Debug)]
pub(crate) struct Request {
    pub(crate) op: Op,
    pub(crate) deadline: Instant,
    pub(crate) submitted: Instant,
    pub(crate) slot: Arc<OneShot<OpResult>>,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Admission bound per shard queue; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_bound: usize,
    /// Maximum requests coalesced into one execution window.
    pub max_coalesce: usize,
    /// Default deadline for sync client calls.
    pub deadline: Duration,
    /// Seed of the key → shard route (any fixed value works; it only
    /// needs to spread keys evenly).
    pub route_seed: u64,
    /// Make every *acknowledged* mutating window durable on the shard's
    /// storage backend before its replies are released, using the
    /// pipelined barrier ([`pdm::DiskArray::flush_begin`] /
    /// [`pdm::DiskArray::flush_join`]): window `N`'s barrier is started
    /// when `N` finishes executing and joined only after window `N+1`'s
    /// dictionary calls have been issued, so the device-level syncs
    /// overlap the next window's reads instead of serializing with them.
    /// Off by default — the in-memory backend needs no barrier, and
    /// checkpoint-at-shutdown already covers the graceful path.
    pub durable_acks: bool,
    /// Per-shard hot-key cache ([`pdm_cache::HotCache`]). `Some` puts a
    /// frequency-gated, byte-budgeted cache in front of every shard:
    /// lookups probe it at **submission** time, and a resident key is
    /// answered immediately — no queue wait, no batch window, no I/O
    /// round. Workers invalidate mutated keys *before* their window's
    /// replies are released (so an acked mutation is never shadowed by a
    /// stale entry) and fill the cache from executed lookup windows —
    /// misses negatively only when the window's reads were certifiably
    /// clean (see [`pdm::DiskArray::degraded_reads`]). Off by default.
    ///
    /// Ordering note: a submit-time hit bypasses the shard queue, so it
    /// answers ahead of everything still queued — including **this
    /// client's own earlier pipelined mutations**. That is a real
    /// weakening for pipelined [`DictClient::submit`] traffic: the FIFO
    /// shard queue used to give even pipelined clients per-key program
    /// order (a mutate-then-lookup of one key always saw the mutation),
    /// but with the cache on, the lookup can be answered from a resident
    /// entry before the queued mutation executes and invalidates it. A
    /// client that waits for each reply before submitting the next
    /// operation still observes program order, because a mutation's
    /// invalidation precedes its ack; pipelined same-key sequences must
    /// be order-independent with the cache enabled, as cross-connection
    /// sequences always had to be.
    pub cache: Option<CacheConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_bound: 256,
            max_coalesce: 64,
            deadline: Duration::from_secs(2),
            route_seed: 0x5EED_CAFE,
            durable_acks: false,
            cache: None,
        }
    }
}

impl EngineConfig {
    /// Set the per-shard admission bound.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "queue bound must be positive");
        self.queue_bound = bound;
        self
    }

    /// Set the coalescing window cap.
    ///
    /// # Panics
    /// Panics if `max == 0`.
    #[must_use]
    pub fn with_max_coalesce(mut self, max: usize) -> Self {
        assert!(max > 0, "coalescing window must be positive");
        self.max_coalesce = max;
        self
    }

    /// Set the default per-request deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Set the routing seed.
    #[must_use]
    pub fn with_route_seed(mut self, seed: u64) -> Self {
        self.route_seed = seed;
        self
    }

    /// Toggle pipelined fsync-before-ack for mutating windows (see
    /// [`EngineConfig::durable_acks`]).
    #[must_use]
    pub fn with_durable_acks(mut self, durable: bool) -> Self {
        self.durable_acks = durable;
        self
    }

    /// Put a hot-key cache in front of every shard (see
    /// [`EngineConfig::cache`]). Each shard gets its own cache under
    /// `cfg` (budget and sketch are per shard).
    #[must_use]
    pub fn with_cache(mut self, cfg: CacheConfig) -> Self {
        self.cache = Some(cfg);
        self
    }
}

/// Monotone engine counters (always on — plain atomics, no registry
/// needed). Snapshot via [`ServeEngine::stats`].
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) acked: AtomicU64,
    pub(crate) dict_errors: AtomicU64,
    pub(crate) rejected_overloaded: AtomicU64,
    pub(crate) rejected_timedout: AtomicU64,
    pub(crate) rejected_shutdown: AtomicU64,
    pub(crate) disconnected: AtomicU64,
    /// Batched dictionary calls executed (a `lookup_batch`, an
    /// `insert_batch`, or a single delete each count 1).
    pub(crate) exec_calls: AtomicU64,
    /// Operations served through those calls.
    pub(crate) exec_ops: AtomicU64,
    /// Parallel I/O rounds charged by those calls (per-shard sums; the
    /// shards' disk groups are independent, so across shards these
    /// overlap in time).
    pub(crate) parallel_ios: AtomicU64,
    /// The one-group-at-a-time measure ([`pdm::OpCost::sequential_ios`]).
    pub(crate) sequential_ios: AtomicU64,
    /// Lookups answered at submission time from a resident cache entry.
    pub(crate) cache_hits: AtomicU64,
    /// Lookups answered at submission time from a negative entry.
    pub(crate) cache_negative_hits: AtomicU64,
}

/// A point-in-time copy of the engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests admitted into a shard queue.
    pub submitted: u64,
    /// Requests acknowledged with a successful reply.
    pub acked: u64,
    /// Requests that executed and returned a dictionary error.
    pub dict_errors: u64,
    /// Admissions refused with [`ServeError::Overloaded`].
    pub rejected_overloaded: u64,
    /// Admitted requests answered [`ServeError::TimedOut`].
    pub rejected_timedout: u64,
    /// Admissions refused with [`ServeError::ShuttingDown`].
    pub rejected_shutdown: u64,
    /// Requests answered [`ServeError::Disconnected`] (crash).
    pub disconnected: u64,
    /// Batched dictionary calls executed.
    pub exec_calls: u64,
    /// Operations served through those calls.
    pub exec_ops: u64,
    /// Parallel I/O rounds charged by those calls.
    pub parallel_ios: u64,
    /// The one-shard-at-a-time I/O measure (see
    /// [`pdm::OpCost::sequential_ios`]).
    pub sequential_ios: u64,
    /// Lookups answered from the hot-key cache without entering a queue
    /// (0 when no cache is configured).
    pub cache_hits: u64,
    /// Lookups answered from a negative cache entry (certified-absent
    /// keys; these cost 0 I/Os).
    pub cache_negative_hits: u64,
}

impl EngineStats {
    /// Mean operations per executed dictionary call — the coalescing
    /// factor the engine achieved.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.exec_calls == 0 {
            0.0
        } else {
            self.exec_ops as f64 / self.exec_calls as f64
        }
    }

    /// Parallel I/O rounds per served operation.
    #[must_use]
    pub fn ios_per_op(&self) -> f64 {
        if self.exec_ops == 0 {
            0.0
        } else {
            self.parallel_ios as f64 / self.exec_ops as f64
        }
    }

    /// Parallel I/O rounds per *acknowledged* operation, cache hits
    /// included — the number the hot-key tier drives below 1 on skewed
    /// streams ([`ios_per_op`](EngineStats::ios_per_op) only counts
    /// operations that reached a dictionary).
    #[must_use]
    pub fn ios_per_acked_op(&self) -> f64 {
        if self.acked == 0 {
            0.0
        } else {
            self.parallel_ios as f64 / self.acked as f64
        }
    }
}

/// Pre-resolved registry handles for the serving layer (`serve_*`
/// metric families).
#[derive(Debug)]
pub struct ServeMetrics {
    queue_depth: Vec<Arc<Gauge>>,
    batch_keys: [Arc<Histogram>; 3],
    batch_ios: [Arc<Histogram>; 3],
    latency_us: [Arc<Histogram>; 3],
    ops_ok: [Arc<Counter>; 3],
    ops_err: [Arc<Counter>; 3],
    rejected: [Arc<Counter>; 3],
    disconnected: Arc<Counter>,
    rounds: Arc<Counter>,
    /// Cache events, `pdm_cache`'s family with `dict = "serve"` (order:
    /// hit, negative_hit, miss, admit, reject, evict, invalidate).
    cache_events: [Arc<Counter>; 7],
    /// Per-lookup parallel I/Os in **centi-I/Os** (×100, so the
    /// integer histogram resolves fractional amortized costs: a cache
    /// hit observes 0, a window of 8 lookups sharing 2 rounds observes
    /// 25 each). `p99 < 30` ⇔ "p99 lookup cost < 0.3 I/Os".
    lookup_centi_ios: Arc<Histogram>,
}

/// Gauge of queued requests per shard, label `shard`.
pub const SERVE_QUEUE_DEPTH: &str = "serve_queue_depth";
/// Histogram of coalesced keys per executed batch, label `op`.
pub const SERVE_BATCH_KEYS: &str = "serve_batch_keys";
/// Histogram of parallel I/Os per executed batch, label `op`.
pub const SERVE_BATCH_PARALLEL_IOS: &str = "serve_batch_parallel_ios";
/// Histogram of request latency (submit → reply) in microseconds, label `op`.
pub const SERVE_LATENCY_US: &str = "serve_latency_us";
/// Counter of served operations, labels `op`, `outcome` (`ok` / `err`).
pub const SERVE_OPS_TOTAL: &str = "serve_ops_total";
/// Counter of admission rejections, label `reason`
/// (`overloaded` / `timedout` / `shutdown`).
pub const SERVE_REJECTED_TOTAL: &str = "serve_rejected_total";
/// Counter of requests dropped by a crash, no label.
pub const SERVE_DISCONNECTED_TOTAL: &str = "serve_disconnected_total";
/// Counter of coalesced execution windows, no label.
pub const SERVE_ROUNDS_TOTAL: &str = "serve_rounds_total";
/// Histogram of per-lookup parallel I/Os in centi-I/Os (×100; cache
/// hits observe 0, executed lookups observe their window-amortized
/// cost), no label.
pub const SERVE_LOOKUP_CENTI_IOS: &str = "serve_lookup_centi_ios";

const OPS: [&str; 3] = ["lookup", "insert", "delete"];

impl ServeMetrics {
    fn new(registry: &MetricsRegistry, shards: usize) -> Self {
        let hist = |name: &'static str| {
            [OPS[0], OPS[1], OPS[2]].map(|op| registry.histogram(name, &[("op", op)]))
        };
        let ops = |outcome: &'static str| {
            [
                registry.counter(SERVE_OPS_TOTAL, &[("op", OPS[0]), ("outcome", outcome)]),
                registry.counter(SERVE_OPS_TOTAL, &[("op", OPS[1]), ("outcome", outcome)]),
                registry.counter(SERVE_OPS_TOTAL, &[("op", OPS[2]), ("outcome", outcome)]),
            ]
        };
        ServeMetrics {
            queue_depth: (0..shards)
                .map(|s| registry.gauge(SERVE_QUEUE_DEPTH, &[("shard", &s.to_string())]))
                .collect(),
            batch_keys: hist(SERVE_BATCH_KEYS),
            batch_ios: hist(SERVE_BATCH_PARALLEL_IOS),
            latency_us: hist(SERVE_LATENCY_US),
            ops_ok: ops("ok"),
            ops_err: ops("err"),
            rejected: [
                registry.counter(SERVE_REJECTED_TOTAL, &[("reason", "overloaded")]),
                registry.counter(SERVE_REJECTED_TOTAL, &[("reason", "timedout")]),
                registry.counter(SERVE_REJECTED_TOTAL, &[("reason", "shutdown")]),
            ],
            disconnected: registry.counter(SERVE_DISCONNECTED_TOTAL, &[]),
            rounds: registry.counter(SERVE_ROUNDS_TOTAL, &[]),
            cache_events: [
                "hit",
                "negative_hit",
                "miss",
                "admit",
                "reject",
                "evict",
                "invalidate",
            ]
            .map(|event| {
                registry.counter(
                    pdm_cache::CACHE_EVENTS_TOTAL,
                    &[("dict", "serve"), ("event", event)],
                )
            }),
            lookup_centi_ios: registry.histogram(SERVE_LOOKUP_CENTI_IOS, &[]),
        }
    }

    /// Push the delta between `now` and the already-exported `synced`
    /// snapshot into the cache-event counters.
    fn sync_cache(&self, synced: &mut CacheCounters, now: CacheCounters) {
        let deltas = [
            now.hits - synced.hits,
            now.negative_hits - synced.negative_hits,
            now.misses - synced.misses,
            now.admitted - synced.admitted,
            now.rejected - synced.rejected,
            now.evicted - synced.evicted,
            now.invalidated - synced.invalidated,
        ];
        for (handle, delta) in self.cache_events.iter().zip(deltas) {
            if delta > 0 {
                handle.add(delta);
            }
        }
        *synced = now;
    }

    fn op_index(op: &Op) -> usize {
        match op {
            Op::Lookup(..) => 0,
            Op::Insert(..) => 1,
            Op::Delete(..) => 2,
        }
    }
}

/// Everything the client handles and workers share.
pub(crate) struct Shared {
    pub(crate) queues: Vec<Arc<BoundedQueue<Request>>>,
    /// Per-shard flag: the shard's worker observed a crash and stopped
    /// acknowledging (its closed queue means [`ServeError::Disconnected`],
    /// not [`ServeError::ShuttingDown`]).
    pub(crate) crashed: Vec<AtomicBool>,
    pub(crate) cfg: EngineConfig,
    pub(crate) stats: Arc<AtomicStats>,
    pub(crate) metrics: Option<Arc<ServeMetrics>>,
    /// One hot-key cache per shard when [`EngineConfig::cache`] is set.
    /// Client threads probe under the mutex at submission; the shard
    /// worker is the only filler/invalidator.
    pub(crate) caches: Option<Vec<Mutex<HotCache>>>,
}

impl Shared {
    pub(crate) fn shard_of(&self, key: u64) -> usize {
        (mix64(self.cfg.route_seed ^ key) % self.queues.len() as u64) as usize
    }

    /// Admission control: route, probe the shard's cache (lookups only —
    /// a resident key is answered right here, consuming no queue slot
    /// and no I/O round), then check the bound and enqueue. Refusals are
    /// immediate and typed; nothing blocks.
    pub(crate) fn submit(
        &self,
        op: Op,
        deadline: Duration,
    ) -> Result<Arc<OneShot<OpResult>>, ServeError> {
        let shard = self.shard_of(op.key());
        if let (Op::Lookup(key), Some(caches)) = (&op, &self.caches) {
            // Skip the fast path once the shard stopped serving: a
            // crashed or closing shard must answer Disconnected /
            // ShuttingDown, not a cached value (the queue push below
            // produces the typed refusal).
            if !self.crashed[shard].load(Ordering::Acquire) && !self.queues[shard].is_closed() {
                let answer = caches[shard].lock().expect("cache lock").probe(*key);
                let reply = match answer {
                    CacheAnswer::Hit(v) => {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        Some(Some(v))
                    }
                    CacheAnswer::NegativeHit => {
                        self.stats.cache_negative_hits.fetch_add(1, Ordering::Relaxed);
                        Some(None)
                    }
                    CacheAnswer::Miss => None,
                };
                if let Some(satellite) = reply {
                    self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                    self.stats.acked.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &self.metrics {
                        m.ops_ok[0].inc();
                        m.latency_us[0].observe(0);
                        m.lookup_centi_ios.observe(0);
                    }
                    let slot = Arc::new(OneShot::new());
                    slot.put(Ok(Reply::Lookup(satellite)));
                    return Ok(slot);
                }
            }
        }
        let slot = Arc::new(OneShot::new());
        let now = Instant::now();
        let request = Request {
            op,
            deadline: now + deadline,
            submitted: now,
            slot: Arc::clone(&slot),
        };
        match self.queues[shard].push(request) {
            Ok(depth) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.queue_depth[shard].set(depth as i64);
                }
                Ok(slot)
            }
            Err((PushRefused::Full, _)) => {
                self.stats.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.rejected[0].inc();
                }
                Err(ServeError::Overloaded {
                    shard,
                    depth: self.queues[shard].bound(),
                })
            }
            Err((PushRefused::Closed, _)) => {
                if self.crashed[shard].load(Ordering::Acquire) {
                    self.stats.disconnected.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Disconnected)
                } else {
                    self.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &self.metrics {
                        m.rejected[2].inc();
                    }
                    Err(ServeError::ShuttingDown)
                }
            }
        }
    }
}

/// The engine: `S` shard dictionaries, each owned by one worker thread,
/// fed by bounded queues, coalescing concurrent requests into batched
/// calls.
///
/// ```
/// use pdm_dict::{DictParams, Dictionary, Dict};
/// use pdm_server::{EngineConfig, ServeEngine};
///
/// let shards: Vec<Box<dyn Dict + Send>> = (0..2)
///     .map(|i| {
///         let params = DictParams::new(64, 1 << 40, 1)
///             .with_degree(16)
///             .with_epsilon(1.0)
///             .with_seed(7 + i);
///         Box::new(Dictionary::new(params, 128).unwrap()) as Box<dyn Dict + Send>
///     })
///     .collect();
/// let engine = ServeEngine::new(shards, EngineConfig::default());
/// let client = engine.client();
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let client = client.clone();
///         s.spawn(move || {
///             for i in 0..50 {
///                 client.insert(t * 1000 + i, &[t]).unwrap();
///             }
///         });
///     }
/// });
/// assert_eq!(client.lookup(2025).unwrap(), Some(vec![2]));
/// let shards = engine.shutdown();
/// assert_eq!(shards.iter().map(|d| d.len()).sum::<usize>(), 200);
/// ```
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<Box<dyn Dict + Send>>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("shards", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Spawn one worker thread per shard dictionary.
    ///
    /// Shard dictionaries are independent — in a deployment each owns
    /// its own disk group, so per-shard batches overlap in time (the
    /// same argument as [`pdm_dict::ShardedDictionary`]'s cost model).
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    #[must_use]
    pub fn new(shards: Vec<Box<dyn Dict + Send>>, cfg: EngineConfig) -> Self {
        Self::with_metrics(shards, cfg, None)
    }

    /// Like [`new`](Self::new), additionally exporting `serve_*` metrics
    /// to `registry`. (Shard dictionaries keep their own `dict_*`
    /// recording; install it via [`pdm_dict::Dict::set_metrics`] before
    /// handing them over.)
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    #[must_use]
    pub fn with_metrics(
        shards: Vec<Box<dyn Dict + Send>>,
        cfg: EngineConfig,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let metrics = registry.map(|r| Arc::new(ServeMetrics::new(&r, shards.len())));
        let shared = Arc::new(Shared {
            queues: (0..shards.len())
                .map(|_| Arc::new(BoundedQueue::new(cfg.queue_bound)))
                .collect(),
            crashed: (0..shards.len()).map(|_| AtomicBool::new(false)).collect(),
            stats: Arc::new(AtomicStats::default()),
            metrics,
            caches: cfg
                .cache
                .map(|c| (0..shards.len()).map(|_| Mutex::new(HotCache::new(c))).collect()),
            cfg,
        });
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(id, dict)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pdm-serve-{id}"))
                    .spawn(move || run_shard(id, dict, &shared))
                    .expect("spawn shard worker")
            })
            .collect();
        ServeEngine { shared, workers }
    }

    /// A cloneable, thread-safe client handle.
    #[must_use]
    pub fn client(&self) -> DictClient {
        DictClient::new(Arc::clone(&self.shared))
    }

    /// Number of shards (= worker threads).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shared.queues.len()
    }

    /// Snapshot the engine counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let s = &self.shared.stats;
        EngineStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            acked: s.acked.load(Ordering::Relaxed),
            dict_errors: s.dict_errors.load(Ordering::Relaxed),
            rejected_overloaded: s.rejected_overloaded.load(Ordering::Relaxed),
            rejected_timedout: s.rejected_timedout.load(Ordering::Relaxed),
            rejected_shutdown: s.rejected_shutdown.load(Ordering::Relaxed),
            disconnected: s.disconnected.load(Ordering::Relaxed),
            exec_calls: s.exec_calls.load(Ordering::Relaxed),
            exec_ops: s.exec_ops.load(Ordering::Relaxed),
            parallel_ios: s.parallel_ios.load(Ordering::Relaxed),
            sequential_ios: s.sequential_ios.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_negative_hits: s.cache_negative_hits.load(Ordering::Relaxed),
        }
    }

    /// Aggregate event counters of the per-shard hot-key caches; `None`
    /// when no cache is configured.
    #[must_use]
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        let caches = self.shared.caches.as_ref()?;
        let mut total = CacheCounters::default();
        for cache in caches {
            let c = cache.lock().expect("cache lock").counters();
            total.hits += c.hits;
            total.negative_hits += c.negative_hits;
            total.misses += c.misses;
            total.admitted += c.admitted;
            total.rejected += c.rejected;
            total.evicted += c.evicted;
            total.invalidated += c.invalidated;
        }
        Some(total)
    }

    /// Whether any shard worker stopped after observing a crash point.
    #[must_use]
    pub fn crash_observed(&self) -> bool {
        self.shared.crashed.iter().any(|c| c.load(Ordering::Acquire))
    }

    /// Graceful shutdown: close every queue (new submissions get
    /// [`ServeError::ShuttingDown`]), let the workers drain and execute
    /// everything already admitted, checkpoint each shard's journal
    /// ([`pdm_dict::Dict::checkpoint`]), and hand the shard
    /// dictionaries back. After this, the on-disk image is
    /// [`pdm_dict::Dict::recover`]-consistent with every acknowledged
    /// write applied.
    #[must_use]
    pub fn shutdown(self) -> Vec<Box<dyn Dict + Send>> {
        for q in &self.shared.queues {
            q.close();
        }
        self.workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect()
    }
}

/// A mutating window parked behind its in-flight durability barrier:
/// the ticket plus the staged replies it will release once joined.
type ParkedWindow = (pdm::FlushTicket, Vec<Request>, Vec<Option<OpResult>>);

/// The per-shard worker loop. Returns the dictionary on exit so
/// [`ServeEngine::shutdown`] can hand it back.
fn run_shard(id: usize, mut dict: Box<dyn Dict + Send>, shared: &Shared) -> Box<dyn Dict + Send> {
    let queue = &shared.queues[id];
    let stats = &shared.stats;
    let metrics = shared.metrics.as_deref();
    let cache = shared.caches.as_ref().map(|c| &c[id]);
    // Cache counter values already exported to the registry (deltas only).
    let mut cache_synced = CacheCounters::default();
    // With `durable_acks`, a mutating window whose durability barrier is
    // still in flight parks here (ticket + staged replies) while the next
    // window's dictionary calls overlap the syncs; it settles as soon as
    // the barrier joins.
    let mut pending: Option<ParkedWindow> = None;
    while let Some(batch) = queue.drain(shared.cfg.max_coalesce) {
        if batch.is_empty() {
            settle_pending(&mut pending, &mut dict, stats, metrics);
            continue;
        }
        if let Some(m) = metrics {
            m.queue_depth[id].set(queue.depth() as i64);
        }
        // Stage every reply, settle only after the crash check: a killed
        // process acknowledges nothing, so neither may a crashed window.
        let mut replies: Vec<Option<OpResult>> = (0..batch.len()).map(|_| None).collect();
        let now = Instant::now();

        // Partition the live requests by kind; expired ones answer
        // TimedOut without executing (admission promised a deadline).
        let mut lookups: Vec<usize> = Vec::new();
        let mut inserts: Vec<usize> = Vec::new();
        let mut deletes: Vec<usize> = Vec::new();
        for (i, request) in batch.iter().enumerate() {
            if request.deadline < now {
                replies[i] = Some(Err(ServeError::TimedOut));
                continue;
            }
            match request.op {
                Op::Lookup(..) => lookups.push(i),
                Op::Insert(..) => inserts.push(i),
                Op::Delete(..) => deletes.push(i),
            }
        }

        let mut calls = 0u64;
        let mut ops = 0u64;
        let mut record = |cost: pdm::OpCost, n: usize, op_idx: usize| {
            calls += 1;
            ops += n as u64;
            stats.parallel_ios.fetch_add(cost.parallel_ios, Ordering::Relaxed);
            stats
                .sequential_ios
                .fetch_add(cost.sequential_ios, Ordering::Relaxed);
            if let Some(m) = metrics {
                m.rounds.inc();
                m.batch_keys[op_idx].observe(n as u64);
                m.batch_ios[op_idx].observe(cost.parallel_ios);
            }
        };

        // Inserts first (one coalesced batch), then deletes, then the
        // lookup batch — see the module-level ordering contract.
        if !inserts.is_empty() {
            let entries: Vec<(u64, Vec<Word>)> = inserts
                .iter()
                .map(|&i| match &batch[i].op {
                    Op::Insert(k, sat) => (*k, sat.clone()),
                    _ => unreachable!("partitioned as insert"),
                })
                .collect();
            let (results, cost) = dict.insert_batch(&entries);
            record(cost, inserts.len(), 1);
            for (&i, r) in inserts.iter().zip(results) {
                replies[i] = Some(r.map(|()| Reply::Inserted).map_err(ServeError::Dict));
            }
        }
        for &i in &deletes {
            let Op::Delete(key) = batch[i].op else {
                unreachable!("partitioned as delete")
            };
            match dict.delete(key) {
                Ok((was, cost)) => {
                    record(cost, 1, 2);
                    replies[i] = Some(Ok(Reply::Deleted(was)));
                }
                Err(e) => {
                    record(pdm::OpCost::default(), 1, 2);
                    replies[i] = Some(Err(ServeError::Dict(e)));
                }
            }
        }
        // Invalidate mutated keys before anything is acknowledged.
        // Attempted mutations count too: an `Io`-failed insert may have
        // had a partial physical effect, and invalidating is always
        // sound. This is the engine half of the "no stale hit shadows an
        // acked mutation" contract (the settle below releases replies
        // only after this ran).
        if let Some(cache) = cache {
            if !inserts.is_empty() || !deletes.is_empty() {
                let mut c = cache.lock().expect("cache lock");
                for &i in inserts.iter().chain(deletes.iter()) {
                    c.invalidate(batch[i].op.key());
                }
            }
        }
        let mut lookup_clean = false;
        if !lookups.is_empty() {
            let keys: Vec<u64> = lookups
                .iter()
                .map(|&i| match batch[i].op {
                    Op::Lookup(k) => k,
                    _ => unreachable!("partitioned as lookup"),
                })
                .collect();
            // Certify the batch at the disk layer: if no read came back
            // degraded, every miss in it is a proven absence (safe to
            // cache negatively).
            let before = dict.disks().map(pdm::DiskArray::degraded_reads);
            let (results, cost) = dict.lookup_batch(&keys);
            lookup_clean = matches!(
                (before, dict.disks().map(pdm::DiskArray::degraded_reads)),
                (Some(a), Some(b)) if a == b
            );
            record(cost, lookups.len(), 0);
            if let Some(m) = metrics {
                // Window-amortized per-lookup cost in centi-I/Os; cache
                // hits observed 0 at submission, so the histogram is the
                // full per-op distribution the p99 gate reads.
                let centi = cost.parallel_ios * 100 / lookups.len() as u64;
                for _ in 0..lookups.len() {
                    m.lookup_centi_ios.observe(centi);
                }
            }
            for (&i, satellite) in lookups.iter().zip(results) {
                replies[i] = Some(Ok(Reply::Lookup(satellite)));
            }
        }
        stats.exec_calls.fetch_add(calls, Ordering::Relaxed);
        stats.exec_ops.fetch_add(ops, Ordering::Relaxed);

        // This window's dictionary calls are issued: the previous
        // window's barrier has had a full window of reads to overlap
        // with. Join and release it before judging the current window.
        let crashed_now = dict.disks().is_some_and(pdm::DiskArray::crash_fired);
        if crashed_now {
            // A killed process acknowledges nothing — not even the
            // previous window, whose replies it never got to send.
            if let Some((_, pbatch, _)) = pending.take() {
                settle_disconnect(&pbatch, stats, metrics);
            }
        } else {
            settle_pending(&mut pending, &mut dict, stats, metrics);
        }

        // Crash fidelity: if the shard's crash point fired inside this
        // window, the "process" died mid-write — acknowledge nothing,
        // disconnect everyone still queued, and stop serving. (Writes
        // after the crash point were physically dropped by the fault
        // layer; recovery decides their fate from the journal alone.)
        if crashed_now {
            // The "process" died: its in-memory cache dies with it. The
            // replacement shard must start cold so nothing written after
            // the crash point can be shadowed by a pre-crash entry.
            if let Some(cache) = cache {
                cache.lock().expect("cache lock").clear();
            }
            shared.crashed[id].store(true, Ordering::Release);
            queue.close();
            let disconnected = batch.len() as u64
                + drain_disconnect(queue, stats, metrics)
                + settle_disconnect(&batch, stats, metrics);
            let _ = disconnected;
            return dict;
        }

        // Fill the shard cache from this window's executed lookups: the
        // reads ran after this window's mutations, so they are the
        // freshest answers. Misses become negative entries only when the
        // whole batch read cleanly. Then export counter deltas.
        if let Some(cache) = cache {
            let mut c = cache.lock().expect("cache lock");
            for &i in &lookups {
                if let Some(Ok(Reply::Lookup(satellite))) = &replies[i] {
                    c.fill(batch[i].op.key(), satellite.as_deref(), lookup_clean);
                }
            }
            if let Some(m) = metrics {
                m.sync_cache(&mut cache_synced, c.counters());
            }
        }

        // Durable acks: start the barrier for this window's writes now,
        // and park the staged replies while the next window overlaps the
        // syncs — unless the queue is idle, in which case nothing would
        // overlap (and a lone synchronous client is *waiting* on these
        // replies before it submits again), so join immediately.
        let mutated = inserts.iter().any(|&i| replies[i].as_ref().is_some_and(Result::is_ok))
            || deletes.iter().any(|&i| replies[i].as_ref().is_some_and(Result::is_ok));
        if shared.cfg.durable_acks && mutated {
            if let Some(disks) = dict.disks_mut() {
                let ticket = disks.flush_begin();
                if queue.depth() == 0 {
                    disks.flush_join(ticket);
                    settle_window(&batch, replies, stats, metrics);
                } else {
                    pending = Some((ticket, batch, replies));
                }
                continue;
            }
        }
        settle_window(&batch, replies, stats, metrics);
    }
    // Graceful exit: the queue was closed and drained dry. Release any
    // parked window, then make the image durable before handing the
    // shard back.
    settle_pending(&mut pending, &mut dict, stats, metrics);
    if let (Some(cache), Some(m)) = (cache, metrics) {
        // Submit-side probe events since the last window would otherwise
        // be lost from the registry.
        m.sync_cache(&mut cache_synced, cache.lock().expect("cache lock").counters());
    }
    dict.checkpoint();
    dict
}

/// Join a parked window's durability barrier and release its replies.
fn settle_pending(
    pending: &mut Option<ParkedWindow>,
    dict: &mut Box<dyn Dict + Send>,
    stats: &AtomicStats,
    metrics: Option<&ServeMetrics>,
) {
    if let Some((ticket, batch, replies)) = pending.take() {
        if let Some(disks) = dict.disks_mut() {
            disks.flush_join(ticket);
        }
        settle_window(&batch, replies, stats, metrics);
    }
}

/// Settle: every request of the window gets exactly one reply.
fn settle_window(
    batch: &[Request],
    replies: Vec<Option<OpResult>>,
    stats: &AtomicStats,
    metrics: Option<&ServeMetrics>,
) {
    let done = Instant::now();
    for (request, reply) in batch.iter().zip(replies) {
        let reply = reply.expect("every request partitioned and answered");
        let op_idx = ServeMetrics::op_index(&request.op);
        match &reply {
            Ok(_) => {
                stats.acked.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics {
                    m.ops_ok[op_idx].inc();
                }
            }
            Err(ServeError::TimedOut) => {
                stats.rejected_timedout.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics {
                    m.rejected[1].inc();
                }
            }
            Err(_) => {
                stats.dict_errors.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics {
                    m.ops_err[op_idx].inc();
                }
            }
        }
        if let Some(m) = metrics {
            let us = done.duration_since(request.submitted).as_micros() as u64;
            m.latency_us[op_idx].observe(us);
        }
        request.slot.put(reply);
    }
}

/// Disconnect everything still queued after a crash (never silently
/// dropped; clients get a typed error). Returns the count.
fn drain_disconnect(
    queue: &BoundedQueue<Request>,
    stats: &AtomicStats,
    metrics: Option<&ServeMetrics>,
) -> u64 {
    let mut n = 0;
    while let Some(rest) = queue.drain(usize::MAX) {
        n += settle_disconnect(&rest, stats, metrics);
        if rest.is_empty() {
            break;
        }
    }
    n
}

fn settle_disconnect(
    batch: &[Request],
    stats: &AtomicStats,
    metrics: Option<&ServeMetrics>,
) -> u64 {
    for request in batch {
        stats.disconnected.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = metrics {
            m.disconnected.inc();
        }
        request.slot.put(Err(ServeError::Disconnected));
    }
    batch.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_dict::{DictError, DictParams, Dictionary, LookupOutcome};
    use std::collections::HashMap;
    use std::sync::{Condvar, Mutex};

    /// A HashMap-backed dictionary whose every operation blocks while the
    /// shared gate is closed — tests use it to pile requests into a shard
    /// queue deterministically while the worker sits mid-execution.
    struct GateDict {
        map: HashMap<u64, Vec<Word>>,
        gate: Arc<(Mutex<bool>, Condvar)>,
    }

    fn gate() -> Arc<(Mutex<bool>, Condvar)> {
        Arc::new((Mutex::new(false), Condvar::new()))
    }

    fn open(gate: &Arc<(Mutex<bool>, Condvar)>) {
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
    }

    impl GateDict {
        fn boxed(gate: &Arc<(Mutex<bool>, Condvar)>) -> Box<dyn Dict + Send> {
            Box::new(GateDict {
                map: HashMap::new(),
                gate: Arc::clone(gate),
            })
        }

        fn wait_open(&self) {
            let mut is_open = self.gate.0.lock().unwrap();
            while !*is_open {
                is_open = self.gate.1.wait(is_open).unwrap();
            }
        }
    }

    impl Dict for GateDict {
        fn kind(&self) -> &'static str {
            "gate"
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn capacity(&self) -> usize {
            usize::MAX
        }
        fn lookup(&mut self, key: u64) -> LookupOutcome {
            self.wait_open();
            LookupOutcome::new(self.map.get(&key).cloned(), pdm::OpCost::default())
        }
        fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<pdm::OpCost, DictError> {
            self.wait_open();
            if self.map.contains_key(&key) {
                return Err(DictError::DuplicateKey(key));
            }
            self.map.insert(key, satellite.to_vec());
            Ok(pdm::OpCost::default())
        }
        fn delete(&mut self, key: u64) -> Result<(bool, pdm::OpCost), DictError> {
            self.wait_open();
            Ok((self.map.remove(&key).is_some(), pdm::OpCost::default()))
        }
        fn set_metrics(&mut self, _registry: Option<Arc<MetricsRegistry>>) {}
    }

    /// Park the single worker inside an execution (so the queue is free
    /// to fill): submit one op and give the worker a moment to drain it.
    fn park_worker(client: &DictClient) -> crate::client::Pending {
        let pending = client.submit(Op::Lookup(u64::MAX)).expect("admit parker");
        std::thread::sleep(Duration::from_millis(50));
        pending
    }

    /// HashMap-backed dictionary that counts how many lookups actually
    /// execute — the cache tier is supposed to keep hot keys from ever
    /// reaching it.
    struct CountingDict {
        map: HashMap<u64, Vec<Word>>,
        executed_lookups: Arc<AtomicU64>,
    }

    impl Dict for CountingDict {
        fn kind(&self) -> &'static str {
            "counting"
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn capacity(&self) -> usize {
            usize::MAX
        }
        fn lookup(&mut self, key: u64) -> LookupOutcome {
            self.executed_lookups.fetch_add(1, Ordering::SeqCst);
            LookupOutcome::new(self.map.get(&key).cloned(), pdm::OpCost::default())
        }
        fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<pdm::OpCost, DictError> {
            if self.map.contains_key(&key) {
                return Err(DictError::DuplicateKey(key));
            }
            self.map.insert(key, satellite.to_vec());
            Ok(pdm::OpCost::default())
        }
        fn delete(&mut self, key: u64) -> Result<(bool, pdm::OpCost), DictError> {
            Ok((self.map.remove(&key).is_some(), pdm::OpCost::default()))
        }
        fn set_metrics(&mut self, _registry: Option<Arc<MetricsRegistry>>) {}
    }

    #[test]
    fn cache_tier_answers_hot_lookups_without_execution() {
        let executed = Arc::new(AtomicU64::new(0));
        let engine = ServeEngine::new(
            vec![Box::new(CountingDict {
                map: HashMap::new(),
                executed_lookups: Arc::clone(&executed),
            })],
            EngineConfig::default().with_cache(pdm_cache::CacheConfig::default()),
        );
        let client = engine.client();
        let lookup = |key: u64| match client.submit(Op::Lookup(key)).unwrap().wait().unwrap() {
            Reply::Lookup(satellite) => satellite,
            other => panic!("unexpected reply {other:?}"),
        };

        client
            .submit(Op::Insert(7, vec![7; 4]))
            .unwrap()
            .wait()
            .unwrap();

        // Admission wants an observed access count of 2, so the first two
        // lookups execute; the third is answered from the cache without
        // the dictionary ever seeing it.
        assert_eq!(lookup(7).as_deref(), Some(&[7u64; 4][..]));
        assert_eq!(lookup(7).as_deref(), Some(&[7u64; 4][..]));
        let before = executed.load(Ordering::SeqCst);
        assert_eq!(lookup(7).as_deref(), Some(&[7u64; 4][..]));
        assert_eq!(
            executed.load(Ordering::SeqCst),
            before,
            "cache hit consumed no dictionary execution"
        );

        // A mutation invalidates before it is acknowledged: the next
        // lookup goes back to the dictionary and observes the delete.
        match client.submit(Op::Delete(7)).unwrap().wait().unwrap() {
            Reply::Deleted(true) => {}
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(lookup(7), None, "no stale hit after delete");
        assert!(executed.load(Ordering::SeqCst) > before);

        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.acked, 6);
        drop(engine.shutdown());
    }

    #[test]
    fn overload_rejects_with_typed_backpressure() {
        let g = gate();
        let engine = ServeEngine::new(
            vec![GateDict::boxed(&g)],
            EngineConfig::default().with_queue_bound(2),
        );
        let client = engine.client();
        let parker = park_worker(&client);

        // The worker is mid-execution; the queue (bound 2) now fills.
        let mut pendings = Vec::new();
        let mut refusals = 0;
        for key in 0..4 {
            match client.submit(Op::Lookup(key)) {
                Ok(p) => pendings.push(p),
                Err(ServeError::Overloaded { shard, depth }) => {
                    assert_eq!(shard, 0);
                    assert_eq!(depth, 2);
                    refusals += 1;
                }
                Err(other) => panic!("unexpected refusal {other:?}"),
            }
        }
        assert_eq!(pendings.len(), 2, "exactly the bound is admitted");
        assert_eq!(refusals, 2);

        // Backpressure lost nothing that was admitted.
        open(&g);
        assert!(parker.wait().is_ok());
        for p in pendings {
            assert!(p.wait().is_ok());
        }
        let stats = engine.stats();
        assert_eq!(stats.rejected_overloaded, 2);
        assert_eq!(stats.acked, 3);
        drop(engine.shutdown());
    }

    #[test]
    fn queued_requests_coalesce_into_batched_calls() {
        let g = gate();
        let engine = ServeEngine::new(vec![GateDict::boxed(&g)], EngineConfig::default());
        let client = engine.client();
        let parker = park_worker(&client);

        // Eight lookups and four inserts pile up behind the parked
        // worker; they must come out as ONE window of two batched calls.
        let mut pendings: Vec<_> = (0..8)
            .map(|key| client.submit(Op::Lookup(key)).unwrap())
            .collect();
        for key in 0..4 {
            pendings.push(client.submit(Op::Insert(100 + key, vec![key])).unwrap());
        }
        open(&g);
        assert!(parker.wait().is_ok());
        for p in pendings {
            assert!(p.wait().is_ok());
        }

        let stats = engine.stats();
        assert_eq!(stats.exec_ops, 13, "parker + 8 lookups + 4 inserts");
        assert!(
            stats.exec_calls <= 3,
            "one parker call + one lookup_batch + one insert_batch, got {}",
            stats.exec_calls
        );
        assert!(stats.mean_batch() > 4.0, "mean {}", stats.mean_batch());
        drop(engine.shutdown());
    }

    #[test]
    fn expired_deadline_answers_timed_out_without_executing() {
        let g = gate();
        let engine = ServeEngine::new(vec![GateDict::boxed(&g)], EngineConfig::default());
        let client = engine.client();
        let parker = park_worker(&client);

        let doomed = client
            .submit_with_deadline(Op::Insert(7, vec![1]), Duration::from_millis(1))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        open(&g);
        assert!(parker.wait().is_ok());
        assert_eq!(doomed.wait(), Err(ServeError::TimedOut));

        // The insert was NOT applied — a timed-out request has no effect.
        assert_eq!(client.lookup(7).unwrap(), None);
        assert_eq!(engine.stats().rejected_timedout, 1);
        drop(engine.shutdown());
    }

    #[test]
    fn shutdown_drains_admitted_requests_then_refuses() {
        let g = gate();
        let engine = ServeEngine::new(vec![GateDict::boxed(&g)], EngineConfig::default());
        let client = engine.client();
        let parker = park_worker(&client);
        let admitted: Vec<_> = (0..5)
            .map(|key| client.submit(Op::Insert(key, vec![key])).unwrap())
            .collect();

        let closer = std::thread::spawn(move || engine.shutdown());
        // Wait until the close is visible, then confirm typed refusal.
        let refusal = loop {
            match client.submit(Op::Lookup(999)) {
                Err(e) => break e,
                Ok(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        assert_eq!(refusal, ServeError::ShuttingDown);

        open(&g);
        let shards = closer.join().unwrap();
        assert!(parker.wait().is_ok());
        for p in admitted {
            assert!(p.wait().is_ok(), "admitted before shutdown ⇒ served");
        }
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 5, "all five inserts applied");
    }

    #[test]
    fn routing_spreads_keys_and_is_stable() {
        let g = gate();
        open(&g);
        let engine = ServeEngine::new(
            vec![GateDict::boxed(&g), GateDict::boxed(&g), GateDict::boxed(&g)],
            EngineConfig::default(),
        );
        let client = engine.client();
        for key in 0..300 {
            client.insert(key, &[key]).unwrap();
        }
        let shards = engine.shutdown();
        let sizes: Vec<usize> = shards.iter().map(|d| d.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 300);
        for (i, &n) in sizes.iter().enumerate() {
            assert!(n > 50, "shard {i} got {n} of 300 keys — routing is skewed");
        }
    }

    #[test]
    fn metrics_registry_sees_serving_families() {
        let g = gate();
        open(&g);
        let registry = Arc::new(MetricsRegistry::new());
        let engine = ServeEngine::with_metrics(
            vec![GateDict::boxed(&g)],
            EngineConfig::default(),
            Some(Arc::clone(&registry)),
        );
        let client = engine.client();
        client.insert(1, &[10]).unwrap();
        assert_eq!(client.lookup(1).unwrap(), Some(vec![10]));
        assert!(client.delete(1).unwrap());
        drop(engine.shutdown());

        let text = registry.snapshot().to_prometheus();
        for family in [
            SERVE_OPS_TOTAL,
            SERVE_BATCH_KEYS,
            SERVE_LATENCY_US,
            SERVE_ROUNDS_TOTAL,
            SERVE_QUEUE_DEPTH,
        ] {
            assert!(text.contains(family), "{family} missing from export");
        }
    }

    #[test]
    fn dict_errors_pass_through_typed() {
        let g = gate();
        open(&g);
        let engine = ServeEngine::new(vec![GateDict::boxed(&g)], EngineConfig::default());
        let client = engine.client();
        client.insert(5, &[1]).unwrap();
        assert_eq!(
            client.insert(5, &[2]),
            Err(ServeError::Dict(DictError::DuplicateKey(5)))
        );
        assert_eq!(engine.stats().dict_errors, 1);
        drop(engine.shutdown());
    }

    /// `durable_acks` with a lone synchronous client: every window finds
    /// the queue idle, so the barrier joins immediately — the replies a
    /// sync client is blocked on are never parked behind a drain that
    /// can only progress once it gets them (the deadlock the
    /// queue-depth check exists to prevent).
    #[test]
    fn durable_acks_sync_client_never_deadlocks() {
        let params = DictParams::new(64, 1 << 40, 1)
            .with_degree(16)
            .with_epsilon(1.0)
            .with_seed(12);
        let dict = Dictionary::new(params, 128).unwrap();
        let engine = ServeEngine::new(
            vec![Box::new(dict) as Box<dyn Dict + Send>],
            EngineConfig::default().with_durable_acks(true),
        );
        let client = engine.client();
        for key in 0..8u64 {
            assert_eq!(client.insert(key, &[key]), Ok(()));
        }
        assert_eq!(client.lookup(3), Ok(Some(vec![3])));
        assert_eq!(client.delete(3), Ok(true));
        assert_eq!(client.lookup(3), Ok(None));
        let stats = engine.stats();
        assert_eq!(stats.acked, 11);
        drop(engine.shutdown());
    }

    /// `durable_acks` under concurrent load: windows whose barrier is
    /// parked while the next window executes must still release exactly
    /// one reply per request, and a window parked when the queue closes
    /// settles on the graceful-exit path.
    #[test]
    fn durable_acks_pipelined_windows_ack_everything() {
        let params = DictParams::new(256, 1 << 40, 1)
            .with_degree(16)
            .with_epsilon(1.0)
            .with_seed(13);
        let dict = Dictionary::new(params, 128).unwrap();
        let engine = ServeEngine::new(
            vec![Box::new(dict) as Box<dyn Dict + Send>],
            EngineConfig::default()
                .with_durable_acks(true)
                .with_max_coalesce(4)
                .with_queue_bound(1024)
                .with_deadline(Duration::from_secs(60)),
        );
        let client = engine.client();
        // Burst-submit so the worker routinely finds the queue non-empty
        // at barrier time and parks windows behind in-flight syncs.
        let mut pendings = Vec::new();
        for key in 0..120u64 {
            pendings.push(client.submit(Op::Insert(key, vec![key])).expect("admit"));
        }
        for p in pendings {
            assert_eq!(p.wait(), Ok(Reply::Inserted));
        }
        let mut dicts = engine.shutdown();
        assert_eq!(dicts.len(), 1);
        let shard = &mut dicts[0];
        assert_eq!(shard.len(), 120);
        for key in 0..120u64 {
            assert_eq!(shard.lookup(key).satellite, Some(vec![key]));
        }
    }

    /// A crash point firing mid-service must disconnect (not ack) the
    /// window and everything behind it — the engine-level half of the
    /// "every acked write is durable" contract.
    #[test]
    fn crash_point_disconnects_instead_of_acking() {
        let params = DictParams::new(64, 1 << 40, 1)
            .with_degree(16)
            .with_epsilon(1.0)
            .with_seed(11);
        let mut dict = Dictionary::new(params, 128).unwrap();
        dict.disks_mut()
            .unwrap()
            .set_fault_plan(pdm::FaultPlan::new().crash_after(0));
        let engine = ServeEngine::new(
            vec![Box::new(dict) as Box<dyn Dict + Send>],
            EngineConfig::default(),
        );
        let client = engine.client();

        // The very first physical write hits the crash point.
        assert_eq!(client.insert(1, &[1]), Err(ServeError::Disconnected));
        assert!(engine.crash_observed());
        // The shard stopped serving; later submissions are refused as
        // disconnected too, never silently dropped or falsely acked.
        assert_eq!(client.lookup(1), Err(ServeError::Disconnected));
        let stats = engine.stats();
        assert!(stats.disconnected >= 2, "got {}", stats.disconnected);
        assert_eq!(stats.acked, 0);
        drop(engine.shutdown());
    }
}
