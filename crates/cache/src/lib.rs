//! # `pdm-cache` — the hot-key cache tier
//!
//! Theorem 6 guarantees **1 parallel I/O per lookup** — including
//! unsuccessful ones. This crate is the tier that does *better than 1*
//! on the skewed streams real servers see (Section 1.2's webmail shape:
//! a few hot users, a long tail), by spending a bounded amount of RAM on
//! the hot tail in the spirit of the balanced-allocation
//! memory/performance tradeoff line:
//!
//! * **[`FrequencySketch`]** — a TinyLFU-style count-min sketch of 4-bit
//!   saturating counters with deterministic aging. Every probe (hit or
//!   miss) is recorded; the sketch is the *only* evidence admission
//!   listens to.
//! * **[`HotCache`]** — a byte-budgeted key → satellite cache with
//!   frequency-gated admission (promote on observed access count, never
//!   on first touch), deterministic LRU eviction (logical ticks, ordered
//!   `(tick, key)` — drills replay bit-identically), and **negative
//!   entries**: keys proven absent answer repeat misses for 0 I/Os.
//! * **[`CachedDict`]** — the tier as a [`pdm_dict::Dict`] front-end
//!   wrapping any other front-end. Mutations invalidate before they are
//!   acknowledged; [`pdm_dict::Dict::recover`] drops the whole cache
//!   whenever journal replay touched the image, so recovery can never
//!   serve a stale hit.
//!
//! ## Negative-cache soundness
//!
//! A miss may only be cached when it is a **certified absence**
//! ([`pdm_dict::LookupOutcome::certifies_absence`]): an unsuccessful
//! search whose every backing block read cleanly. The one-probe
//! dictionary's case-(b) layout makes this a positive certificate — the
//! single fetched block carries identifier-tagged fields, and "no field
//! carries this key's identifier" is proof of absence, not mere failure
//! to find. Batch paths certify at the disk layer instead
//! ([`pdm::DiskArray::degraded_reads`] unchanged across the batch ⇒
//! every read was clean). Degraded misses certify nothing and are never
//! cached.
//!
//! The serving engine (`pdm-server`) wires [`HotCache`] per shard in
//! front of its batch windows, and the cluster router (`pdm-cluster`)
//! reuses it as an epoch-validated client-side read cache; see
//! DESIGN.md §9.

#![forbid(unsafe_code)]

pub mod hot;
pub mod sketch;
pub mod wrapper;

pub use hot::{
    CacheAnswer, CacheConfig, CacheCounters, HotCache, ENTRY_OVERHEAD_BYTES,
};
pub use sketch::FrequencySketch;
pub use wrapper::{CachedDict, CACHE_ENTRIES, CACHE_EVENTS_TOTAL, CACHE_USED_BYTES};
