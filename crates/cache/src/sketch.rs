//! TinyLFU-style frequency sketch: a 4-row count-min sketch of 4-bit
//! saturating counters with deterministic periodic aging.
//!
//! The sketch answers one question for the admission policy: *how often
//! has this key been asked for recently?* Four bits per counter suffice
//! because admission only ever compares small estimates (a candidate
//! against a victim, or against a fixed threshold); aging — halving every
//! counter once the sample count reaches a fixed multiple of the sketch
//! size — keeps the window "recent" without any wall clock, so replays
//! are bit-identical for a given operation sequence.

use expander::mix::mix64;

/// Counters per `u64` word (4-bit nibbles).
const NIBBLES: usize = 16;
/// Saturation ceiling of one counter.
const MAX_COUNT: u32 = 15;
/// Per-row hash tweaks (arbitrary odd constants, fixed forever so runs
/// replay).
const ROW_SEEDS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
];

/// The frequency sketch. See the module docs.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    /// Packed 4-bit counters, all rows interleaved over one table (each
    /// row indexes the whole table with its own hash, the classic
    /// Caffeine layout).
    table: Vec<u64>,
    /// `counters - 1`; counters is a power of two.
    mask: u64,
    /// Records since the last aging pass.
    samples: u64,
    /// Aging threshold: halve everything once `samples` reaches this.
    sample_cap: u64,
    seed: u64,
}

impl FrequencySketch {
    /// A sketch sized for roughly `capacity` distinct hot keys. The
    /// table gets 4 counters per key (rounded up to a power of two), and
    /// ages after `10 × capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "sketch capacity must be positive");
        let counters = (capacity * 4).next_power_of_two().max(NIBBLES);
        FrequencySketch {
            table: vec![0; counters / NIBBLES],
            mask: (counters - 1) as u64,
            samples: 0,
            sample_cap: (capacity as u64) * 10,
            seed,
        }
    }

    /// Slot (word index, nibble shift) of `key` in `row`.
    fn slot(&self, key: u64, row: usize) -> (usize, u32) {
        let h = mix64(key ^ ROW_SEEDS[row] ^ self.seed);
        let idx = (h & self.mask) as usize;
        (idx / NIBBLES, ((idx % NIBBLES) as u32) * 4)
    }

    /// Count one access of `key` (saturating at 15 per row), aging the
    /// sketch when the sample window fills.
    pub fn record(&mut self, key: u64) {
        for row in 0..ROW_SEEDS.len() {
            let (word, shift) = self.slot(key, row);
            let current = (self.table[word] >> shift) & 0xF;
            if current < u64::from(MAX_COUNT) {
                self.table[word] += 1 << shift;
            }
        }
        self.samples += 1;
        if self.samples >= self.sample_cap {
            self.age();
        }
    }

    /// Estimated recent access count of `key` (min over the rows — the
    /// usual count-min upper bias, bounded by the 4-bit ceiling).
    #[must_use]
    pub fn estimate(&self, key: u64) -> u32 {
        (0..ROW_SEEDS.len())
            .map(|row| {
                let (word, shift) = self.slot(key, row);
                ((self.table[word] >> shift) & 0xF) as u32
            })
            .min()
            .unwrap_or(0)
    }

    /// Halve every counter (the "reset" of the TinyLFU paper): old
    /// popularity decays geometrically, so a formerly-hot key cannot
    /// squat on its estimate forever.
    fn age(&mut self) {
        for word in &mut self.table {
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.samples /= 2;
    }

    /// Records since the last aging pass (test / introspection hook).
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_recorded_frequency() {
        let mut s = FrequencySketch::new(256, 7);
        for _ in 0..9 {
            s.record(42);
        }
        s.record(1000);
        assert!(s.estimate(42) >= 9, "hot key estimate {}", s.estimate(42));
        assert!(s.estimate(1000) >= 1);
        // Count-min never under-estimates below the true count (until
        // saturation), and a never-seen key usually reads 0.
        assert!(s.estimate(42) > s.estimate(1000));
    }

    #[test]
    fn counters_saturate_at_fifteen() {
        let mut s = FrequencySketch::new(64, 1);
        for _ in 0..100 {
            s.record(5);
        }
        assert_eq!(s.estimate(5), 15);
    }

    #[test]
    fn aging_halves_estimates() {
        let mut s = FrequencySketch::new(16, 3);
        for _ in 0..12 {
            s.record(9);
        }
        let before = s.estimate(9);
        // Fill the sample window with other traffic to force an aging
        // pass, then the old key's estimate must have decayed.
        for i in 0..200 {
            s.record(1_000_000 + i);
        }
        assert!(
            s.estimate(9) < before,
            "estimate {} did not decay from {before}",
            s.estimate(9)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = FrequencySketch::new(128, 11);
        let mut b = FrequencySketch::new(128, 11);
        for i in 0..1000 {
            a.record(i % 37);
            b.record(i % 37);
        }
        for i in 0..37 {
            assert_eq!(a.estimate(i), b.estimate(i));
        }
    }
}
