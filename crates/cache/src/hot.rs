//! The byte-budgeted hot-key cache with frequency-gated admission and
//! deterministic eviction.
//!
//! ## Determinism
//!
//! Chaos drills replay bit-identically from their seeds, so the cache
//! must too: no wall clock, no randomized iteration order. Recency is a
//! logical tick (one per access), and the eviction victim is the
//! *smallest `(tick, key)` pair* in a `BTreeSet` — strict LRU with a
//! deterministic key tie-break, identical on every run of the same
//! operation sequence.
//!
//! ## Admission (TinyLFU)
//!
//! A fill is **not** an admission. A key gets in only if its sketch
//! estimate has reached [`CacheConfig::admit_threshold`] (promote on
//! observed access count, not first touch), and — when the budget
//! requires evicting — only if it is estimated hotter than the LRU
//! victim it would displace. One-hit wonders therefore never wash the
//! working set out of the cache, which is what makes a byte budget
//! behave like a byte budget under scans.
//!
//! ## Negative entries
//!
//! A negative entry asserts "this key is absent" and answers misses for
//! free. It may only be created from a *certified* absence (an
//! `Exact`-provenance miss — see
//! `pdm_dict::LookupOutcome::certifies_absence`), and any mutation of
//! the key invalidates it.

use crate::sketch::FrequencySketch;
use pdm::Word;
use std::collections::{BTreeSet, HashMap};

/// Bytes charged per resident entry on top of its satellite payload
/// (key + bookkeeping + allocator overhead, a deliberate round number so
/// budgets are easy to reason about). A negative entry costs exactly
/// this.
pub const ENTRY_OVERHEAD_BYTES: usize = 48;

/// Cache tuning knobs. `Copy` so it can ride inside larger `Copy`
/// configs (e.g. the serving engine's).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Capacity in bytes (entry payloads + [`ENTRY_OVERHEAD_BYTES`]
    /// each). The cache never holds more than this.
    pub budget_bytes: usize,
    /// Minimum sketch estimate before a key may be admitted. 1 admits on
    /// first fill (classic LRU); the default 2 requires a key to be seen
    /// twice before it can displace anything.
    pub admit_threshold: u32,
    /// Whether certified absences are cached (see the module docs).
    pub negative: bool,
    /// Distinct hot keys the frequency sketch is sized for.
    pub sketch_keys: usize,
    /// Seed of the sketch's hash rows.
    pub seed: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            budget_bytes: 1 << 20,
            admit_threshold: 2,
            negative: true,
            sketch_keys: 8192,
            seed: 0xCAC4_ED00,
        }
    }
}

impl CacheConfig {
    /// Set the byte budget directly.
    ///
    /// # Panics
    /// Panics if `bytes == 0`.
    #[must_use]
    pub fn with_budget_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "cache budget must be positive");
        self.budget_bytes = bytes;
        self
    }

    /// Set the budget as a number of PDM blocks of `block_words` words —
    /// the unit the paper's memory/performance tradeoff is stated in
    /// (spend the RAM equivalent of `blocks` disk blocks on the hot
    /// tail).
    ///
    /// # Panics
    /// Panics if either argument is 0.
    #[must_use]
    pub fn with_budget_blocks(self, blocks: usize, block_words: usize) -> Self {
        assert!(blocks > 0 && block_words > 0, "budget must be positive");
        self.with_budget_bytes(blocks * block_words * std::mem::size_of::<Word>())
    }

    /// Set the admission threshold (sketch estimate a key needs before
    /// it can be admitted).
    ///
    /// # Panics
    /// Panics if `threshold == 0` (0 would admit keys never seen at all).
    #[must_use]
    pub fn with_admit_threshold(mut self, threshold: u32) -> Self {
        assert!(threshold > 0, "admit threshold must be positive");
        self.admit_threshold = threshold;
        self
    }

    /// Toggle negative caching.
    #[must_use]
    pub fn with_negative(mut self, negative: bool) -> Self {
        self.negative = negative;
        self
    }

    /// Size the frequency sketch for `keys` distinct hot keys.
    ///
    /// # Panics
    /// Panics if `keys == 0`.
    #[must_use]
    pub fn with_sketch_keys(mut self, keys: usize) -> Self {
        assert!(keys > 0, "sketch must cover at least one key");
        self.sketch_keys = keys;
        self
    }

    /// Set the sketch hash seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What a [`HotCache::probe`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheAnswer {
    /// The key is resident with this satellite payload.
    Hit(Vec<Word>),
    /// The key is resident as a certified absence.
    NegativeHit,
    /// Not resident — ask the dictionary.
    Miss,
}

/// Monotone event counters (snapshot via [`HotCache::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Probes answered with a resident value.
    pub hits: u64,
    /// Probes answered from a negative entry.
    pub negative_hits: u64,
    /// Probes that fell through to the dictionary.
    pub misses: u64,
    /// Fills admitted into residency.
    pub admitted: u64,
    /// Fills refused by the admission policy (cold key, or colder than
    /// every victim it would displace).
    pub rejected: u64,
    /// Entries displaced by the byte budget.
    pub evicted: u64,
    /// Entries removed by explicit invalidation (mutations, epoch
    /// changes, recovery).
    pub invalidated: u64,
}

#[derive(Debug)]
struct Entry {
    /// `Some(satellite)` for a resident value, `None` for a certified
    /// absence.
    value: Option<Vec<Word>>,
    charge: usize,
    tick: u64,
}

fn charge_of(value: Option<&[Word]>) -> usize {
    ENTRY_OVERHEAD_BYTES + value.map_or(0, std::mem::size_of_val)
}

/// The cache proper. Single-owner (`&mut self` API) — concurrent tiers
/// wrap one per shard in a mutex, which also serializes the logical
/// clock.
#[derive(Debug)]
pub struct HotCache {
    cfg: CacheConfig,
    sketch: FrequencySketch,
    entries: HashMap<u64, Entry>,
    /// `(tick, key)` recency index; the smallest element is the LRU
    /// victim. Keys appear exactly once (their latest tick).
    recency: BTreeSet<(u64, u64)>,
    used: usize,
    tick: u64,
    counters: CacheCounters,
}

impl HotCache {
    /// An empty cache under `cfg`.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        HotCache {
            sketch: FrequencySketch::new(cfg.sketch_keys, cfg.seed),
            entries: HashMap::new(),
            recency: BTreeSet::new(),
            used: 0,
            tick: 0,
            counters: CacheCounters::default(),
            cfg,
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Resident entries (positive + negative).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Snapshot the event counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    fn touch(&mut self, key: u64, old_tick: u64) -> u64 {
        self.tick += 1;
        self.recency.remove(&(old_tick, key));
        self.recency.insert((self.tick, key));
        self.tick
    }

    /// Look up `key`, recording the access in the frequency sketch (a
    /// miss still counts toward future admission — that is the whole
    /// point of promote-on-frequency).
    pub fn probe(&mut self, key: u64) -> CacheAnswer {
        self.sketch.record(key);
        if let Some(entry) = self.entries.get(&key) {
            let old = entry.tick;
            let answer = match &entry.value {
                Some(v) => CacheAnswer::Hit(v.clone()),
                None => CacheAnswer::NegativeHit,
            };
            let new_tick = self.touch(key, old);
            self.entries.get_mut(&key).expect("entry present").tick = new_tick;
            match answer {
                CacheAnswer::Hit(_) => self.counters.hits += 1,
                CacheAnswer::NegativeHit => self.counters.negative_hits += 1,
                CacheAnswer::Miss => unreachable!(),
            }
            answer
        } else {
            self.counters.misses += 1;
            CacheAnswer::Miss
        }
    }

    /// Offer the dictionary's answer for `key` to the cache.
    ///
    /// `value` is the satellite payload (`None` for a miss);
    /// `certified_absent` must be `true` only for a certified absence
    /// (an `Exact`-provenance miss). Misses that are not certified are
    /// never cached, regardless of [`CacheConfig::negative`]. Returns
    /// whether the key is resident afterwards.
    pub fn fill(&mut self, key: u64, value: Option<&[Word]>, certified_absent: bool) -> bool {
        if value.is_none() && !(self.cfg.negative && certified_absent) {
            return false;
        }
        let charge = charge_of(value);
        // A payload wider than the whole budget can never be resident:
        // refuse it outright, and drop any entry it would have refreshed
        // (the old payload went stale the moment the dictionary answered
        // with the new one). Letting the refresh path below handle it
        // would shed every *other* entry and still end over budget.
        if charge > self.cfg.budget_bytes {
            self.invalidate(key);
            self.counters.rejected += 1;
            return false;
        }
        if let Some(entry) = self.entries.get(&key) {
            // Already resident: refresh the payload in place (the
            // dictionary's answer is fresher than ours by construction —
            // fills only come from reads ordered after our last
            // invalidation).
            let old_tick = entry.tick;
            let old_charge = entry.charge;
            let new_tick = self.touch(key, old_tick);
            let entry = self.entries.get_mut(&key).expect("entry present");
            entry.value = value.map(<[Word]>::to_vec);
            entry.charge = charge;
            entry.tick = new_tick;
            self.used = self.used - old_charge + charge;
            // An in-place refresh can overshoot the budget when the new
            // payload is wider; shed LRU entries (never the refreshed
            // key — it was just touched, so it is the newest).
            self.shed_to_budget(key);
            return true;
        }
        let estimate = self.sketch.estimate(key);
        if estimate < self.cfg.admit_threshold {
            self.counters.rejected += 1;
            return false;
        }
        // Evict until the candidate fits, but only past victims it beats
        // on estimated frequency — otherwise refuse the candidate and
        // keep the warmer working set.
        while self.used + charge > self.cfg.budget_bytes {
            let &(victim_tick, victim_key) = self.recency.first().expect("over budget ⇒ nonempty");
            if self.sketch.estimate(victim_key) >= estimate {
                self.counters.rejected += 1;
                return false;
            }
            self.remove_entry(victim_key, victim_tick);
            self.counters.evicted += 1;
        }
        self.tick += 1;
        self.recency.insert((self.tick, key));
        self.entries.insert(
            key,
            Entry {
                value: value.map(<[Word]>::to_vec),
                charge,
                tick: self.tick,
            },
        );
        self.used += charge;
        self.counters.admitted += 1;
        true
    }

    /// Evict LRU entries (skipping `keep`) until the budget holds.
    fn shed_to_budget(&mut self, keep: u64) {
        while self.used > self.cfg.budget_bytes {
            let Some(&(tick, key)) = self.recency.iter().find(|&&(_, k)| k != keep) else {
                return;
            };
            self.remove_entry(key, tick);
            self.counters.evicted += 1;
        }
    }

    fn remove_entry(&mut self, key: u64, tick: u64) {
        let entry = self.entries.remove(&key).expect("indexed entry exists");
        debug_assert_eq!(entry.tick, tick);
        self.recency.remove(&(tick, key));
        self.used -= entry.charge;
    }

    /// Drop `key` (positive or negative). Every mutation of a key must
    /// call this *before* the mutation is acknowledged — the
    /// invalidate-before-ack ordering is what keeps acked-⊆-journaled
    /// fidelity intact above the cache. Returns whether it was resident.
    pub fn invalidate(&mut self, key: u64) -> bool {
        if let Some(entry) = self.entries.get(&key) {
            let tick = entry.tick;
            self.remove_entry(key, tick);
            self.counters.invalidated += 1;
            true
        } else {
            false
        }
    }

    /// Drop everything (recovery, epoch change). The frequency sketch
    /// survives — popularity is not staleness.
    pub fn clear(&mut self) {
        self.counters.invalidated += self.entries.len() as u64;
        self.entries.clear();
        self.recency.clear();
        self.used = 0;
    }

    /// Direct sketch access for overhead measurement (the bench gates
    /// record cost against dictionary op cost).
    pub fn sketch_mut(&mut self) -> &mut FrequencySketch {
        &mut self.sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::default()
            .with_budget_bytes(4 * ENTRY_OVERHEAD_BYTES + 64)
            .with_admit_threshold(2)
            .with_sketch_keys(64)
    }

    /// Probe until `key` is hot enough to admit, then fill.
    fn warm_fill(cache: &mut HotCache, key: u64, value: &[Word]) {
        for _ in 0..3 {
            let _ = cache.probe(key);
        }
        assert!(cache.fill(key, Some(value), false), "fill of warmed key");
    }

    #[test]
    fn first_touch_is_not_admitted() {
        let mut c = HotCache::new(cfg());
        assert_eq!(c.probe(7), CacheAnswer::Miss);
        // One observation < threshold 2: the fill is refused.
        assert!(!c.fill(7, Some(&[1]), false));
        assert_eq!(c.probe(7), CacheAnswer::Miss);
        // Second observation reaches the threshold.
        assert!(c.fill(7, Some(&[1]), false));
        assert_eq!(c.probe(7), CacheAnswer::Hit(vec![1]));
        assert_eq!(c.counters().rejected, 1);
        assert_eq!(c.counters().admitted, 1);
    }

    #[test]
    fn oversized_refresh_invalidates_instead_of_shedding() {
        let mut c = HotCache::new(cfg());
        for key in 0..4 {
            warm_fill(&mut c, key, &[key]);
        }
        assert_eq!(c.len(), 4);
        // Refresh key 0 with a payload wider than the entire budget: the
        // fill is refused and key 0 (whose old payload is now stale) is
        // dropped — the other residents survive and the budget holds.
        let huge = vec![0 as Word; 1024];
        assert!(!c.fill(0, Some(&huge), false));
        assert_eq!(c.probe(0), CacheAnswer::Miss, "stale entry invalidated");
        for key in 1..4 {
            assert_eq!(
                c.probe(key),
                CacheAnswer::Hit(vec![key]),
                "other residents must not be shed for an unadmittable payload"
            );
        }
        assert!(c.used_bytes() <= c.config().budget_bytes);
        assert_eq!(c.counters().invalidated, 1);
    }

    #[test]
    fn uncertified_miss_is_never_cached() {
        let mut c = HotCache::new(cfg());
        for _ in 0..5 {
            let _ = c.probe(9);
        }
        assert!(!c.fill(9, None, false), "uncertified absence refused");
        assert!(c.fill(9, None, true), "certified absence cached");
        assert_eq!(c.probe(9), CacheAnswer::NegativeHit);
    }

    #[test]
    fn negative_caching_can_be_disabled() {
        let mut c = HotCache::new(cfg().with_negative(false));
        for _ in 0..5 {
            let _ = c.probe(9);
        }
        assert!(!c.fill(9, None, true));
        assert_eq!(c.probe(9), CacheAnswer::Miss);
    }

    #[test]
    fn budget_is_enforced_and_eviction_is_lru() {
        let mut c = HotCache::new(cfg());
        // Budget fits 4 negative-sized entries plus one word of slack.
        for key in 0..4 {
            warm_fill(&mut c, key, &[key]);
        }
        assert_eq!(c.len(), 4);
        assert!(c.used_bytes() <= c.config().budget_bytes);
        // Key 0 is LRU. A hotter new key evicts exactly it.
        for _ in 0..8 {
            let _ = c.probe(100);
        }
        assert!(c.fill(100, Some(&[100]), false));
        assert_eq!(c.probe(0), CacheAnswer::Miss, "LRU victim evicted");
        assert_eq!(c.probe(100), CacheAnswer::Hit(vec![100]));
        assert!(c.used_bytes() <= c.config().budget_bytes);
        assert!(c.counters().evicted >= 1);
    }

    #[test]
    fn colder_candidate_cannot_displace_warmer_victims() {
        let mut c = HotCache::new(cfg());
        for key in 0..4 {
            for _ in 0..10 {
                let _ = c.probe(key);
            }
            assert!(c.fill(key, Some(&[key]), false));
        }
        // A key seen exactly twice meets the threshold but is colder
        // than every resident: the fill must be refused, nothing evicted.
        let _ = c.probe(50);
        let _ = c.probe(50);
        let evicted_before = c.counters().evicted;
        assert!(!c.fill(50, Some(&[50]), false));
        assert_eq!(c.counters().evicted, evicted_before);
        for key in 0..4 {
            assert!(matches!(c.probe(key), CacheAnswer::Hit(_)));
        }
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut c = HotCache::new(cfg());
        warm_fill(&mut c, 3, &[3]);
        assert!(c.invalidate(3));
        assert!(!c.invalidate(3));
        assert_eq!(c.probe(3), CacheAnswer::Miss);
        assert_eq!(c.counters().invalidated, 1);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_popularity() {
        let mut c = HotCache::new(cfg());
        warm_fill(&mut c, 3, &[3]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        // Popularity survived: an immediate refill is admitted.
        assert!(c.fill(3, Some(&[3]), false));
    }

    #[test]
    fn in_place_refresh_updates_value_and_budget() {
        let mut c = HotCache::new(cfg());
        warm_fill(&mut c, 3, &[3]);
        let used = c.used_bytes();
        assert!(c.fill(3, Some(&[3, 4, 5]), false));
        assert_eq!(c.probe(3), CacheAnswer::Hit(vec![3, 4, 5]));
        assert!(c.used_bytes() > used);
        assert!(c.used_bytes() <= c.config().budget_bytes);
    }

    #[test]
    fn oversized_entry_is_refused_outright() {
        let mut c = HotCache::new(cfg());
        let huge = vec![0u64; 1024];
        for _ in 0..5 {
            let _ = c.probe(1);
        }
        assert!(!c.fill(1, Some(&huge), false));
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let mut c = HotCache::new(cfg());
            let mut evictions = Vec::new();
            for key in 0..32 {
                for _ in 0..(3 + key % 5) {
                    let _ = c.probe(key);
                }
                let _ = c.fill(key, Some(&[key]), false);
                evictions.push(c.counters().evicted);
            }
            let mut resident: Vec<u64> = (0..32)
                .filter(|&k| c.entries.contains_key(&k))
                .collect();
            resident.sort_unstable();
            (evictions, resident)
        };
        assert_eq!(run(), run(), "replays must be bit-identical");
    }
}
