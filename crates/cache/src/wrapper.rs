//! [`CachedDict`]: a [`Dict`] front-end that layers a [`HotCache`] over
//! any other front-end, preserving the trait's semantics exactly.
//!
//! The wrapper is the single-owner form of the cache tier (the serving
//! engine wires the same [`HotCache`] per shard instead, so submit-time
//! probes skip the queue). It is also where the crash-safety contract
//! lives: [`Dict::recover`] delegates to the inner front-end and, if the
//! replay did *anything* (replayed, discarded, or stalled intents), the
//! entire cache is dropped. The journal's intent metadata names blocks,
//! not keys, so per-key invalidation from a replay is impossible —
//! conservative full invalidation is the only sound reading of
//! "invalidate the covering entries", and it costs nothing the moment
//! after a crash (the cache was in the RAM that just went away; a warm
//! wrapper only reaches this path when it shares a disk image that some
//! other path recovered).

use crate::hot::{CacheAnswer, CacheConfig, CacheCounters, HotCache};
use pdm::metrics::{Counter, Gauge, MetricsRegistry};
use pdm::{DiskArray, OpCost, RecoveryReport, ScrubReport, Word};
use pdm_dict::{Dict, DictError, LookupOutcome};
use std::sync::Arc;

/// Counter of cache events, labels `dict` (inner front-end) and `event`
/// (`hit` / `negative_hit` / `miss` / `admit` / `reject` / `evict` /
/// `invalidate`).
pub const CACHE_EVENTS_TOTAL: &str = "cache_events_total";
/// Gauge of bytes resident in the cache, label `dict`.
pub const CACHE_USED_BYTES: &str = "cache_used_bytes";
/// Gauge of entries resident in the cache, label `dict`.
pub const CACHE_ENTRIES: &str = "cache_entries";

struct CacheMetrics {
    events: [Arc<Counter>; 7],
    used: Arc<Gauge>,
    entries: Arc<Gauge>,
    /// Counter values already pushed to the registry (the registry
    /// counters are monotone; we add deltas).
    synced: CacheCounters,
}

impl CacheMetrics {
    fn new(registry: &MetricsRegistry, dict: &'static str) -> Self {
        let event =
            |e: &str| registry.counter(CACHE_EVENTS_TOTAL, &[("dict", dict), ("event", e)]);
        CacheMetrics {
            events: [
                event("hit"),
                event("negative_hit"),
                event("miss"),
                event("admit"),
                event("reject"),
                event("evict"),
                event("invalidate"),
            ],
            used: registry.gauge(CACHE_USED_BYTES, &[("dict", dict)]),
            entries: registry.gauge(CACHE_ENTRIES, &[("dict", dict)]),
            synced: CacheCounters::default(),
        }
    }

    fn sync(&mut self, cache: &HotCache) {
        let now = cache.counters();
        let s = &self.synced;
        for (handle, delta) in self.events.iter().zip([
            now.hits - s.hits,
            now.negative_hits - s.negative_hits,
            now.misses - s.misses,
            now.admitted - s.admitted,
            now.rejected - s.rejected,
            now.evicted - s.evicted,
            now.invalidated - s.invalidated,
        ]) {
            if delta > 0 {
                handle.add(delta);
            }
        }
        self.synced = now;
        self.used.set(cache.used_bytes() as i64);
        self.entries.set(cache.len() as i64);
    }
}

/// The cache-above-a-dictionary front-end. See the module docs.
pub struct CachedDict {
    inner: Box<dyn Dict + Send>,
    cache: HotCache,
    metrics: Option<CacheMetrics>,
}

impl std::fmt::Debug for CachedDict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedDict")
            .field("inner", &self.inner.kind())
            .field("entries", &self.cache.len())
            .field("used_bytes", &self.cache.used_bytes())
            .finish_non_exhaustive()
    }
}

impl CachedDict {
    /// Wrap `inner` under a fresh cache configured by `cfg`.
    #[must_use]
    pub fn new(inner: Box<dyn Dict + Send>, cfg: CacheConfig) -> Self {
        CachedDict {
            inner,
            cache: HotCache::new(cfg),
            metrics: None,
        }
    }

    /// The wrapped front-end.
    #[must_use]
    pub fn inner(&self) -> &(dyn Dict + Send) {
        self.inner.as_ref()
    }

    /// Unwrap, discarding the cache.
    #[must_use]
    pub fn into_inner(self) -> Box<dyn Dict + Send> {
        self.inner
    }

    /// The cache's event counters.
    #[must_use]
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Read access to the cache (tests and benches).
    #[must_use]
    pub fn cache(&self) -> &HotCache {
        &self.cache
    }

    fn sync_metrics(&mut self) {
        if let Some(m) = &mut self.metrics {
            m.sync(&self.cache);
        }
    }

    /// A mutation of `key` was attempted: drop any covering entry. Runs
    /// unconditionally — even a failed mutation with `Io` provenance may
    /// have had a partial physical effect, and invalidating is always
    /// sound.
    fn invalidate_key(&mut self, key: u64) {
        self.cache.invalidate(key);
    }
}

impl Dict for CachedDict {
    fn kind(&self) -> &'static str {
        "cached"
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn lookup(&mut self, key: u64) -> LookupOutcome {
        match self.cache.probe(key) {
            CacheAnswer::Hit(v) => {
                self.sync_metrics();
                return LookupOutcome::new(Some(v), OpCost::default());
            }
            CacheAnswer::NegativeHit => {
                self.sync_metrics();
                return LookupOutcome::new(None, OpCost::default());
            }
            CacheAnswer::Miss => {}
        }
        let out = self.inner.lookup(key);
        // A found value is correct even when degraded (the redundancy
        // covered the damage); only the *absence* claim needs the
        // certificate.
        self.cache
            .fill(key, out.satellite.as_deref(), out.certifies_absence());
        self.sync_metrics();
        out
    }

    fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<OpCost, DictError> {
        let result = self.inner.insert(key, satellite);
        self.invalidate_key(key);
        self.sync_metrics();
        result
    }

    fn delete(&mut self, key: u64) -> Result<(bool, OpCost), DictError> {
        let result = self.inner.delete(key);
        self.invalidate_key(key);
        self.sync_metrics();
        result
    }

    fn lookup_batch(&mut self, keys: &[u64]) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let mut results: Vec<Option<Vec<Word>>> = vec![None; keys.len()];
        let mut miss_at: Vec<usize> = Vec::new();
        let mut miss_keys: Vec<u64> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            match self.cache.probe(key) {
                CacheAnswer::Hit(v) => results[i] = Some(v),
                CacheAnswer::NegativeHit => {}
                CacheAnswer::Miss => {
                    miss_at.push(i);
                    miss_keys.push(key);
                }
            }
        }
        if miss_keys.is_empty() {
            self.sync_metrics();
            return (results, OpCost::default());
        }
        // Batch paths lose per-key provenance, so certify at the disk
        // layer: if the degraded-read counter did not move across the
        // batch, every block read cleanly and each miss is a certified
        // absence. Front-ends without an accessible array (sharded) get
        // no certificate — their misses are simply not cached.
        let before = self.inner.disks().map(DiskArray::degraded_reads);
        let (found, cost) = self.inner.lookup_batch(&miss_keys);
        let clean = match (before, self.inner.disks().map(DiskArray::degraded_reads)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        for (&i, satellite) in miss_at.iter().zip(found) {
            self.cache.fill(keys[i], satellite.as_deref(), clean);
            results[i] = satellite;
        }
        self.sync_metrics();
        (results, cost)
    }

    fn insert_batch(
        &mut self,
        entries: &[(u64, Vec<Word>)],
    ) -> (Vec<Result<(), DictError>>, OpCost) {
        let out = self.inner.insert_batch(entries);
        for (key, _) in entries {
            self.cache.invalidate(*key);
        }
        self.sync_metrics();
        out
    }

    fn set_metrics(&mut self, registry: Option<Arc<MetricsRegistry>>) {
        self.metrics = registry
            .as_ref()
            .map(|r| CacheMetrics::new(r, self.inner.kind()));
        self.inner.set_metrics(registry);
        self.sync_metrics();
    }

    fn refresh_gauges(&mut self) {
        self.inner.refresh_gauges();
        self.sync_metrics();
    }

    fn disks(&self) -> Option<&DiskArray> {
        self.inner.disks()
    }

    fn disks_mut(&mut self) -> Option<&mut DiskArray> {
        self.inner.disks_mut()
    }

    fn recover(&mut self) -> RecoveryReport {
        let report = self.inner.recover();
        // Any replay activity means the disk image moved underneath the
        // cache: drop everything. (The intent metadata names blocks, not
        // keys — see the module docs for why full invalidation is the
        // sound reading of "invalidate the covering entries".)
        if !report.is_clean() {
            self.cache.clear();
        }
        self.sync_metrics();
        report
    }

    fn checkpoint(&mut self) -> bool {
        self.inner.checkpoint()
    }

    fn scrub(&mut self) -> ScrubReport {
        // Scrub repairs blocks from redundancy; it never changes the
        // logical key → value mapping, so residency survives.
        self.inner.scrub()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// In-memory reference dictionary charging one parallel I/O per op.
    struct MapDict {
        map: HashMap<u64, Vec<Word>>,
        ios: u64,
    }

    impl MapDict {
        fn boxed() -> Box<dyn Dict + Send> {
            Box::new(MapDict {
                map: HashMap::new(),
                ios: 0,
            })
        }
    }

    fn one_io() -> OpCost {
        OpCost {
            parallel_ios: 1,
            block_reads: 1,
            block_writes: 0,
            sequential_ios: 1,
        }
    }

    impl Dict for MapDict {
        fn kind(&self) -> &'static str {
            "map"
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn capacity(&self) -> usize {
            usize::MAX
        }
        fn lookup(&mut self, key: u64) -> LookupOutcome {
            self.ios += 1;
            LookupOutcome::new(self.map.get(&key).cloned(), one_io())
        }
        fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<OpCost, DictError> {
            if self.map.contains_key(&key) {
                return Err(DictError::DuplicateKey(key));
            }
            self.ios += 1;
            self.map.insert(key, satellite.to_vec());
            Ok(one_io())
        }
        fn delete(&mut self, key: u64) -> Result<(bool, OpCost), DictError> {
            self.ios += 1;
            Ok((self.map.remove(&key).is_some(), one_io()))
        }
        fn set_metrics(&mut self, _registry: Option<Arc<MetricsRegistry>>) {}
    }

    fn cached() -> CachedDict {
        CachedDict::new(
            MapDict::boxed(),
            CacheConfig::default()
                .with_admit_threshold(2)
                .with_sketch_keys(64),
        )
    }

    #[test]
    fn repeated_lookup_costs_zero_ios_once_admitted() {
        let mut d = cached();
        d.insert(5, &[50]).unwrap();
        assert_eq!(d.lookup(5).cost.parallel_ios, 1, "first lookup pays");
        assert_eq!(d.lookup(5).cost.parallel_ios, 1, "second fills");
        let out = d.lookup(5);
        assert_eq!(out.satellite, Some(vec![50]));
        assert_eq!(out.cost.parallel_ios, 0, "hot lookup is free");
        assert!(d.cache_counters().hits >= 1);
    }

    #[test]
    fn certified_miss_is_negatively_cached() {
        let mut d = cached();
        assert_eq!(d.lookup(9).satellite, None);
        assert_eq!(d.lookup(9).satellite, None);
        let out = d.lookup(9);
        assert_eq!(out.satellite, None);
        assert_eq!(out.cost.parallel_ios, 0, "negative hit is free");
        assert!(d.cache_counters().negative_hits >= 1);
    }

    #[test]
    fn mutations_invalidate_before_answering() {
        let mut d = cached();
        d.insert(5, &[50]).unwrap();
        for _ in 0..3 {
            let _ = d.lookup(5);
        }
        assert_eq!(d.lookup(5).cost.parallel_ios, 0, "resident");
        d.delete(5).unwrap();
        let out = d.lookup(5);
        assert_eq!(out.satellite, None, "delete visible immediately");
        // Negative path too: a cached absence dies on insert.
        let _ = d.lookup(77);
        let _ = d.lookup(77);
        assert_eq!(d.lookup(77).cost.parallel_ios, 0, "negative resident");
        d.insert(77, &[7]).unwrap();
        assert_eq!(d.lookup(77).satellite, Some(vec![7]));
    }

    #[test]
    fn batch_results_match_uncached_inner() {
        let mut plain = MapDict::boxed();
        let mut d = cached();
        for key in 0..50u64 {
            plain.insert(key, &[key]).unwrap();
            d.insert(key, &[key]).unwrap();
        }
        let keys: Vec<u64> = (0..100).map(|i| i % 60).collect();
        for _ in 0..3 {
            let (a, _) = plain.lookup_batch(&keys);
            let (b, _) = d.lookup_batch(&keys);
            assert_eq!(a, b);
        }
        // Third pass is mostly resident.
        let before = d.cache_counters().hits;
        let (_, cost) = d.lookup_batch(&keys);
        assert!(d.cache_counters().hits > before);
        assert!(cost.parallel_ios < keys.len() as u64);
    }

    #[test]
    fn metrics_export_cache_families() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut d = cached();
        d.set_metrics(Some(Arc::clone(&registry)));
        d.insert(1, &[1]).unwrap();
        for _ in 0..3 {
            let _ = d.lookup(1);
        }
        let text = registry.snapshot().to_prometheus();
        for family in [CACHE_EVENTS_TOTAL, CACHE_USED_BYTES, CACHE_ENTRIES] {
            assert!(text.contains(family), "{family} missing from export");
        }
        let snap = registry.snapshot();
        assert!(snap.counter_sum(CACHE_EVENTS_TOTAL, &[]).unwrap_or(0) > 0);
    }
}
