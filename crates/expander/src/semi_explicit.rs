//! The Section 5 semi-explicit expander construction (Corollary 1,
//! Lemma 11, Theorem 12).
//!
//! A *semi-explicit* construction may use `o(N)` words of internal memory
//! and a pre-processing step, but must evaluate neighbors in `polylog(u)`
//! time with **no external-memory access**. The paper obtains, for
//! `u = poly(N)` and any constant `0 < β < 1`, an `(N, ε)`-expander of
//! degree `polylog(u)` using `O(N^β)` words of memory:
//!
//! 1. **Corollary 1** instantiates Theorem 9 (Capalbo et al. randomness
//!    conductors) as a family of *slightly* unbalanced expanders
//!    `F_i : [u_i] × [d_i] → [u_{i+1}]` with `u_{i+1} = u_i^{1-β'/c}`,
//!    each built from `O(u_i^{β'} / ε'^c)` words of pre-processed state.
//! 2. **Lemma 11 / Theorem 12** telescope the family (Lemma 10) for
//!    `k = O(1)` rounds until the right part shrinks to `O(N·d)`, with the
//!    per-stage error `ε'` chosen so `(1-ε')^k = 1-ε`.
//!
//! Our instantiation replaces the Theorem 9 *base objects* with
//! [`SeededExpander`] samples (see the crate docs for why this preserves
//! the measured behaviour) but keeps the paper's *construction*: the
//! telescoping recursion, the degree/size/error arithmetic, and the
//! internal-memory accounting, all of which are what Section 5 actually
//! contributes. The resulting graph is not striped — exactly as the paper
//! notes — so [`SemiExplicitExpander::striped`] applies the trivial
//! factor-`d` striping for use in the parallel disk model, and the
//! unstriped graph can be used directly in the parallel disk head model.

use crate::graph::NeighborFn;
use crate::seeded::SeededExpander;
use crate::telescope::remap_duplicates;

/// Configuration for the Section 5 construction.
#[derive(Debug, Clone, Copy)]
pub struct SemiExplicitConfig {
    /// Universe size `u` (must satisfy `u ≥ capacity`, i.e. `α ≤ 1`).
    pub universe: u64,
    /// Target capacity `N` of the resulting `(N, ε)`-expander.
    pub capacity: usize,
    /// Memory exponent `β ∈ (0, 1)`: the construction may use `O(N^β)`
    /// words of internal memory.
    pub beta: f64,
    /// Total expansion loss `ε` of the composed graph.
    pub epsilon: f64,
    /// Seed for the sampled base expanders.
    pub seed: u64,
    /// Cap on each stage's degree. Theorem 12's honest degrees are
    /// `polylog(u)` *per stage* and multiply across stages — faithful but
    /// astronomically large at laptop scale (the paper itself concedes the
    /// structures "may become a practical choice if and when explicit and
    /// efficient constructions ... appear"). The cap trades per-stage
    /// expansion (reported, and measured by the SEC5 experiment) for an
    /// evaluable composite degree. Default 16.
    pub stage_degree_cap: usize,
}

impl Default for SemiExplicitConfig {
    fn default() -> Self {
        SemiExplicitConfig {
            universe: 1 << 40,
            capacity: 1 << 10,
            beta: 0.5,
            epsilon: 1.0 / 12.0,
            seed: 0x5EED_5EED,
            stage_degree_cap: 16,
        }
    }
}

/// The fixed constant `c` of Theorem 9 in our instantiation.
pub const THEOREM9_C: f64 = 2.0;

/// Per-stage description in the [`SemiExplicitReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageReport {
    /// Left part size `u_i`.
    pub left: u64,
    /// Right part size `u_{i+1}`.
    pub right: usize,
    /// Stage degree `d_i`.
    pub degree: usize,
    /// Pre-processed internal memory charged to this stage (words),
    /// `⌈((u_i/u_{i+1})/ε')^c⌉` per Theorem 9's `s = poly(u/v, 1/ε)`.
    pub memory_words: u64,
}

/// What the construction achieved, for the SEC5 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiExplicitReport {
    /// The stages, outermost first.
    pub stages: Vec<StageReport>,
    /// Composed degree `d = Π d_i`.
    pub degree: usize,
    /// Final right part size.
    pub right_size: usize,
    /// Per-stage error `ε'` with `(1-ε')^k = 1-ε`.
    pub epsilon_per_stage: f64,
    /// Total internal memory charged (words).
    pub memory_words: u64,
    /// The `O(N^β / ε^c)` budget of Theorem 12 (for comparison).
    pub memory_budget_words: u64,
}

/// A telescoped chain of base expanders with final multi-edge remapping.
#[derive(Debug, Clone)]
pub struct SemiExplicitExpander {
    stages: Vec<SeededExpander>,
    degree: usize,
    report: SemiExplicitReport,
}

/// Error from [`SemiExplicitExpander::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// `capacity > universe` (`α > 1`) — the construction needs
    /// `u = poly(N)` with `N ≤ u`.
    CapacityExceedsUniverse,
    /// `β` outside `(0, 1)` or `ε` outside `(0, 1)`.
    BadParameters(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::CapacityExceedsUniverse => {
                write!(f, "capacity N must not exceed universe u")
            }
            BuildError::BadParameters(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl SemiExplicitExpander {
    /// Run the Theorem 12 construction.
    pub fn build(cfg: SemiExplicitConfig) -> Result<Self, BuildError> {
        if !(cfg.beta > 0.0 && cfg.beta < 1.0) {
            return Err(BuildError::BadParameters(format!(
                "β = {} not in (0,1)",
                cfg.beta
            )));
        }
        if !(cfg.epsilon > 0.0 && cfg.epsilon < 1.0) {
            return Err(BuildError::BadParameters(format!(
                "ε = {} not in (0,1)",
                cfg.epsilon
            )));
        }
        if (cfg.capacity as u64) > cfg.universe {
            return Err(BuildError::CapacityExceedsUniverse);
        }
        if cfg.stage_degree_cap < 4 {
            return Err(BuildError::BadParameters(
                "stage_degree_cap must be at least 4".into(),
            ));
        }
        let u = cfg.universe as f64;
        let n = cfg.capacity as f64;
        // α with u = N^{1/α}; β' = α·β so the memory O(u^{αβ}) = O(N^β).
        let alpha = n.ln() / u.ln();
        let beta_prime = (alpha * cfg.beta).min(0.9);
        let shrink = 1.0 - beta_prime / THEOREM9_C; // u_{i+1} = u_i^shrink

        // Pass 1: fix the stage sizes (in log2 space) per the Lemma 11
        // recurrence e_{i+1} = shrink · e_i, stopping as soon as the right
        // part is down to ~8·N·d (with d estimated as stage_degree_cap per
        // stage). Theorem 12 promises k = O(1); we cap at 4 stages, letting
        // the last stage absorb any residual unbalance (Theorem 9 permits
        // arbitrary unbalance — the memory charge below reflects it).
        let cap_bits = (cfg.stage_degree_cap as f64).log2();
        let e_n = n.log2();
        let mut exps = vec![u.log2()];
        let mut e = u.log2();
        let max_stages = 4;
        for j in 1..=max_stages {
            let target = e_n + j as f64 * cap_bits + 3.0;
            // Never shrink below the feasible right-part size (v ≥ 8·N·d,
            // estimated with cap-degree stages): clamping up means the
            // stage absorbs extra unbalance, which Theorem 9 permits at a
            // memory cost the accounting below reflects.
            let e_next = (e * shrink).max(target);
            if e_next >= e - 0.25 && exps.len() > 1 {
                break; // no meaningful shrink left: previous stage was final
            }
            exps.push(e_next.min(e - 0.25));
            e = exps[exps.len() - 1];
            if e <= target + 1e-9 {
                break;
            }
        }
        let k = exps.len() - 1;
        let eps_stage = 1.0 - (1.0 - cfg.epsilon).powf(1.0 / k.max(1) as f64);

        // Pass 2: instantiate the stages with Corollary 1's parameters.
        let mut stages = Vec::with_capacity(k);
        let mut stage_reports = Vec::with_capacity(k);
        let mut degree = 1usize;
        let mut memory_words = 0u64;
        let mut left = cfg.universe;
        #[allow(clippy::needless_range_loop)] // index i also seeds the stage
        for i in 1..=k {
            let right_target = (exps[i].exp2().ceil() as usize).max(cfg.capacity);
            // d_i = poly(log(u_i/v_i), 1/ε'): our instantiation takes the
            // first power — ⌈log2(u_i/v_i) / ε'⌉ — clamped to
            // [4, stage_degree_cap].
            let unbalance_bits = ((left as f64).log2() - (right_target as f64).log2()).max(1.0);
            let d_i = ((unbalance_bits / eps_stage).ceil() as usize).clamp(4, cfg.stage_degree_cap);
            let g = SeededExpander::with_right_size(
                left,
                right_target,
                d_i,
                cfg.seed.wrapping_add(i as u64),
            );
            let right = g.right_size();
            // Theorem 9 state: s = poly(u/v, 1/ε); we charge ((u/v)/ε')^c.
            let stage_mem = (((left as f64 / right as f64) / eps_stage).powf(THEOREM9_C)).ceil();
            memory_words += stage_mem as u64;
            degree = degree
                .checked_mul(d_i)
                .expect("composed degree overflow — parameters too aggressive");
            stage_reports.push(StageReport {
                left,
                right,
                degree: d_i,
                memory_words: stage_mem as u64,
            });
            stages.push(g);
            left = right as u64;
        }

        let right_size = stages
            .last()
            .map_or(cfg.capacity, SeededExpander::right_size);
        let budget = (n.powf(cfg.beta) / cfg.epsilon.powf(THEOREM9_C)).ceil() as u64;
        let report = SemiExplicitReport {
            stages: stage_reports,
            degree,
            right_size,
            epsilon_per_stage: eps_stage,
            memory_words,
            memory_budget_words: budget,
        };
        Ok(SemiExplicitExpander {
            stages,
            degree,
            report,
        })
    }

    /// The construction report (degrees, sizes, memory accounting).
    #[must_use]
    pub fn report(&self) -> &SemiExplicitReport {
        &self.report
    }

    /// Number of telescoped stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Apply the trivial striping transformation for parallel-disk use
    /// (factor-`d` space overhead).
    #[must_use]
    pub fn striped(self) -> crate::striped::TriviallyStriped<Self> {
        crate::striped::TriviallyStriped::new(self)
    }
}

impl NeighborFn for SemiExplicitExpander {
    fn left_size(&self) -> u64 {
        self.stages.first().map_or(1, SeededExpander::left_size)
    }

    fn right_size(&self) -> usize {
        self.report.right_size
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn neighbor(&self, x: u64, i: usize) -> usize {
        self.neighbors(x)[i]
    }

    fn neighbors(&self, x: u64) -> Vec<usize> {
        let mut frontier: Vec<u64> = vec![x];
        for stage in &self.stages {
            let mut next = Vec::with_capacity(frontier.len() * stage.degree());
            for &m in &frontier {
                for y in stage.neighbors(m) {
                    next.push(y as u64);
                }
            }
            frontier = next;
        }
        let mut out: Vec<usize> = frontier.into_iter().map(|y| y as usize).collect();
        remap_duplicates(&mut out, self.report.right_size);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::worst_expansion_sampled;

    fn cfg() -> SemiExplicitConfig {
        SemiExplicitConfig {
            universe: 1 << 24,
            capacity: 1 << 9,
            beta: 0.5,
            epsilon: 0.25,
            seed: 99,
            stage_degree_cap: 12,
        }
    }

    #[test]
    fn builds_with_constant_stages() {
        let g = SemiExplicitExpander::build(cfg()).unwrap();
        assert!(g.num_stages() >= 1);
        assert!(g.num_stages() <= 4, "Theorem 12 promises k = O(1)");
        let r = g.report();
        assert_eq!(r.stages.len(), g.num_stages());
        assert_eq!(
            r.degree,
            r.stages.iter().map(|s| s.degree).product::<usize>()
        );
    }

    #[test]
    fn right_part_shrinks_monotonically() {
        let g = SemiExplicitExpander::build(cfg()).unwrap();
        let mut prev = g.report().stages[0].left as f64;
        for s in &g.report().stages {
            assert!((s.right as f64) < prev, "stage failed to shrink");
            prev = s.right as f64;
        }
    }

    #[test]
    fn neighbors_are_distinct_and_in_range() {
        let g = SemiExplicitExpander::build(cfg()).unwrap();
        for x in (0..50u64).map(|i| i.wrapping_mul(0xABCD_EF12_3456) % g.left_size()) {
            let ns = g.neighbors(x);
            assert_eq!(ns.len(), g.degree());
            let mut d = ns.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), ns.len());
            assert!(ns.iter().all(|&y| y < g.right_size()));
        }
    }

    #[test]
    fn memory_within_small_factor_of_budget() {
        let g = SemiExplicitExpander::build(cfg()).unwrap();
        let r = g.report();
        // The constant in O(N^β/ε^c) is modest for our instantiation.
        assert!(
            r.memory_words <= 64 * r.memory_budget_words.max(1),
            "memory {} far above budget {}",
            r.memory_words,
            r.memory_budget_words
        );
    }

    #[test]
    fn sampled_expansion_meets_target() {
        let g = SemiExplicitExpander::build(cfg()).unwrap();
        let pop: Vec<u64> = (0..4096u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) % (1 << 24))
            .collect();
        let w = worst_expansion_sampled(&g, &pop, &[2, 8, 32], 20, 3);
        assert!(
            w.ratio >= 1.0 - 2.0 * 0.25,
            "sampled worst expansion {} too low",
            w.ratio
        );
    }

    #[test]
    fn striped_version_is_striped() {
        let g = SemiExplicitExpander::build(cfg()).unwrap();
        let d = g.degree();
        let v = g.right_size();
        let s = g.striped();
        assert!(s.is_striped());
        assert_eq!(s.right_size(), v * d);
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut c = cfg();
        c.beta = 1.5;
        assert!(matches!(
            SemiExplicitExpander::build(c),
            Err(BuildError::BadParameters(_))
        ));
        let mut c2 = cfg();
        c2.capacity = usize::MAX;
        c2.universe = 1 << 20;
        assert!(matches!(
            SemiExplicitExpander::build(c2),
            Err(BuildError::CapacityExceedsUniverse)
        ));
        let mut c3 = cfg();
        c3.epsilon = 0.0;
        assert!(SemiExplicitExpander::build(c3).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SemiExplicitExpander::build(cfg()).unwrap();
        let b = SemiExplicitExpander::build(cfg()).unwrap();
        for x in 0..20 {
            assert_eq!(a.neighbors(x), b.neighbors(x));
        }
    }

    #[test]
    fn error_display() {
        assert!(BuildError::CapacityExceedsUniverse
            .to_string()
            .contains("universe"));
    }
}
