//! # `expander` — unbalanced bipartite expander graphs
//!
//! The SPAA'06 paper's dictionaries are built on *unbalanced bipartite
//! expanders*: left-`d`-regular bipartite graphs `G = (U, V, E)` where the
//! left part is the key universe and the right part indexes disk blocks.
//! Two equivalent-looking definitions are used:
//!
//! * **Definition 1** — a `(d, ε, δ)`-expander: every `S ⊆ U` has at least
//!   `min((1-ε)·d·|S|, (1-δ)·|V|)` neighbors.
//! * **Definition 2** — an `(N, ε)`-expander: every `S ⊆ U` with `|S| ≤ N`
//!   has at least `(1-ε)·d·|S|` neighbors.
//!
//! This crate provides:
//!
//! * the [`NeighborFn`] abstraction (graphs are given by their neighbor
//!   *function*, never materialized — the left side is the whole universe),
//! * [`SeededExpander`] — a striped graph sampled from a seeded
//!   pseudorandom family. Optimal *explicit* expanders are not known (the
//!   paper says so and works around it); random striped graphs achieve the
//!   optimal parameters with high probability, so a fixed seeded sample is
//!   the faithful stand-in, mirroring the "found probabilistically in
//!   time poly(s)" preprocessing of the paper's Theorem 9. Everything built
//!   on top is deterministic once the seed is fixed.
//! * [`family`] — the pluggable hash-family seam: [`NeighborFamily`],
//!   the `Copy` configuration handle [`FamilyKind`], and the
//!   [`FamilyExpander`] graph value the dictionaries store. Besides the
//!   seeded sampler the built-ins are [`TabulationExpander`] (simple
//!   tabulation à la Aamand–Knudsen–Thorup — same load bounds, faster
//!   per hash) and [`PolynomialExpander`] (an explicit Reed–Solomon
//!   construction for small universes),
//! * [`mix`] — the shared splitmix64 primitives every family (and the
//!   server's shard router) draws on,
//! * [`unique`] — unique-neighbor machinery (`Φ(S)`, Lemmas 4 and 5, and
//!   the recursive peeling used by Theorem 6's construction),
//! * [`telescope`] — the telescope product (Lemma 10) and its recursion
//!   (Lemma 11), with deterministic multi-edge remapping,
//! * [`semi_explicit`] — the Section 5 construction (Corollary 1 +
//!   Theorem 12): an `(N, ε)`-expander of degree `polylog(u)` for
//!   `u = poly(N)` using `O(N^β)` words of internal memory,
//! * [`striped`] — the trivial striping transformation (copy the right
//!   side once per stripe, a factor-`d` space overhead, as the paper's
//!   Section 5 closing remark describes), and
//! * [`verify`] — exhaustive and sampling-based expansion verifiers used
//!   by the test-suite to certify small instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explicit;
pub mod family;
pub mod graph;
pub mod mix;
pub mod params;
pub mod seeded;
pub mod semi_explicit;
pub mod striped;
pub mod tabulation;
pub mod telescope;
pub mod unique;
pub mod verify;

pub use explicit::PolynomialExpander;
pub use family::{DynNeighborFn, FamilyExpander, FamilyKind, NeighborFamily};
pub use graph::NeighborFn;
pub use params::ExpanderParams;
pub use seeded::SeededExpander;
pub use semi_explicit::{SemiExplicitExpander, SemiExplicitReport};
pub use striped::TriviallyStriped;
pub use tabulation::TabulationExpander;
pub use telescope::TelescopeExpander;
