//! Seeded pseudorandom striped expanders.
//!
//! No explicit construction matching the optimal parameters
//! (`d = O(log(u/v))`, `v = Θ(N·d)`) is known — the paper assumes access to
//! such a graph "for free" and notes that random striped graphs achieve the
//! parameters with high probability. [`SeededExpander`] fixes one sample
//! from that distribution: the neighbor function is a strong 64-bit mixing
//! function of `(seed, x, i)`. Once the seed is chosen everything downstream
//! is deterministic, mirroring the paper's model of a one-time
//! (probabilistic) preprocessing step that finds the graph.
//!
//! The graph is **striped** by construction: the `i`-th neighbor of every
//! key lies in stripe `i`, so the `d` stripes map onto `d` disks and
//! evaluating all neighbors addresses one block per disk.

use crate::graph::NeighborFn;

// Re-exported from the consolidated mixing module (`crate::mix`) so the
// historical `expander::seeded::mix64` path keeps working.
pub use crate::mix::mix64;

/// A striped left-`d`-regular bipartite graph with pseudorandom edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededExpander {
    left: u64,
    stripe: usize,
    degree: usize,
    seed: u64,
}

impl SeededExpander {
    /// Graph over universe `[0, left)` with `degree` stripes of
    /// `stripe_size` right vertices each (so `v = degree · stripe_size`).
    ///
    /// # Panics
    /// Panics if `degree == 0`, `stripe_size == 0`, or `left == 0`.
    #[must_use]
    pub fn new(left: u64, stripe_size: usize, degree: usize, seed: u64) -> Self {
        assert!(left > 0, "empty universe");
        assert!(degree > 0, "degree must be positive");
        assert!(stripe_size > 0, "stripes must be non-empty");
        SeededExpander {
            left,
            stripe: stripe_size,
            degree,
            seed,
        }
    }

    /// Convenience: graph with right part of *total* size `v` (rounded up
    /// to a multiple of `degree`).
    #[must_use]
    pub fn with_right_size(left: u64, v: usize, degree: usize, seed: u64) -> Self {
        let stripe = v.div_ceil(degree).max(1);
        Self::new(left, stripe, degree, seed)
    }

    /// The seed this sample was drawn with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The paper's "found probabilistically" preprocessing step, made
    /// concrete: try seeds `start_seed, start_seed+1, …` until one passes
    /// the **exhaustive** `(max_n, ε)` verification, for at most
    /// `attempts` tries. Only feasible for small universes (the verifier
    /// enumerates all subsets of size ≤ `max_n`).
    ///
    /// A random left-`d`-regular striped graph has the required expansion
    /// with high probability, so a handful of attempts suffices in
    /// practice; `None` signals the parameters are infeasible (e.g.
    /// `v < (1-ε)·d·max_n`).
    #[must_use]
    pub fn search_verified(
        left: u64,
        stripe_size: usize,
        degree: usize,
        max_n: usize,
        epsilon: f64,
        start_seed: u64,
        attempts: u64,
    ) -> Option<Self> {
        for t in 0..attempts {
            let g = Self::new(left, stripe_size, degree, start_seed.wrapping_add(t));
            if crate::verify::is_n_eps_expander_exhaustive(&g, max_n, epsilon) {
                return Some(g);
            }
        }
        None
    }
}

impl NeighborFn for SeededExpander {
    fn left_size(&self) -> u64 {
        self.left
    }

    fn right_size(&self) -> usize {
        self.stripe * self.degree
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn neighbor(&self, x: u64, i: usize) -> usize {
        assert!(
            i < self.degree,
            "edge index {i} out of range (d = {})",
            self.degree
        );
        assert!(
            x < self.left || self.left == u64::MAX,
            "key {x} outside universe of size {}",
            self.left
        );
        // Two rounds of mixing keep (x, i) pairs well spread even for
        // adversarially structured x (sequential keys, bit-planes, ...).
        let h = mix64(mix64(self.seed ^ x).wrapping_add(i as u64 ^ 0xA5A5_A5A5_A5A5_A5A5));
        let j = (h % self.stripe as u64) as usize;
        i * self.stripe + j
    }

    fn is_striped(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_stay_in_their_stripes() {
        let g = SeededExpander::new(1 << 32, 100, 8, 42);
        for x in [0u64, 1, 17, 1 << 20, (1 << 32) - 1] {
            for i in 0..8 {
                let y = g.neighbor(x, i);
                assert!(y >= i * 100 && y < (i + 1) * 100);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = SeededExpander::new(1 << 20, 64, 6, 7);
        let g2 = SeededExpander::new(1 << 20, 64, 6, 7);
        for x in 0..100 {
            assert_eq!(g1.neighbors(x), g2.neighbors(x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = SeededExpander::new(1 << 20, 64, 6, 7);
        let g2 = SeededExpander::new(1 << 20, 64, 6, 8);
        let same = (0..200)
            .filter(|&x| g1.neighbors(x) == g2.neighbors(x))
            .count();
        assert!(
            same < 5,
            "seeds should give (almost) entirely different graphs"
        );
    }

    #[test]
    fn with_right_size_rounds_up() {
        let g = SeededExpander::with_right_size(1 << 20, 1000, 7, 0);
        assert!(g.right_size() >= 1000);
        assert_eq!(g.right_size() % 7, 0);
        assert_eq!(g.stripe_size(), g.right_size() / 7);
    }

    #[test]
    fn spread_within_stripe_is_roughly_uniform() {
        let g = SeededExpander::new(1 << 40, 16, 4, 99);
        let mut counts = [0usize; 16];
        for x in 0..1600 {
            let (s, j) = g.stripe_of(g.neighbor(x, 2));
            assert_eq!(s, 2);
            counts[j] += 1;
        }
        // 1600 keys over 16 slots: expect ~100 each; allow wide slack.
        for &c in &counts {
            assert!(c > 40 && c < 200, "slot count {c} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_index_panics() {
        let g = SeededExpander::new(16, 4, 2, 0);
        let _ = g.neighbor(0, 2);
    }

    #[test]
    fn mix64_is_a_bijection_probe() {
        // Spot-check injectivity on a small sample.
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)));
        }
    }
}
