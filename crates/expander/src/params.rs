//! Parameter arithmetic for the paper's expander-based constructions.
//!
//! Collects in one place every quantitative relationship the paper uses:
//! the default degree (`d = O(log u)`, with `d > 12` forced by the fixed
//! `ε = 1/12` of Theorem 6), right-part sizing (`v = Θ(N·d)` for
//! `(N, ε)`-expanders, `v = N/log N` buckets for Section 4.1), the
//! Definition 1 ⇄ Definition 2 conversion, and the Lemma 3 load bound.

/// Parameters describing a `(d, ε, δ)` / `(N, ε)` expander instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpanderParams {
    /// Left degree `d`.
    pub degree: usize,
    /// Right part size `v`.
    pub right_size: usize,
    /// Expansion loss `ε` (every small set has `≥ (1-ε)·d·|S|` neighbors).
    pub epsilon: f64,
    /// Saturation threshold `δ` (alternatively: sets expand until they
    /// cover `(1-δ)·v` right vertices).
    pub delta: f64,
}

impl ExpanderParams {
    /// Largest `N` for which a `(d, ε, δ)`-expander is an
    /// `(N, ε)`-expander: from the paper's remark after Definition 1,
    /// every `S` with `|S| < (1-δ)·v / ((1-ε)·d)` has `≥ (1-ε)·d·|S|`
    /// neighbors.
    #[must_use]
    pub fn capacity_n(&self) -> usize {
        (((1.0 - self.delta) * self.right_size as f64)
            / ((1.0 - self.epsilon) * self.degree as f64))
            .floor() as usize
    }
}

/// The paper's default degree for a universe of size `u`: `d = Θ(log u)`
/// with the Theorem 6 constraint `d > 12` (from fixing `ε = 1/12`).
///
/// `u = u64::MAX` is treated as `2^64`.
#[must_use]
pub fn paper_degree(u: u64) -> usize {
    let log_u = if u == u64::MAX {
        64
    } else {
        (64 - u.leading_zeros() as usize).max(1)
    };
    log_u.max(13)
}

/// The fixed `ε` of Theorem 6 ("for concreteness we set ε = 1/12"; this
/// imposes `d > 12`).
pub const THEOREM6_EPSILON: f64 = 1.0 / 12.0;

/// The fraction of each key's neighbors used to store its record:
/// `2d/3` fields per key (Theorem 6 with `λ = 1/3`).
#[must_use]
pub fn fields_per_key(degree: usize) -> usize {
    (2 * degree).div_ceil(3)
}

/// Right-part size `v = ⌈c · N · d⌉` for an `(N, ε)`-expander, rounded up
/// to a multiple of `d` so the graph can be striped. The paper:
/// "it is possible to have v = Θ(N·d)". The constant `c` trades space for
/// expansion quality; the dictionaries use [`DEFAULT_RIGHT_SLACK`].
#[must_use]
pub fn right_size(capacity_n: usize, degree: usize, slack: f64) -> usize {
    assert!(slack >= 1.0, "right part must have at least N·d vertices");
    let raw = (slack * capacity_n as f64 * degree as f64).ceil() as usize;
    raw.div_ceil(degree).max(1) * degree
}

/// Default right-part slack `c` in `v = c·N·d`.
///
/// For a random striped graph the expected expansion ratio of a size-`N`
/// set is `(1-e^{-t})/t` with `t = N·d/v`; hitting the paper's `ε = 1/12`
/// needs `t ≲ 1/6`, i.e. `v ≳ 6·N·d`, plus margin for below-average
/// subsets. `c = 8` satisfies the Lemma 4/5 unique-neighbor properties
/// comfortably (verified empirically by the `verify` tests and the SEC5
/// experiment).
pub const DEFAULT_RIGHT_SLACK: f64 = 8.0;

/// Lemma 3: after greedy `k`-item placement of `n` left vertices on a
/// `(d, ε, δ)`-expander with `d > k`, the maximum bucket load is at most
/// `kn/((1-δ)v) + log_{(1-ε)d/k} v`.
///
/// Returns `None` when the bound's premises fail (`(1-ε)·d/k ≤ 1`, i.e.
/// the logarithm base is not > 1, or `d ≤ k`).
#[must_use]
pub fn lemma3_bound(n: usize, k: usize, params: &ExpanderParams) -> Option<f64> {
    let d = params.degree as f64;
    let k_f = k as f64;
    if params.degree <= k {
        return None;
    }
    let base = (1.0 - params.epsilon) * d / k_f;
    if base <= 1.0 {
        return None;
    }
    let v = params.right_size as f64;
    let mu = k_f * n as f64 / ((1.0 - params.delta) * v);
    Some(mu + v.ln() / base.ln())
}

/// The refined form noted after Lemma 3:
/// `min_q ( kn/q + log_{(1-ε)d/k} q )` over `q ∈ [1, (1-δ)v]`.
#[must_use]
pub fn lemma3_bound_refined(n: usize, k: usize, params: &ExpanderParams) -> Option<f64> {
    let d = params.degree as f64;
    let k_f = k as f64;
    if params.degree <= k {
        return None;
    }
    let base = (1.0 - params.epsilon) * d / k_f;
    if base <= 1.0 {
        return None;
    }
    let q_max = ((1.0 - params.delta) * params.right_size as f64).floor() as usize;
    let mut best = f64::INFINITY;
    for q in 1..=q_max.max(1) {
        let val = k_f * n as f64 / q as f64 + (q as f64).ln() / base.ln();
        if val < best {
            best = val;
        }
    }
    Some(best)
}

/// Number of arrays (levels) in the Theorem 7 dynamic dictionary:
/// `l = ⌈log N / log(1/(6ε))⌉`.
///
/// # Panics
/// Panics unless `0 < 6ε < 1`.
#[must_use]
pub fn theorem7_levels(capacity_n: usize, epsilon: f64) -> usize {
    assert!(epsilon > 0.0 && 6.0 * epsilon < 1.0, "need 0 < 6ε < 1");
    let n = (capacity_n.max(2)) as f64;
    (n.ln() / (1.0 / (6.0 * epsilon)).ln()).ceil() as usize
}

/// Expander `ε` for a requested Theorem 7 performance parameter `ɛ`
/// (`epsilon_perf`): the proof picks `ε` with `6ε < 1/(1 + 1/ɛ)`, which
/// requires degree `d > 6(1 + 1/ɛ)`.
///
/// Returns `(graph_epsilon, min_degree)`.
#[must_use]
pub fn theorem7_graph_epsilon(epsilon_perf: f64) -> (f64, usize) {
    assert!(epsilon_perf > 0.0, "performance parameter must be positive");
    let bound = 1.0 / (1.0 + 1.0 / epsilon_perf); // 6ε must be below this
    let graph_eps = bound / 6.0 * 0.99; // sit just inside the open constraint
    let min_degree = (6.0 * (1.0 + 1.0 / epsilon_perf)).floor() as usize + 1;
    (graph_eps, min_degree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_degree_is_log_u_with_floor_13() {
        assert_eq!(paper_degree(1 << 10), 13); // log = 11 < 13
        assert_eq!(paper_degree(1 << 20), 21);
        assert_eq!(paper_degree(u64::MAX), 64);
        assert_eq!(paper_degree(1), 13);
    }

    #[test]
    fn fields_per_key_is_two_thirds() {
        assert_eq!(fields_per_key(12), 8);
        assert_eq!(fields_per_key(13), 9);
        assert_eq!(fields_per_key(15), 10);
    }

    #[test]
    fn right_size_is_multiple_of_degree() {
        let v = right_size(1000, 13, 2.0);
        assert_eq!(v % 13, 0);
        assert!(v >= 2 * 1000 * 13);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn right_size_rejects_tiny_slack() {
        let _ = right_size(10, 13, 0.5);
    }

    #[test]
    fn lemma3_bound_matches_hand_computation() {
        // d = 16, k = 1, ε = 1/4, δ = 1/2, v = 1024, n = 4096.
        let p = ExpanderParams {
            degree: 16,
            right_size: 1024,
            epsilon: 0.25,
            delta: 0.5,
        };
        let bound = lemma3_bound(4096, 1, &p).unwrap();
        // μ = 4096/(0.5·1024) = 8; log_12(1024) = ln 1024 / ln 12 ≈ 2.789.
        assert!((bound - (8.0 + (1024f64).ln() / 12f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn lemma3_bound_rejects_bad_premises() {
        let p = ExpanderParams {
            degree: 4,
            right_size: 64,
            epsilon: 0.8,
            delta: 0.5,
        };
        assert!(lemma3_bound(100, 1, &p).is_none()); // base = 0.8 ≤ 1
        let p2 = ExpanderParams {
            degree: 4,
            right_size: 64,
            epsilon: 0.1,
            delta: 0.5,
        };
        assert!(lemma3_bound(100, 4, &p2).is_none()); // d ≤ k
    }

    #[test]
    fn refined_bound_never_exceeds_simple_bound() {
        let p = ExpanderParams {
            degree: 16,
            right_size: 1024,
            epsilon: 0.25,
            delta: 0.5,
        };
        for n in [128usize, 1024, 16384] {
            let simple = lemma3_bound(n, 1, &p).unwrap();
            let refined = lemma3_bound_refined(n, 1, &p).unwrap();
            assert!(
                refined <= simple + 1e-9,
                "refined {refined} > simple {simple} at n = {n}"
            );
        }
    }

    #[test]
    fn capacity_n_matches_definition() {
        let p = ExpanderParams {
            degree: 10,
            right_size: 1000,
            epsilon: 0.1,
            delta: 0.5,
        };
        // (1-δ)v / ((1-ε)d) = 500 / 9 = 55.55...
        assert_eq!(p.capacity_n(), 55);
    }

    #[test]
    fn theorem7_levels_grow_with_n_and_shrink_with_small_epsilon() {
        let l_small_eps = theorem7_levels(1 << 20, 0.01);
        let l_big_eps = theorem7_levels(1 << 20, 0.15);
        assert!(l_small_eps < l_big_eps);
        assert!(theorem7_levels(1 << 10, 0.05) <= theorem7_levels(1 << 20, 0.05));
    }

    #[test]
    fn theorem7_graph_epsilon_satisfies_constraints() {
        for perf in [0.25, 0.5, 1.0, 2.0] {
            let (eps, d_min) = theorem7_graph_epsilon(perf);
            assert!(6.0 * eps < 1.0 / (1.0 + 1.0 / perf));
            assert!(d_min as f64 > 6.0 * (1.0 + 1.0 / perf));
        }
    }
}
