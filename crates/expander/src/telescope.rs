//! The telescope product (Lemma 10): composing two slightly unbalanced
//! expanders into a more unbalanced one.
//!
//! Given `F₁ : U₁ × [d₁] → V₁` and `F₂ : V₁ × [d₂] → V₂`, the composition
//! `F₂(F₁(x, e₁), e₂) : U₁ × ([d₁]×[d₂]) → V₂` is — after "appropriate and
//! fixed" re-mapping of multi-edges — a
//! `(c₂·v₂/(d₁·d₂), 1-(1-ε₁)(1-ε₂))`-expander (Lemma 10). The paper notes
//! that evaluating a *single* neighbor requires evaluating all of them
//! (the remapping depends on the whole multiset); since the dictionaries
//! always evaluate all neighbors anyway, this costs nothing extra.

use crate::graph::NeighborFn;

/// Composition of two neighbor functions with deterministic multi-edge
/// remapping.
#[derive(Debug, Clone)]
pub struct TelescopeExpander<G1, G2> {
    first: G1,
    second: G2,
}

impl<G1: NeighborFn, G2: NeighborFn> TelescopeExpander<G1, G2> {
    /// Compose `first` then `second`.
    ///
    /// # Panics
    /// Panics unless `second.left_size() ≥ first.right_size()` (the middle
    /// part must be a subset of `second`'s left part) and the final right
    /// part can absorb the remapped degree
    /// (`second.right_size() ≥ d₁·d₂`).
    #[must_use]
    pub fn new(first: G1, second: G2) -> Self {
        assert!(
            second.left_size() >= first.right_size() as u64,
            "middle parts incompatible: |V1| = {} > |U2| = {}",
            first.right_size(),
            second.left_size()
        );
        let d = first.degree() * second.degree();
        assert!(
            second.right_size() >= d,
            "right part of size {} cannot hold {d} distinct neighbors",
            second.right_size()
        );
        TelescopeExpander { first, second }
    }

    /// The two factors.
    #[must_use]
    pub fn parts(&self) -> (&G1, &G2) {
        (&self.first, &self.second)
    }
}

/// Deterministically remap duplicate entries so the list has no repeats:
/// each duplicate is moved to the next free vertex scanning upward
/// (mod `v`) from its original value. A pure function of the multiset, so
/// the result depends only on `x` — a "fixed manner" as Lemma 10 requires.
pub(crate) fn remap_duplicates(neighbors: &mut [usize], v: usize) {
    let mut used = std::collections::HashSet::with_capacity(neighbors.len());
    for y in neighbors.iter_mut() {
        if used.insert(*y) {
            continue;
        }
        let mut cand = (*y + 1) % v;
        while used.contains(&cand) {
            cand = (cand + 1) % v;
        }
        used.insert(cand);
        *y = cand;
    }
}

impl<G1: NeighborFn, G2: NeighborFn> NeighborFn for TelescopeExpander<G1, G2> {
    fn left_size(&self) -> u64 {
        self.first.left_size()
    }

    fn right_size(&self) -> usize {
        self.second.right_size()
    }

    fn degree(&self) -> usize {
        self.first.degree() * self.second.degree()
    }

    fn neighbor(&self, x: u64, i: usize) -> usize {
        // Remapping needs the full multiset; the paper accepts the same
        // d₁·d₂ factor for single-neighbor evaluation.
        self.neighbors(x)[i]
    }

    fn neighbors(&self, x: u64) -> Vec<usize> {
        let d2 = self.second.degree();
        let mut out = Vec::with_capacity(self.degree());
        for e1 in 0..self.first.degree() {
            let mid = self.first.neighbor(x, e1) as u64;
            for e2 in 0..d2 {
                out.push(self.second.neighbor(mid, e2));
            }
        }
        remap_duplicates(&mut out, self.second.right_size());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TableGraph;
    use crate::seeded::SeededExpander;
    use crate::verify::worst_expansion_exhaustive;

    #[test]
    fn composition_dimensions() {
        let g1 = SeededExpander::new(1 << 30, 64, 4, 1); // v1 = 256
        let g2 = SeededExpander::new(256, 16, 3, 2); // v2 = 48
        let t = TelescopeExpander::new(g1, g2);
        assert_eq!(t.left_size(), 1 << 30);
        assert_eq!(t.degree(), 12);
        assert_eq!(t.right_size(), 48);
    }

    #[test]
    fn neighbors_are_distinct_after_remap() {
        let g1 = SeededExpander::new(1 << 20, 32, 6, 3); // v1 = 192
        let g2 = SeededExpander::new(192, 20, 4, 4); // v2 = 80
        let t = TelescopeExpander::new(g1, g2);
        for x in (0..500u64).map(|i| i * 7919 % (1 << 20)) {
            let ns = t.neighbors(x);
            let mut dedup = ns.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), ns.len(), "duplicates for x = {x}");
            assert!(ns.iter().all(|&y| y < 80));
        }
    }

    #[test]
    fn single_neighbor_matches_full_evaluation() {
        let g1 = SeededExpander::new(1 << 16, 16, 3, 5);
        let g2 = SeededExpander::new(48, 12, 3, 6);
        let t = TelescopeExpander::new(g1, g2);
        let full = t.neighbors(1234);
        for (i, &y) in full.iter().enumerate() {
            assert_eq!(t.neighbor(1234, i), y);
        }
    }

    #[test]
    fn remap_is_identity_when_distinct() {
        let mut ns = vec![3, 7, 1];
        remap_duplicates(&mut ns, 10);
        assert_eq!(ns, vec![3, 7, 1]);
    }

    #[test]
    fn remap_moves_duplicates_upward() {
        let mut ns = vec![3, 3, 3, 4];
        remap_duplicates(&mut ns, 10);
        assert_eq!(ns, vec![3, 4, 5, 6]);
    }

    #[test]
    fn remap_wraps_around() {
        let mut ns = vec![9, 9];
        remap_duplicates(&mut ns, 10);
        assert_eq!(ns, vec![9, 0]);
    }

    #[test]
    fn composed_expansion_close_to_product_bound() {
        // Lemma 10: composed loss ≤ 1-(1-ε₁)(1-ε₂). Exhaustively check a
        // small instance and compare against the factors' measured losses.
        let g1 = SeededExpander::new(24, 12, 2, 21); // v1 = 24
        let g2 = SeededExpander::new(24, 10, 2, 22); // v2 = 20
        let e1 = 1.0 - worst_expansion_exhaustive(&g1, 2).ratio;
        let e2 = 1.0 - worst_expansion_exhaustive(&g2, 2).ratio;
        let t = TelescopeExpander::new(g1, g2);
        let et = 1.0 - worst_expansion_exhaustive(&t, 2).ratio;
        // Remapping can only help, so the composed loss obeys the bound.
        assert!(
            et <= 1.0 - (1.0 - e1) * (1.0 - e2) + 1e-9,
            "composed loss {et} exceeds product bound from e1={e1}, e2={e2}"
        );
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_middles_rejected() {
        let g1 = SeededExpander::new(100, 50, 2, 0); // v1 = 100
        let g2 = TableGraph::new(8, vec![vec![0, 4]; 50], true); // u2 = 50
        let _ = TelescopeExpander::new(g1, g2);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn tiny_final_right_part_rejected() {
        let g1 = SeededExpander::new(1 << 10, 8, 4, 0); // d1 = 4
        let g2 = SeededExpander::new(32, 3, 4, 0); // v2 = 12 < 16
        let _ = TelescopeExpander::new(g1, g2);
    }
}
