//! The neighbor-function abstraction for bipartite left-regular graphs.

/// A bipartite, left-`d`-regular graph `G = (U, V, E)` given by its
/// neighbor function `F : U × [d] → V`.
///
/// The left part is the key universe `U = [0, left_size)` (up to `2^64`
/// keys); the right part is `V = [0, right_size)`. Implementations must be
/// pure functions of `(x, i)` — the whole point of the paper's design is
/// that lookups "go directly to the relevant blocks, without any knowledge
/// of the current data other than the size of the data structure and the
/// size of the universe".
pub trait NeighborFn {
    /// Size of the left part (the universe), `u`. `u64::MAX` encodes `2^64`.
    fn left_size(&self) -> u64;

    /// Size of the right part, `v`.
    fn right_size(&self) -> usize;

    /// Left degree, `d`.
    fn degree(&self) -> usize;

    /// The `i`-th neighbor of `x`, an index in `[0, right_size)`.
    ///
    /// # Panics
    /// Implementations may panic if `x ≥ left_size` or `i ≥ degree`.
    fn neighbor(&self, x: u64, i: usize) -> usize;

    /// All `d` neighbors of `x`, in edge order.
    fn neighbors(&self, x: u64) -> Vec<usize> {
        (0..self.degree()).map(|i| self.neighbor(x, i)).collect()
    }

    /// Whether the graph is **striped**: the right side is partitioned into
    /// `d` equal stripes `[i·v/d, (i+1)·v/d)` and the `i`-th neighbor of
    /// every left vertex lies in stripe `i`. Striped graphs map stripe `i`
    /// to disk `i`, so reading all `d` neighbors is one parallel I/O.
    fn is_striped(&self) -> bool {
        false
    }

    /// Vertices per stripe (`v/d`) for striped graphs.
    ///
    /// # Panics
    /// Panics if the graph is not striped or `v` is not divisible by `d`.
    fn stripe_size(&self) -> usize {
        assert!(self.is_striped(), "graph is not striped");
        let v = self.right_size();
        let d = self.degree();
        assert_eq!(v % d, 0, "striped graph must have d | v");
        v / d
    }

    /// Decompose a right vertex of a striped graph into
    /// `(stripe index, index within stripe)` — the `(i, j)` form the paper
    /// requires striped constructions to return.
    fn stripe_of(&self, y: usize) -> (usize, usize) {
        let s = self.stripe_size();
        (y / s, y % s)
    }
}

impl<T: NeighborFn + ?Sized> NeighborFn for &T {
    fn left_size(&self) -> u64 {
        (**self).left_size()
    }
    fn right_size(&self) -> usize {
        (**self).right_size()
    }
    fn degree(&self) -> usize {
        (**self).degree()
    }
    fn neighbor(&self, x: u64, i: usize) -> usize {
        (**self).neighbor(x, i)
    }
    fn neighbors(&self, x: u64) -> Vec<usize> {
        (**self).neighbors(x)
    }
    fn is_striped(&self) -> bool {
        (**self).is_striped()
    }
}

/// A graph defined by an explicit adjacency table — used in tests and by
/// the verifier to express hand-crafted small graphs.
#[derive(Debug, Clone)]
pub struct TableGraph {
    right: usize,
    degree: usize,
    striped: bool,
    /// `table[x]` = the `d` neighbors of left vertex `x`.
    table: Vec<Vec<usize>>,
}

impl TableGraph {
    /// Build from an adjacency table.
    ///
    /// # Panics
    /// Panics if rows have unequal length or a neighbor is out of range.
    #[must_use]
    pub fn new(right: usize, table: Vec<Vec<usize>>, striped: bool) -> Self {
        let degree = table.first().map_or(0, Vec::len);
        for (x, row) in table.iter().enumerate() {
            assert_eq!(row.len(), degree, "left vertex {x} is not {degree}-regular");
            for (&y, i) in row.iter().zip(0..) {
                assert!(y < right, "neighbor {y} of {x} out of range");
                if striped {
                    let s = right / degree;
                    assert!(
                        y / s == i,
                        "vertex {x}: neighbor {i} = {y} is outside stripe {i}"
                    );
                }
            }
        }
        TableGraph {
            right,
            degree,
            striped,
            table,
        }
    }
}

impl NeighborFn for TableGraph {
    fn left_size(&self) -> u64 {
        self.table.len() as u64
    }
    fn right_size(&self) -> usize {
        self.right
    }
    fn degree(&self) -> usize {
        self.degree
    }
    fn neighbor(&self, x: u64, i: usize) -> usize {
        self.table[usize::try_from(x).expect("table graph index")][i]
    }
    fn is_striped(&self) -> bool {
        self.striped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TableGraph {
        // 4 left vertices, v = 6, d = 2, striped (stripes {0,1,2}, {3,4,5}).
        TableGraph::new(
            6,
            vec![vec![0, 3], vec![1, 4], vec![2, 5], vec![0, 4]],
            true,
        )
    }

    #[test]
    fn table_graph_basics() {
        let g = diamond();
        assert_eq!(g.left_size(), 4);
        assert_eq!(g.right_size(), 6);
        assert_eq!(g.degree(), 2);
        assert_eq!(g.neighbors(3), vec![0, 4]);
        assert!(g.is_striped());
        assert_eq!(g.stripe_size(), 3);
        assert_eq!(g.stripe_of(4), (1, 1));
    }

    #[test]
    fn reference_impl_delegates() {
        let g = diamond();
        let r: &dyn NeighborFn = &g;
        assert_eq!(r.neighbors(0), vec![0, 3]);
        assert_eq!(g.stripe_size(), 3);
    }

    #[test]
    #[should_panic(expected = "outside stripe")]
    fn striped_validation_rejects_bad_row() {
        let _ = TableGraph::new(6, vec![vec![0, 1]], true);
    }

    #[test]
    #[should_panic(expected = "not")]
    fn irregular_rows_rejected() {
        let _ = TableGraph::new(6, vec![vec![0, 3], vec![1]], false);
    }
}
