//! Shared mixing primitives.
//!
//! Every pseudorandom ingredient in the workspace — the seeded expander's
//! neighbor function, shard routing, table generation for simple
//! tabulation, coefficient draws for the polynomial baselines — reduces
//! to splitmix64. This module is the single home for those primitives;
//! `crates/server` routing and `baselines::hashfam` used to carry private
//! copies, which are consolidated here.

/// Finalizer of splitmix64 — a fast, well-distributed 64-bit mixer.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A splitmix64 stream: the canonical tiny seeded PRNG used wherever a
/// deterministic sequence of well-mixed words is needed (tabulation
/// tables, polynomial coefficients, sampled subsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit word of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` by rejection sampling on the top
    /// bits (bias-free for any bound; the rejection probability is
    /// negligible for the small bounds used here).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Lemire's widening-multiply rejection: the low half of r·bound
        // below 2^64 mod bound marks the over-represented residues.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Map a full-entropy 64-bit hash into `[0, m)` by the multiply-shift
/// (Lemire) reduction — one widening multiply, no division. Used by the
/// tabulation family, where avoiding the `%` of the splitmix chain is a
/// measurable part of the ns/hash win.
#[inline]
#[must_use]
pub fn reduce(h: u64, m: usize) -> usize {
    ((u128::from(h) * m as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_matches_stream_step() {
        // One stream step from seed s equals mix64(s) — the two forms of
        // splitmix64 used historically in the workspace agree.
        let mut s = SplitMix64::new(42);
        assert_eq!(s.next_u64(), mix64(42));
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range_and_spreads() {
        let mut s = SplitMix64::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[s.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "count {c} far from uniform");
        }
    }

    #[test]
    fn reduce_stays_in_range() {
        for m in [1usize, 7, 100, 1 << 20] {
            for x in [0u64, 1, u64::MAX / 2, u64::MAX] {
                assert!(reduce(x, m) < m);
            }
        }
        assert_eq!(reduce(u64::MAX, 100), 99);
        assert_eq!(reduce(0, 100), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_rejects_zero_bound() {
        let _ = SplitMix64::new(0).below(0);
    }
}
