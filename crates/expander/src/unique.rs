//! Unique neighbors: `Φ(S)`, Lemma 4/5 machinery, and the recursive
//! peeling that powers Theorem 6's construction.
//!
//! `Φ_G(S) = { y ∈ V : ∃! x ∈ S, (x,y) ∈ E }` — right vertices adjacent to
//! *exactly one* member of `S`. Lemma 4 shows `|Φ(S)| ≥ (1-2ε)·d·|S|`;
//! Lemma 5 shows that for any `λ > 0` the set
//! `S' = { x ∈ S : |Γ(x) ∩ Φ(S)| ≥ (1-λ)·d }` has `|S'| ≥ (1 - 2ε/λ)·|S|`.
//! Repeatedly extracting `S'` assigns every key `(1-λ)·d` private fields in
//! `O(log n)` rounds with geometrically decreasing work — the paper's
//! `O(n)`-I/O assignment procedure.

use crate::graph::NeighborFn;
use std::collections::HashMap;

/// The neighborhood multiplicity map of `S`: right vertex → how many
/// members of `S` are adjacent to it (with one representative).
#[must_use]
pub fn neighbor_multiplicity<G: NeighborFn>(g: &G, s: &[u64]) -> HashMap<usize, (usize, u64)> {
    let mut mult: HashMap<usize, (usize, u64)> = HashMap::with_capacity(s.len() * g.degree());
    for &x in s {
        for y in g.neighbors(x) {
            let e = mult.entry(y).or_insert((0, x));
            e.0 += 1;
            e.1 = x; // representative: last writer; only meaningful when count == 1
        }
    }
    mult
}

/// `Γ(S)`: the set of neighbors of `S` (as a sorted vector).
#[must_use]
pub fn neighborhood<G: NeighborFn>(g: &G, s: &[u64]) -> Vec<usize> {
    let mut v: Vec<usize> = neighbor_multiplicity(g, s).into_keys().collect();
    v.sort_unstable();
    v
}

/// `Φ(S)`: map from each unique-neighbor right vertex to its single left
/// neighbor in `S`.
///
/// A key adjacent to the same right vertex through two different edges
/// (a multi-edge) does **not** make that vertex unique.
#[must_use]
pub fn unique_neighbors<G: NeighborFn>(g: &G, s: &[u64]) -> HashMap<usize, u64> {
    // Count edge endpoints but collapse multi-edges from the same key by
    // tracking the distinct-owner count separately.
    let mut owners: HashMap<usize, (u64, bool)> = HashMap::with_capacity(s.len() * g.degree());
    for &x in s {
        let mut ns = g.neighbors(x);
        ns.sort_unstable();
        ns.dedup();
        for y in ns {
            owners
                .entry(y)
                .and_modify(|e| {
                    if e.0 != x {
                        e.1 = true; // shared
                    }
                })
                .or_insert((x, false));
        }
    }
    owners
        .into_iter()
        .filter_map(|(y, (x, shared))| (!shared).then_some((y, x)))
        .collect()
}

/// Lemma 4's lower bound on `|Φ(S)|` for an `(N, ε)`-expander:
/// `(1-2ε)·d·|S|`.
#[must_use]
pub fn phi_lower_bound(n: usize, degree: usize, epsilon: f64) -> f64 {
    (1.0 - 2.0 * epsilon) * degree as f64 * n as f64
}

/// One key together with its assigned (unique-neighbor) fields, in
/// increasing right-vertex order — for striped graphs this is stripe order,
/// the order the one-probe pointer chains follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The key.
    pub key: u64,
    /// Assigned right vertices, strictly increasing.
    pub fields: Vec<usize>,
}

/// Lemma 5 extraction: the keys of `s` with at least `fields_needed`
/// unique neighbors, each with its first `fields_needed` unique neighbors
/// (in increasing order), plus the leftover keys.
#[must_use]
pub fn extract_well_covered<G: NeighborFn>(
    g: &G,
    s: &[u64],
    fields_needed: usize,
) -> (Vec<Assignment>, Vec<u64>) {
    let phi = unique_neighbors(g, s);
    let mut covered = Vec::new();
    let mut rest = Vec::new();
    for &x in s {
        let mut mine: Vec<usize> = g
            .neighbors(x)
            .into_iter()
            .filter(|y| phi.get(y) == Some(&x))
            .collect();
        mine.sort_unstable();
        mine.dedup();
        if mine.len() >= fields_needed {
            mine.truncate(fields_needed);
            covered.push(Assignment {
                key: x,
                fields: mine,
            });
        } else {
            rest.push(x);
        }
    }
    (covered, rest)
}

/// Error from [`peel`]: the graph failed to expand enough for some
/// residual set (possible only when the sampled graph misses its
/// with-high-probability parameters, or the caller overfills it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeelStuck {
    /// Keys that could not be assigned `fields_needed` unique fields.
    pub stuck: Vec<u64>,
}

impl std::fmt::Display for PeelStuck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unique-neighbor peeling stuck with {} unassigned keys (expansion failure)",
            self.stuck.len()
        )
    }
}

impl std::error::Error for PeelStuck {}

/// The full recursive assignment of Theorem 6: peel rounds of
/// well-covered keys until every key owns `fields_needed` fields.
///
/// Round `r`'s assignments are guaranteed disjoint from all earlier
/// rounds' (the paper: "there is no intersection between the assigned
/// neighbor set for S' and Γ(S \ S')"), which [`peel`] also re-checks via
/// a debug assertion.
///
/// Returns the per-round assignments (the construction writes each round's
/// fields in one streaming pass).
pub fn peel<G: NeighborFn>(
    g: &G,
    s: &[u64],
    fields_needed: usize,
) -> Result<Vec<Vec<Assignment>>, PeelStuck> {
    let mut rounds = Vec::new();
    let mut rest: Vec<u64> = s.to_vec();
    #[cfg(debug_assertions)]
    let mut taken: std::collections::HashSet<usize> = std::collections::HashSet::new();
    while !rest.is_empty() {
        let (covered, leftover) = extract_well_covered(g, &rest, fields_needed);
        if covered.is_empty() {
            return Err(PeelStuck { stuck: leftover });
        }
        #[cfg(debug_assertions)]
        for a in &covered {
            for &f in &a.fields {
                debug_assert!(taken.insert(f), "field {f} assigned twice across rounds");
            }
        }
        rounds.push(covered);
        rest = leftover;
    }
    Ok(rounds)
}

/// Flatten peel rounds into a key → fields map.
#[must_use]
pub fn assignments_by_key(rounds: &[Vec<Assignment>]) -> HashMap<u64, Vec<usize>> {
    rounds
        .iter()
        .flatten()
        .map(|a| (a.key, a.fields.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TableGraph;
    use crate::seeded::SeededExpander;

    /// Tiny hand-built graph: u = 3, v = 6, d = 2.
    /// x0 -> {0, 3}, x1 -> {0, 4}, x2 -> {1, 5}.
    fn tiny() -> TableGraph {
        TableGraph::new(6, vec![vec![0, 3], vec![0, 4], vec![1, 5]], true)
    }

    #[test]
    fn unique_neighbors_excludes_shared() {
        let g = tiny();
        let phi = unique_neighbors(&g, &[0, 1, 2]);
        // Vertex 0 is shared by x0 and x1; 3, 4, 1, 5 are unique.
        assert_eq!(phi.len(), 4);
        assert_eq!(phi.get(&3), Some(&0));
        assert_eq!(phi.get(&4), Some(&1));
        assert_eq!(phi.get(&1), Some(&2));
        assert_eq!(phi.get(&5), Some(&2));
        assert!(!phi.contains_key(&0));
    }

    #[test]
    fn neighborhood_is_union() {
        let g = tiny();
        assert_eq!(neighborhood(&g, &[0, 1]), vec![0, 3, 4]);
    }

    #[test]
    fn extract_well_covered_splits_correctly() {
        let g = tiny();
        let (covered, rest) = extract_well_covered(&g, &[0, 1, 2], 2);
        // Only x2 has 2 unique neighbors.
        assert_eq!(covered.len(), 1);
        assert_eq!(covered[0].key, 2);
        assert_eq!(covered[0].fields, vec![1, 5]);
        assert_eq!(rest, vec![0, 1]);
    }

    #[test]
    fn peel_terminates_on_tiny_graph() {
        let g = tiny();
        // With fields_needed = 1 everyone eventually peels: round 1 assigns
        // all three (each has ≥ 1 unique neighbor).
        let rounds = peel(&g, &[0, 1, 2], 1).unwrap();
        let by_key = assignments_by_key(&rounds);
        assert_eq!(by_key.len(), 3);
    }

    #[test]
    fn peel_reports_stuck() {
        // x0 and x1 have identical neighborhoods: no unique neighbors ever.
        let g = TableGraph::new(4, vec![vec![0, 2], vec![0, 2]], true);
        let err = peel(&g, &[0, 1], 1).unwrap_err();
        assert_eq!(err.stuck.len(), 2);
        assert!(err.to_string().contains("expansion failure"));
    }

    #[test]
    fn peel_on_seeded_expander_assigns_two_thirds_d() {
        // Realistic parameters: d = 13 (paper default for small u),
        // v = 2·n·d, n = 500 keys out of u = 2^20.
        let d = 13;
        let n = 500;
        let g = SeededExpander::new(1 << 20, 2 * n, d, 12345);
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 2097 % (1 << 20)).collect();
        let need = crate::params::fields_per_key(d);
        let rounds = peel(&g, &keys, need).expect("seeded graph should expand");
        let by_key = assignments_by_key(&rounds);
        assert_eq!(by_key.len(), n);
        for fields in by_key.values() {
            assert_eq!(fields.len(), need);
            // strictly increasing => distinct stripes or vertices
            assert!(fields.windows(2).all(|w| w[0] < w[1]));
        }
        // Lemma 5 with λ = 1/3, ε = 1/12 promises ≥ half peel per round;
        // geometric decay keeps the round count logarithmic.
        assert!(
            rounds.len() <= 16,
            "peeling took {} rounds, expected O(log n)",
            rounds.len()
        );
    }

    #[test]
    fn lemma4_bound_holds_on_seeded_expander() {
        let d = 16;
        let n = 300;
        let g = SeededExpander::new(1 << 30, 8 * n, d, 777);
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) % (1 << 30))
            .collect();
        let phi = unique_neighbors(&g, &keys);
        let bound = phi_lower_bound(n, d, 1.0 / 12.0);
        assert!(
            phi.len() as f64 >= bound * 0.9,
            "Φ(S) = {} below 0.9× Lemma 4 bound {bound}",
            phi.len()
        );
    }

    #[test]
    fn rounds_fields_disjoint() {
        let d = 13;
        let n = 200;
        let g = SeededExpander::new(1 << 20, 2 * n, d, 5);
        let keys: Vec<u64> = (0..n as u64).collect();
        let rounds = peel(&g, &keys, crate::params::fields_per_key(d)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for a in rounds.iter().flatten() {
            for &f in &a.fields {
                assert!(seen.insert(f), "field {f} assigned twice");
            }
        }
    }
}
