//! Trivial striping: make any expander striped at a factor-`d` space cost.
//!
//! From the paper's closing remark of Section 5: "we may stripe an expander
//! `F : U × [d] → V` in a trivial manner by making a copy `V_i` of the
//! right side `V` of the expander for each disk `i`. In order to find the
//! neighbor of `x ∈ U`, we calculate `F(x, i)` and return the corresponding
//! vertex in `V_i`. This incurs a factor `d` increase in the size of the
//! right part of the expander, and hence a factor `d` larger external
//! memory space usage."

use crate::graph::NeighborFn;

/// Wraps a (possibly non-striped) graph into a striped one by copying the
/// right side once per edge index.
#[derive(Debug, Clone)]
pub struct TriviallyStriped<G> {
    inner: G,
}

impl<G: NeighborFn> TriviallyStriped<G> {
    /// Wrap `inner`.
    #[must_use]
    pub fn new(inner: G) -> Self {
        TriviallyStriped { inner }
    }

    /// The wrapped graph.
    #[must_use]
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Space overhead factor versus the unstriped graph.
    #[must_use]
    pub fn space_overhead(&self) -> usize {
        self.inner.degree()
    }
}

impl<G: NeighborFn> NeighborFn for TriviallyStriped<G> {
    fn left_size(&self) -> u64 {
        self.inner.left_size()
    }

    fn right_size(&self) -> usize {
        self.inner.right_size() * self.inner.degree()
    }

    fn degree(&self) -> usize {
        self.inner.degree()
    }

    fn neighbor(&self, x: u64, i: usize) -> usize {
        i * self.inner.right_size() + self.inner.neighbor(x, i)
    }

    fn is_striped(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded::SeededExpander;
    use crate::telescope::TelescopeExpander;
    use crate::verify::worst_expansion_exhaustive;

    fn unstriped_composite() -> TelescopeExpander<SeededExpander, SeededExpander> {
        let g1 = SeededExpander::new(1 << 16, 32, 3, 1);
        let g2 = SeededExpander::new(96, 16, 3, 2);
        TelescopeExpander::new(g1, g2)
    }

    #[test]
    fn striping_multiplies_right_size_by_degree() {
        let g = unstriped_composite();
        let v = g.right_size();
        let d = g.degree();
        let s = TriviallyStriped::new(g);
        assert_eq!(s.right_size(), v * d);
        assert_eq!(s.space_overhead(), d);
        assert!(s.is_striped());
    }

    #[test]
    fn neighbors_land_in_their_stripes() {
        let s = TriviallyStriped::new(unstriped_composite());
        let stripe = s.stripe_size();
        for x in (0..100u64).map(|i| i * 653) {
            for i in 0..s.degree() {
                let y = s.neighbor(x, i);
                assert!(y >= i * stripe && y < (i + 1) * stripe);
            }
        }
    }

    #[test]
    fn striping_preserves_expansion() {
        // Mapping each edge class into its own copy of V can only increase
        // neighborhood sizes.
        let g = SeededExpander::new(20, 10, 2, 7);
        let before = worst_expansion_exhaustive(&g, 3).ratio;
        let s = TriviallyStriped::new(g);
        let after = worst_expansion_exhaustive(&s, 3).ratio;
        assert!(after >= before - 1e-12);
    }
}
