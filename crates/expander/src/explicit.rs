//! An explicit (construction-free-of-randomness) striped family on small
//! universes, Reed–Solomon flavored.
//!
//! The paper notes that no explicit construction matching the optimal
//! parameters is known; Section 5 ([`crate::semi_explicit`]) gets within
//! `polylog` factors semi-explicitly but its composed degree/right-size
//! arithmetic cannot honor an arbitrary `(stripe_size, degree)` geometry,
//! which the dictionary layouts demand exactly. [`PolynomialExpander`] is
//! the classical explicit compromise on *small universes*: interpret the
//! key as the coefficient vector of a degree-<2 polynomial over a prime
//! field `F_q` with `q ≥ max(stripe, d, ⌈√u⌉)`, and let the `i`-th
//! neighbor be the evaluation at the `i`-th point. Two distinct keys share
//! at most **one** evaluation point (their difference polynomial has at
//! most one root), so pairwise collisions are provably rare — the same
//! algebraic skeleton as the Guruswami–Umans–Vadhan expanders cited in
//! PAPERS.md, truncated to the degree-1 case.
//!
//! The construction involves no sampled tables and no seed-dependent
//! structure: the seed only rotates which `d` of the `q` evaluation points
//! are used, so even `seed = 0` gives a fully determined graph.

use crate::graph::NeighborFn;

/// Deterministic Miller–Rabin for `u64`: the witness set {2, 3, 5, 7, 11,
/// 13, 17, 19, 23, 29, 31, 37} is exact for all 64-bit integers.
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Smallest prime `≥ n`. By Bertrand's postulate the scan terminates
/// within a factor 2; in practice within a few dozen candidates.
fn next_prime(n: u64) -> u64 {
    let mut c = n.max(2);
    loop {
        if is_prime(c) {
            return c;
        }
        c += 1;
    }
}

/// Integer square root (floor) for `u64`.
fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = ((n as f64).sqrt() as u64).saturating_add(2);
    while x.checked_mul(x).is_none_or(|sq| sq > n) {
        x -= 1;
    }
    x
}

/// An explicit striped left-`d`-regular graph via linear polynomials over
/// a prime field.
///
/// Key `x` is split into digits `(c0, c1)` base `q` and mapped to the
/// polynomial `f_x(t) = c0 + c1·t (mod q)`; its `i`-th neighbor is
/// `f_x(t_i)` folded into the stripe, with `t_i = (offset + i) mod q`.
/// Requires `u ≤ q²` so the digit map is injective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolynomialExpander {
    left: u64,
    stripe: usize,
    degree: usize,
    /// Field size: smallest prime `≥ max(stripe, degree, ⌈√u⌉)`.
    q: u64,
    /// First evaluation point (seed-selected rotation of the point set).
    offset: u64,
    seed: u64,
}

impl PolynomialExpander {
    /// Graph over universe `[0, left)` with `degree` stripes of
    /// `stripe_size` right vertices each.
    ///
    /// The `seed` only rotates the evaluation-point set; the algebraic
    /// structure is fixed. Feasibility demands `left ≤ q²` where `q` is
    /// the chosen field size — guaranteed by picking `q ≥ ⌈√left⌉`.
    ///
    /// # Panics
    /// Panics if `degree == 0`, `stripe_size == 0`, or `left == 0`, or if
    /// `left` is so close to `u64::MAX` that `q²` overflows (the family is
    /// for *small universes*; use the seeded or tabulation family beyond
    /// `2^63`).
    #[must_use]
    pub fn new(left: u64, stripe_size: usize, degree: usize, seed: u64) -> Self {
        assert!(left > 0, "empty universe");
        assert!(degree > 0, "degree must be positive");
        assert!(stripe_size > 0, "stripes must be non-empty");
        let sqrt_u = if left == u64::MAX {
            1u64 << 32
        } else {
            let s = isqrt(left);
            if s * s < left { s + 1 } else { s }
        };
        let floor = sqrt_u.max(stripe_size as u64).max(degree as u64);
        let q = next_prime(floor);
        assert!(
            u128::from(q) * u128::from(q) >= u128::from(left),
            "universe {left} too large for field size {q}"
        );
        let offset = seed % q;
        PolynomialExpander {
            left,
            stripe: stripe_size,
            degree,
            q,
            offset,
            seed,
        }
    }

    /// The field size `q` the construction chose.
    #[must_use]
    pub fn field_size(&self) -> u64 {
        self.q
    }

    /// The seed (evaluation-point rotation) this instance uses.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Evaluate `f_x` at point index `i` (before stripe folding).
    #[inline]
    fn eval(&self, x: u64, i: usize) -> u64 {
        let c0 = x % self.q;
        let c1 = x / self.q;
        let t = (self.offset + i as u64) % self.q;
        (c0 + mul_mod(c1 % self.q, t, self.q)) % self.q
    }
}

impl NeighborFn for PolynomialExpander {
    fn left_size(&self) -> u64 {
        self.left
    }

    fn right_size(&self) -> usize {
        self.stripe * self.degree
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn neighbor(&self, x: u64, i: usize) -> usize {
        assert!(
            i < self.degree,
            "edge index {i} out of range (d = {})",
            self.degree
        );
        assert!(
            x < self.left || self.left == u64::MAX,
            "key {x} outside universe of size {}",
            self.left
        );
        let val = self.eval(x, i);
        // Fold [0, q) onto [0, stripe) by residue, NOT proportionally: a
        // proportional fold sends evaluations that differ by < q/stripe to
        // the same slot, so clustered keys (sequential c0, equal c1 —
        // exactly what dense key ranges produce) would collapse onto one
        // slot per stripe. The residue fold keeps nearby evaluations in
        // distinct slots at the price of a ≤ 1-in-⌊q/stripe⌋ uniformity
        // bias, which the chi-square quality gate tolerates since
        // q ≥ max(stripe, ⌈√u⌉) makes the bias O(stripe/√u).
        let j = (val % self.stripe as u64) as usize;
        i * self.stripe + j
    }

    fn is_striped(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_helpers() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(is_prime(104_729)); // 10000th prime
        assert!(!is_prime(104_730));
        assert!(is_prime((1 << 31) - 1)); // Mersenne prime 2^31-1
        assert_eq!(next_prime(100), 101);
        assert_eq!(next_prime(7919), 7919);
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(u64::MAX), (1 << 32) - 1);
    }

    #[test]
    fn neighbors_stay_in_their_stripes() {
        let g = PolynomialExpander::new(1 << 20, 100, 8, 42);
        for x in [0u64, 1, 17, 12345, (1 << 20) - 1] {
            for i in 0..8 {
                let y = g.neighbor(x, i);
                assert!(y >= i * 100 && y < (i + 1) * 100);
            }
        }
    }

    #[test]
    fn field_is_large_enough() {
        let g = PolynomialExpander::new(1 << 20, 50, 13, 0);
        let q = g.field_size();
        assert!(u128::from(q) * u128::from(q) >= 1 << 20);
        // q must cover both the stripe (50) and the degree (13); 50 wins.
        assert!(q >= 50);
        assert!(is_prime(q));
    }

    #[test]
    fn distinct_keys_share_at_most_one_evaluation_point() {
        // The algebraic core: f_x - f_y is a nonzero polynomial of degree
        // ≤ 1, so it has at most one root among the evaluation points.
        let g = PolynomialExpander::new(1 << 16, 300, 10, 7);
        for x in 0..40u64 {
            for y in (x + 1)..40 {
                let shared = (0..10).filter(|&i| g.eval(x, i) == g.eval(y, i)).count();
                assert!(
                    shared <= 1,
                    "keys {x},{y} share {shared} evaluation points"
                );
            }
        }
    }

    #[test]
    fn deterministic_and_seed_rotates_points() {
        let g1 = PolynomialExpander::new(1 << 16, 64, 6, 3);
        let g2 = PolynomialExpander::new(1 << 16, 64, 6, 3);
        for x in 0..100 {
            assert_eq!(g1.neighbors(x), g2.neighbors(x));
        }
        let g3 = PolynomialExpander::new(1 << 16, 64, 6, 4);
        // Keys below q have c1 = 0 (constant polynomials, rotation-
        // invariant); pick keys with a nonzero linear coefficient.
        let q = g1.field_size();
        let same = (0..200)
            .map(|x| (x + 1) * q % (1 << 16))
            .filter(|&x| g1.neighbors(x) == g3.neighbors(x))
            .count();
        assert!(same < 200, "seed rotation should move some neighbors");
    }

    #[test]
    fn spread_within_stripe_is_roughly_uniform() {
        let g = PolynomialExpander::new(1 << 20, 16, 4, 99);
        let mut counts = [0usize; 16];
        for x in 0..1600u64 {
            // Stride the keys so both digits vary.
            let key = x.wrapping_mul(653) % (1 << 20);
            let (s, j) = g.stripe_of(g.neighbor(key, 2));
            assert_eq!(s, 2);
            counts[j] += 1;
        }
        for &c in &counts {
            assert!(c > 30 && c < 300, "slot count {c} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_index_panics() {
        let g = PolynomialExpander::new(16, 4, 2, 0);
        let _ = g.neighbor(0, 2);
    }
}
