//! Simple tabulation hashing as a striped expander family.
//!
//! The modern derandomization line (Pătraşcu–Thorup; Aamand–Knudsen–
//! Thorup, *Power of d Choices with Simple Tabulation*) shows that
//! splitting a key into characters and XORing per-character random table
//! entries — **simple tabulation** — suffices for `d`-choice load-balance
//! bounds, despite being only 3-wise independent. The evaluation is a few
//! L1 loads and XORs instead of a multiply chain, which is why this
//! family is the speed champion of the `hashfam` ablation.
//!
//! [`TabulationExpander`] instantiates it as a striped left-`d`-regular
//! graph. The key's 8 bytes index 8 tables whose entries are **pairs**
//! `(h₁, h₂)` of 64-bit words; XORing the 8 entries tabulates two
//! independent simple-tabulation hashes at once from a 32 KiB table that
//! stays L1-resident *regardless of the degree*. Lane `i` is then the
//! double-hashing combination `h₁ + i·h₂` reduced into `[0, stripe)` by a
//! multiply-shift — constant memory traffic in `d`, and no division
//! anywhere on the lookup path. (An earlier layout tabulated all `d`
//! lanes directly from `8·256·d`-word tables; its memory traffic grew
//! with `d` and fell out of L1 exactly when the degree made speed
//! matter.)

use crate::graph::NeighborFn;
use crate::mix::{reduce, SplitMix64};
use std::sync::Arc;

const BYTES: usize = 8;
const RADIX: usize = 256;
/// Words per character entry: the `(h₁, h₂)` pair.
const LANES: usize = 2;

/// A striped left-`d`-regular graph with simple-tabulation edges.
///
/// Tables are derived deterministically from the seed, so two instances
/// with equal parameters are the same graph; `Clone` shares the tables.
#[derive(Clone)]
pub struct TabulationExpander {
    left: u64,
    stripe: usize,
    degree: usize,
    seed: u64,
    /// `tables[(b·256 + byte)·2 + w]` — word `w` of character `(b, byte)`.
    tables: Arc<[u64]>,
}

impl TabulationExpander {
    /// Graph over universe `[0, left)` with `degree` stripes of
    /// `stripe_size` right vertices each, tables drawn from `seed`.
    ///
    /// # Panics
    /// Panics if `degree == 0`, `stripe_size == 0`, or `left == 0`.
    #[must_use]
    pub fn new(left: u64, stripe_size: usize, degree: usize, seed: u64) -> Self {
        assert!(left > 0, "empty universe");
        assert!(degree > 0, "degree must be positive");
        assert!(stripe_size > 0, "stripes must be non-empty");
        let mut rng = SplitMix64::new(seed ^ 0x7AB1_7AB1_7AB1_7AB1);
        let tables: Arc<[u64]> = (0..BYTES * RADIX * LANES)
            .map(|_| rng.next_u64())
            .collect();
        TabulationExpander {
            left,
            stripe: stripe_size,
            degree,
            seed,
            tables,
        }
    }

    /// The seed the tables were drawn from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Words of internal memory held by the lookup tables.
    #[must_use]
    pub fn table_words(&self) -> usize {
        self.tables.len()
    }

    #[inline]
    fn check_key(&self, x: u64) {
        assert!(
            x < self.left || self.left == u64::MAX,
            "key {x} outside universe of size {}",
            self.left
        );
    }

    /// The two tabulated hashes of `x`: 8 XORs of 16-byte entries.
    #[inline]
    fn hash_pair(&self, x: u64) -> (u64, u64) {
        let mut h1 = 0u64;
        let mut h2 = 0u64;
        for b in 0..BYTES {
            let c = ((x >> (8 * b)) & 0xFF) as usize;
            let idx = (b * RADIX + c) * LANES;
            h1 ^= self.tables[idx];
            h2 ^= self.tables[idx + 1];
        }
        (h1, h2)
    }
}

impl std::fmt::Debug for TabulationExpander {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationExpander")
            .field("left", &self.left)
            .field("stripe", &self.stripe)
            .field("degree", &self.degree)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl PartialEq for TabulationExpander {
    fn eq(&self, other: &Self) -> bool {
        // Tables are a pure function of the seed.
        self.left == other.left
            && self.stripe == other.stripe
            && self.degree == other.degree
            && self.seed == other.seed
    }
}

impl Eq for TabulationExpander {}

impl NeighborFn for TabulationExpander {
    fn left_size(&self) -> u64 {
        self.left
    }

    fn right_size(&self) -> usize {
        self.stripe * self.degree
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn neighbor(&self, x: u64, i: usize) -> usize {
        assert!(
            i < self.degree,
            "edge index {i} out of range (d = {})",
            self.degree
        );
        self.check_key(x);
        let (h1, h2) = self.hash_pair(x);
        let lane = h1.wrapping_add((i as u64).wrapping_mul(h2));
        i * self.stripe + reduce(lane, self.stripe)
    }

    fn neighbors(&self, x: u64) -> Vec<usize> {
        // One `hash_pair` amortizes the table lookups over all d lanes.
        self.check_key(x);
        let (h1, h2) = self.hash_pair(x);
        (0..self.degree)
            .map(|i| {
                let lane = h1.wrapping_add((i as u64).wrapping_mul(h2));
                i * self.stripe + reduce(lane, self.stripe)
            })
            .collect()
    }

    fn is_striped(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_stay_in_their_stripes() {
        let g = TabulationExpander::new(1 << 32, 100, 8, 42);
        for x in [0u64, 1, 17, 1 << 20, (1 << 32) - 1] {
            for i in 0..8 {
                let y = g.neighbor(x, i);
                assert!(y >= i * 100 && y < (i + 1) * 100);
            }
        }
    }

    #[test]
    fn batched_neighbors_match_single_evaluations() {
        let g = TabulationExpander::new(1 << 40, 57, 13, 9);
        for x in (0..200u64).map(|i| i.wrapping_mul(0x9E37_79B9)) {
            let batch = g.neighbors(x);
            for (i, &y) in batch.iter().enumerate() {
                assert_eq!(y, g.neighbor(x, i));
            }
        }
    }

    #[test]
    fn deterministic_given_seed_and_clone_shares_tables() {
        let g1 = TabulationExpander::new(1 << 20, 64, 6, 7);
        let g2 = TabulationExpander::new(1 << 20, 64, 6, 7);
        let g3 = g1.clone();
        for x in 0..100 {
            assert_eq!(g1.neighbors(x), g2.neighbors(x));
            assert_eq!(g1.neighbors(x), g3.neighbors(x));
        }
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = TabulationExpander::new(1 << 20, 64, 6, 7);
        let g2 = TabulationExpander::new(1 << 20, 64, 6, 8);
        let same = (0..200)
            .filter(|&x| g1.neighbors(x) == g2.neighbors(x))
            .count();
        assert!(same < 5, "seeds should give almost entirely different graphs");
    }

    #[test]
    fn spread_within_stripe_is_roughly_uniform() {
        let g = TabulationExpander::new(1 << 40, 16, 4, 99);
        let mut counts = [0usize; 16];
        for x in 0..1600 {
            let (s, j) = g.stripe_of(g.neighbor(x, 2));
            assert_eq!(s, 2);
            counts[j] += 1;
        }
        for &c in &counts {
            assert!(c > 40 && c < 200, "slot count {c} far from uniform");
        }
    }

    #[test]
    fn sequential_keys_spread() {
        // The classic weakness of weak multiplicative schemes: dense
        // sequential keys. Tabulation's per-byte tables break the
        // structure — the low byte alone cycles through 256 entries.
        let g = TabulationExpander::new(1 << 32, 1024, 4, 5);
        let mut seen = std::collections::HashSet::new();
        for x in 0..256u64 {
            seen.insert(g.neighbor(x, 0));
        }
        assert!(seen.len() > 200, "sequential keys collapsed to {} slots", seen.len());
    }

    #[test]
    fn lanes_of_one_key_are_not_a_fixed_slot_pattern() {
        // Double hashing (h₁ + i·h₂) must not degenerate: across keys the
        // within-stripe slot of lane i and lane j differ for most keys.
        let g = TabulationExpander::new(1 << 32, 4096, 8, 3);
        let equal = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) % (1 << 32))
            .filter(|&x| {
                let n = g.neighbors(x);
                n[1] - g.stripe_size() == n[0]
            })
            .count();
        assert!(equal < 10, "{equal}/500 keys had identical lane-0/1 slots");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_index_panics() {
        let g = TabulationExpander::new(16, 4, 2, 0);
        let _ = g.neighbor(0, 2);
    }

    #[test]
    fn table_memory_accounting() {
        // Degree-independent: the (h₁, h₂) pair layout is 8·256·2 words
        // (32 KiB) no matter the degree.
        let g = TabulationExpander::new(1 << 20, 8, 5, 1);
        assert_eq!(g.table_words(), 8 * 256 * 2);
        let g = TabulationExpander::new(1 << 20, 8, 16, 1);
        assert_eq!(g.table_words(), 8 * 256 * 2);
    }
}
