//! Expansion verification.
//!
//! Deciding whether a graph is an `(N, ε)`-expander is coNP-hard in
//! general; for the test-suite we verify **exhaustively** on small
//! instances (every subset up to size `N`) and **by sampling** on larger
//! ones (random subsets at several sizes, reporting the worst expansion
//! ratio observed). The sampled check can only *refute* expansion, never
//! certify it — exactly the epistemic situation the paper's Section 6 open
//! problem ("practical and truly simple constructions could exist")
//! leaves us in.

use crate::graph::NeighborFn;
use crate::mix::mix64;
use std::collections::HashSet;

/// Result of an expansion measurement: the worst ratio
/// `|Γ(S)| / (d·|S|)` seen, and a witness set attaining it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionWitness {
    /// Worst observed `|Γ(S)| / (d·|S|)`.
    pub ratio: f64,
    /// A set attaining the worst ratio.
    pub witness: Vec<u64>,
}

fn ratio_of<G: NeighborFn>(g: &G, s: &[u64]) -> f64 {
    let mut seen = HashSet::with_capacity(s.len() * g.degree());
    for &x in s {
        for y in g.neighbors(x) {
            seen.insert(y);
        }
    }
    seen.len() as f64 / (g.degree() * s.len()) as f64
}

/// Exhaustively measure the worst expansion over **all** nonempty subsets
/// of the left part of size at most `max_n`.
///
/// Cost is `Σ_{k≤max_n} C(u, k)` neighbor evaluations — keep `u ≤ ~26` and
/// `max_n ≤ ~4`.
///
/// # Panics
/// Panics if the left part does not fit in `usize` or `max_n == 0`.
#[must_use]
pub fn worst_expansion_exhaustive<G: NeighborFn>(g: &G, max_n: usize) -> ExpansionWitness {
    assert!(max_n >= 1);
    let u = usize::try_from(g.left_size()).expect("exhaustive check needs a small universe");
    let mut worst = ExpansionWitness {
        ratio: f64::INFINITY,
        witness: Vec::new(),
    };
    let mut set: Vec<u64> = Vec::with_capacity(max_n);
    fn rec<G: NeighborFn>(
        g: &G,
        u: usize,
        start: usize,
        max_n: usize,
        set: &mut Vec<u64>,
        worst: &mut ExpansionWitness,
    ) {
        if !set.is_empty() {
            let r = ratio_of(g, set);
            if r < worst.ratio {
                worst.ratio = r;
                worst.witness = set.clone();
            }
        }
        if set.len() == max_n {
            return;
        }
        for x in start..u {
            set.push(x as u64);
            rec(g, u, x + 1, max_n, set, worst);
            set.pop();
        }
    }
    rec(g, u, 0, max_n, &mut set, &mut worst);
    worst
}

/// Check the Definition 2 property exhaustively: is `g` an
/// `(max_n, ε)`-expander?
#[must_use]
pub fn is_n_eps_expander_exhaustive<G: NeighborFn>(g: &G, max_n: usize, epsilon: f64) -> bool {
    worst_expansion_exhaustive(g, max_n).ratio >= 1.0 - epsilon
}

/// Sample `samples` uniform subsets of each size in `sizes` (drawn from a
/// caller-chosen key population) and report the worst expansion ratio.
///
/// Deterministic given `seed`.
#[must_use]
pub fn worst_expansion_sampled<G: NeighborFn>(
    g: &G,
    population: &[u64],
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> ExpansionWitness {
    let mut worst = ExpansionWitness {
        ratio: f64::INFINITY,
        witness: Vec::new(),
    };
    let mut state = seed;
    for &size in sizes {
        assert!(
            size <= population.len(),
            "sample size {size} exceeds population {}",
            population.len()
        );
        if size == 0 {
            continue;
        }
        for _ in 0..samples {
            // Floyd's algorithm over indices for a uniform size-subset.
            let mut chosen: HashSet<usize> = HashSet::with_capacity(size);
            let n = population.len();
            for j in (n - size)..n {
                state = mix64(state.wrapping_add(0x2545_F491_4F6C_DD1D));
                let t = (state % (j as u64 + 1)) as usize;
                if !chosen.insert(t) {
                    chosen.insert(j);
                }
            }
            let mut s: Vec<u64> = chosen.into_iter().map(|i| population[i]).collect();
            s.sort_unstable(); // canonical order: HashSet iteration is not deterministic
            let r = ratio_of(g, &s);
            if r < worst.ratio {
                worst.ratio = r;
                worst.witness = s;
            }
        }
    }
    worst
}

/// Measured unique-neighbor ratio `|Φ(S)| / (d·|S|)` — Lemma 4 predicts it
/// is at least `1 - 2ε` for sets within capacity.
#[must_use]
pub fn unique_neighbor_ratio<G: NeighborFn>(g: &G, s: &[u64]) -> f64 {
    let phi = crate::unique::unique_neighbors(g, s);
    phi.len() as f64 / (g.degree() * s.len().max(1)) as f64
}

/// Maximum bucket load after the Lemma 3 greedy placement: keys are
/// processed in order and each places `k` copies on its `k` least-loaded
/// neighbors (ties broken by lowest index, so the result is
/// deterministic).
///
/// # Panics
/// Panics unless `1 ≤ k ≤ d`.
#[must_use]
pub fn greedy_max_load<G: NeighborFn>(g: &G, keys: &[u64], k: usize) -> usize {
    assert!(k >= 1 && k <= g.degree(), "need 1 ≤ k ≤ d");
    let mut load = vec![0usize; g.right_size()];
    let mut choices: Vec<usize> = Vec::with_capacity(g.degree());
    for &x in keys {
        choices.clear();
        choices.extend(g.neighbors(x));
        choices.sort_by_key(|&y| (load[y], y));
        for &y in choices.iter().take(k) {
            load[y] += 1;
        }
    }
    load.into_iter().max().unwrap_or(0)
}

/// Pearson χ² statistic of the within-stripe slot distribution, summed
/// over all `d` stripes, against the uniform null (each key hits each of
/// its stripe's `stripe_size` slots equally often).
///
/// Returns `(statistic, degrees_of_freedom)` with
/// `dof = d · (stripe_size − 1)`; under the null the statistic is
/// approximately `χ²_dof`, i.e. concentrated around `dof ± √(2·dof)`.
///
/// # Panics
/// Panics if the graph is not striped or `keys` is empty.
#[must_use]
pub fn stripe_chi_square<G: NeighborFn>(g: &G, keys: &[u64]) -> (f64, usize) {
    assert!(!keys.is_empty(), "need keys to test");
    let d = g.degree();
    let s = g.stripe_size(); // panics if not striped
    let mut counts = vec![0u64; d * s];
    for &x in keys {
        for (i, y) in g.neighbors(x).into_iter().enumerate() {
            counts[i * s + (y - i * s)] += 1;
        }
    }
    let expected = keys.len() as f64 / s as f64;
    let stat = counts
        .into_iter()
        .map(|c| {
            let diff = c as f64 - expected;
            diff * diff / expected
        })
        .sum();
    (stat, d * (s - 1))
}

/// Mean number of shared right vertices between a random pair of distinct
/// keys: `Σ_y C(load_y, 2) / C(n, 2)` where `load_y` counts keys adjacent
/// to `y`. For a uniform striped family the expectation is `d / stripe`.
///
/// # Panics
/// Panics if fewer than two keys are given.
#[must_use]
pub fn pairwise_collision_rate<G: NeighborFn>(g: &G, keys: &[u64]) -> f64 {
    let n = keys.len();
    assert!(n >= 2, "need at least two keys");
    let mut load = vec![0u64; g.right_size()];
    for &x in keys {
        for y in g.neighbors(x) {
            load[y] += 1;
        }
    }
    let pairs: f64 = load
        .into_iter()
        .map(|c| c as f64 * (c as f64 - 1.0) / 2.0)
        .sum();
    pairs / (n as f64 * (n as f64 - 1.0) / 2.0)
}

/// One family/seed measurement of every statistical quality gate the
/// test-suite and the `hashfam` bench share.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Family identifier (as in `NeighborFamily::name`).
    pub family: String,
    /// Seed the graph was built with.
    pub seed: u64,
    /// Left degree.
    pub degree: usize,
    /// Stripe size (`v/d`).
    pub stripe: usize,
    /// Number of keys measured.
    pub keys: usize,
    /// Worst sampled expansion ratio `|Γ(S)|/(d·|S|)`.
    pub expansion_ratio: f64,
    /// Unique-neighbor ratio `|Φ(S)|/(d·|S|)` on the full key set.
    pub unique_ratio: f64,
    /// χ² statistic of the within-stripe slot distribution.
    pub chi_square: f64,
    /// Degrees of freedom for [`Self::chi_square`].
    pub chi_square_dof: usize,
    /// Mean shared right vertices per key pair.
    pub collision_rate: f64,
    /// Expected collision rate for a uniform family (`d/stripe`).
    pub collision_expected: f64,
    /// Greedy `k = 1` maximum bucket load over the key set.
    pub max_load: usize,
    /// The Lemma 3 bound for that placement (`ε = 1/12`, `δ = 1/2`).
    pub lemma3_bound: f64,
}

impl QualityReport {
    /// The quality-gate violations, empty when all gates pass.
    ///
    /// Gates (generous enough to hold across seeds, tight enough to catch
    /// a broken mixer):
    /// * Lemma 3: greedy max load within the bound,
    /// * expansion: worst sampled ratio `≥ 1 − 2ε` with `ε = 1/12`,
    /// * unique neighbors: ratio `≥ 1 − 4ε` (Lemma 4 slack doubled),
    /// * χ²: within `8·√(2·dof)` of `dof`,
    /// * collisions: within `2×` the uniform expectation.
    #[must_use]
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.max_load as f64 > self.lemma3_bound {
            out.push(format!(
                "max load {} exceeds Lemma 3 bound {:.2}",
                self.max_load, self.lemma3_bound
            ));
        }
        let eps = crate::params::THEOREM6_EPSILON;
        if self.expansion_ratio < 1.0 - 2.0 * eps {
            out.push(format!(
                "sampled expansion {:.4} below 1 - 2ε = {:.4}",
                self.expansion_ratio,
                1.0 - 2.0 * eps
            ));
        }
        if self.unique_ratio < 1.0 - 4.0 * eps {
            out.push(format!(
                "unique-neighbor ratio {:.4} below 1 - 4ε = {:.4}",
                self.unique_ratio,
                1.0 - 4.0 * eps
            ));
        }
        let dof = self.chi_square_dof as f64;
        let chi_limit = dof + 8.0 * (2.0 * dof).sqrt();
        if self.chi_square > chi_limit {
            out.push(format!(
                "χ² {:.1} exceeds {:.1} (dof {})",
                self.chi_square, chi_limit, self.chi_square_dof
            ));
        }
        if self.collision_rate > 2.0 * self.collision_expected {
            out.push(format!(
                "collision rate {:.5} exceeds 2× expectation {:.5}",
                self.collision_rate, self.collision_expected
            ));
        }
        out
    }

    /// Whether every quality gate passes.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.failures().is_empty()
    }
}

/// Run the full statistical quality battery on a striped graph over a key
/// sample. Deterministic given `(g, keys, sample_seed)`.
///
/// The Lemma 3 reference parameters are the paper's Theorem 6 defaults
/// (`ε = 1/12`, `δ = 1/2`); expansion is spot-checked by sampling subsets
/// of the key set at several sizes.
///
/// # Panics
/// Panics if the graph is not striped or fewer than two keys are given.
#[must_use]
pub fn quality_report<G: NeighborFn>(
    g: &G,
    family: &str,
    seed: u64,
    keys: &[u64],
    sample_seed: u64,
) -> QualityReport {
    assert!(keys.len() >= 2, "need at least two keys");
    let d = g.degree();
    let stripe = g.stripe_size();
    let params = crate::params::ExpanderParams {
        degree: d,
        right_size: g.right_size(),
        epsilon: crate::params::THEOREM6_EPSILON,
        delta: 0.5,
    };
    let sizes: Vec<usize> = [8usize, 32, 128, keys.len() / 4]
        .into_iter()
        .filter(|&s| s >= 2 && s <= keys.len())
        .collect();
    let expansion = worst_expansion_sampled(g, keys, &sizes, 20, sample_seed);
    let (chi_square, chi_square_dof) = stripe_chi_square(g, keys);
    QualityReport {
        family: family.to_string(),
        seed,
        degree: d,
        stripe,
        keys: keys.len(),
        expansion_ratio: expansion.ratio,
        unique_ratio: unique_neighbor_ratio(g, keys),
        chi_square,
        chi_square_dof,
        collision_rate: pairwise_collision_rate(g, keys),
        collision_expected: d as f64 / stripe as f64,
        max_load: greedy_max_load(g, keys, 1),
        lemma3_bound: crate::params::lemma3_bound(keys.len(), 1, &params)
            .expect("Theorem 6 defaults satisfy the Lemma 3 premises"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TableGraph;
    use crate::seeded::SeededExpander;

    #[test]
    fn perfect_matching_has_ratio_one() {
        // d = 1, each left vertex its own right vertex.
        let g = TableGraph::new(4, vec![vec![0], vec![1], vec![2], vec![3]], true);
        let w = worst_expansion_exhaustive(&g, 4);
        assert_eq!(w.ratio, 1.0);
    }

    #[test]
    fn colliding_pair_detected() {
        // Two left vertices with identical neighborhoods: ratio 1/2 at size 2.
        let g = TableGraph::new(4, vec![vec![0, 2], vec![0, 2], vec![1, 3]], true);
        let w = worst_expansion_exhaustive(&g, 2);
        assert!((w.ratio - 0.5).abs() < 1e-12);
        let mut witness = w.witness;
        witness.sort_unstable();
        assert_eq!(witness, vec![0, 1]);
    }

    #[test]
    fn exhaustive_certifies_searched_seeded_graph() {
        // u = 20, v = 4 stripes of 30: the probabilistic-preprocessing
        // search finds a certified (3, 1/4)-expander within a few seeds.
        let g = SeededExpander::search_verified(20, 30, 4, 3, 0.25, 0, 64)
            .expect("a (3, 1/4)-expander exists at these parameters");
        let w = worst_expansion_exhaustive(&g, 3);
        assert!(
            w.ratio >= 0.75,
            "certified graph has ratio {} with witness {:?}",
            w.ratio,
            w.witness
        );
    }

    #[test]
    fn search_fails_on_infeasible_parameters() {
        // v = 2, d = 2, but 4 identical-neighborhood keys are unavoidable:
        // no (2, 0)-expander exists.
        assert!(SeededExpander::search_verified(8, 1, 2, 2, 0.0, 0, 32).is_none());
    }

    #[test]
    fn sampled_never_beats_exhaustive() {
        let g = SeededExpander::new(24, 8, 4, 11);
        let pop: Vec<u64> = (0..24).collect();
        let ex = worst_expansion_exhaustive(&g, 2);
        let sa = worst_expansion_sampled(&g, &pop, &[2], 200, 5);
        assert!(sa.ratio >= ex.ratio - 1e-12);
    }

    #[test]
    fn sampled_is_deterministic() {
        let g = SeededExpander::new(1 << 16, 256, 8, 2);
        let pop: Vec<u64> = (0..4096).collect();
        let a = worst_expansion_sampled(&g, &pop, &[16, 64], 20, 9);
        let b = worst_expansion_sampled(&g, &pop, &[16, 64], 20, 9);
        assert_eq!(a.ratio, b.ratio);
        assert_eq!(a.witness, b.witness);
    }

    #[test]
    fn seeded_expander_passes_sampled_check_at_scale() {
        // n = 1024 capacity, v = 8·n·d — expect near-(N, 1/12) expansion.
        let d = 16;
        let n = 1024usize;
        let g = SeededExpander::new(1 << 40, 8 * n, d, 4242);
        let pop: Vec<u64> = (0..(n as u64 * 4))
            .map(|i| i.wrapping_mul(0x00DE_ADBE_EF97) % (1 << 40))
            .collect();
        let w = worst_expansion_sampled(&g, &pop, &[4, 32, 256, n], 30, 1);
        assert!(
            w.ratio > 1.0 - 2.0 * (1.0 / 12.0),
            "sampled worst ratio {} too small",
            w.ratio
        );
    }

    #[test]
    fn unique_ratio_close_to_one_for_sparse_sets() {
        let g = SeededExpander::new(1 << 30, 4096, 16, 77);
        let s: Vec<u64> = (0..64u64).map(|i| i * 1_000_003).collect();
        // Tiny set in a big right part: almost all neighbors unique.
        assert!(unique_neighbor_ratio(&g, &s) > 0.9);
    }

    #[test]
    #[should_panic(expected = "exceeds population")]
    fn oversized_sample_panics() {
        let g = SeededExpander::new(16, 4, 2, 0);
        let pop: Vec<u64> = (0..8).collect();
        let _ = worst_expansion_sampled(&g, &pop, &[9], 1, 0);
    }

    #[test]
    fn greedy_max_load_on_hand_graph() {
        // Both keys see stripes {0,1} × {2,3}; greedy spreads them.
        let g = TableGraph::new(4, vec![vec![0, 2], vec![0, 3]], true);
        assert_eq!(greedy_max_load(&g, &[0, 1], 1), 1);
        // k = 2 forces both copies of both keys; slot 0 is shared.
        assert_eq!(greedy_max_load(&g, &[0, 1], 2), 2);
    }

    #[test]
    #[should_panic(expected = "1 ≤ k ≤ d")]
    fn greedy_rejects_k_above_degree() {
        let g = SeededExpander::new(16, 4, 2, 0);
        let _ = greedy_max_load(&g, &[0, 1], 3);
    }

    #[test]
    fn chi_square_flags_a_constant_function() {
        // All keys to slot 0 of each stripe: maximally non-uniform.
        let degenerate = TableGraph::new(8, vec![vec![0, 4]; 6], true);
        let keys: Vec<u64> = (0..6).collect();
        let (bad, dof) = stripe_chi_square(&degenerate, &keys);
        assert_eq!(dof, 2 * 3);
        // All 6 keys in 1 of 4 slots per stripe: χ² = 2·(6−1.5)²/1.5·...
        assert!(bad > dof as f64 + 8.0 * (2.0 * dof as f64).sqrt());
        // A healthy mixer stays near its dof.
        let g = SeededExpander::new(1 << 20, 64, 8, 3);
        let keys: Vec<u64> = (0..4096u64).map(|i| i * 251 % (1 << 20)).collect();
        let (good, dof) = stripe_chi_square(&g, &keys);
        assert!(good < dof as f64 + 8.0 * (2.0 * dof as f64).sqrt());
    }

    #[test]
    fn collision_rate_matches_uniform_expectation() {
        let g = SeededExpander::new(1 << 30, 512, 8, 9);
        let keys: Vec<u64> = (0..2000u64).map(|i| i * 524_287).collect();
        let rate = pairwise_collision_rate(&g, &keys);
        let expected = 8.0 / 512.0;
        assert!(
            rate > expected / 2.0 && rate < expected * 2.0,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn quality_report_passes_on_a_healthy_graph_and_fails_on_a_degenerate_one() {
        // Slack-8 sizing (stripe = 8·n) as the dictionaries use: sparse
        // enough that the Lemma 4 unique-neighbor gate holds.
        let g = SeededExpander::new(1 << 30, 8 * 1024, 16, 21);
        let keys: Vec<u64> = (0..1024u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) % (1 << 30))
            .collect();
        let report = quality_report(&g, "seeded", 21, &keys, 7);
        assert!(report.passes(), "failures: {:?}", report.failures());
        assert_eq!(report.family, "seeded");
        assert_eq!(report.keys, 1024);

        // A stripe of size 1 pins every key to the same d slots.
        let degenerate = SeededExpander::new(1 << 30, 1, 16, 21);
        let report = quality_report(&degenerate, "seeded", 21, &keys, 7);
        assert!(!report.passes());
        assert!(!report.failures().is_empty());
    }
}
