//! Expansion verification.
//!
//! Deciding whether a graph is an `(N, ε)`-expander is coNP-hard in
//! general; for the test-suite we verify **exhaustively** on small
//! instances (every subset up to size `N`) and **by sampling** on larger
//! ones (random subsets at several sizes, reporting the worst expansion
//! ratio observed). The sampled check can only *refute* expansion, never
//! certify it — exactly the epistemic situation the paper's Section 6 open
//! problem ("practical and truly simple constructions could exist")
//! leaves us in.

use crate::graph::NeighborFn;
use crate::seeded::mix64;
use std::collections::HashSet;

/// Result of an expansion measurement: the worst ratio
/// `|Γ(S)| / (d·|S|)` seen, and a witness set attaining it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionWitness {
    /// Worst observed `|Γ(S)| / (d·|S|)`.
    pub ratio: f64,
    /// A set attaining the worst ratio.
    pub witness: Vec<u64>,
}

fn ratio_of<G: NeighborFn>(g: &G, s: &[u64]) -> f64 {
    let mut seen = HashSet::with_capacity(s.len() * g.degree());
    for &x in s {
        for y in g.neighbors(x) {
            seen.insert(y);
        }
    }
    seen.len() as f64 / (g.degree() * s.len()) as f64
}

/// Exhaustively measure the worst expansion over **all** nonempty subsets
/// of the left part of size at most `max_n`.
///
/// Cost is `Σ_{k≤max_n} C(u, k)` neighbor evaluations — keep `u ≤ ~26` and
/// `max_n ≤ ~4`.
///
/// # Panics
/// Panics if the left part does not fit in `usize` or `max_n == 0`.
#[must_use]
pub fn worst_expansion_exhaustive<G: NeighborFn>(g: &G, max_n: usize) -> ExpansionWitness {
    assert!(max_n >= 1);
    let u = usize::try_from(g.left_size()).expect("exhaustive check needs a small universe");
    let mut worst = ExpansionWitness {
        ratio: f64::INFINITY,
        witness: Vec::new(),
    };
    let mut set: Vec<u64> = Vec::with_capacity(max_n);
    fn rec<G: NeighborFn>(
        g: &G,
        u: usize,
        start: usize,
        max_n: usize,
        set: &mut Vec<u64>,
        worst: &mut ExpansionWitness,
    ) {
        if !set.is_empty() {
            let r = ratio_of(g, set);
            if r < worst.ratio {
                worst.ratio = r;
                worst.witness = set.clone();
            }
        }
        if set.len() == max_n {
            return;
        }
        for x in start..u {
            set.push(x as u64);
            rec(g, u, x + 1, max_n, set, worst);
            set.pop();
        }
    }
    rec(g, u, 0, max_n, &mut set, &mut worst);
    worst
}

/// Check the Definition 2 property exhaustively: is `g` an
/// `(max_n, ε)`-expander?
#[must_use]
pub fn is_n_eps_expander_exhaustive<G: NeighborFn>(g: &G, max_n: usize, epsilon: f64) -> bool {
    worst_expansion_exhaustive(g, max_n).ratio >= 1.0 - epsilon
}

/// Sample `samples` uniform subsets of each size in `sizes` (drawn from a
/// caller-chosen key population) and report the worst expansion ratio.
///
/// Deterministic given `seed`.
#[must_use]
pub fn worst_expansion_sampled<G: NeighborFn>(
    g: &G,
    population: &[u64],
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> ExpansionWitness {
    let mut worst = ExpansionWitness {
        ratio: f64::INFINITY,
        witness: Vec::new(),
    };
    let mut state = seed;
    for &size in sizes {
        assert!(
            size <= population.len(),
            "sample size {size} exceeds population {}",
            population.len()
        );
        if size == 0 {
            continue;
        }
        for _ in 0..samples {
            // Floyd's algorithm over indices for a uniform size-subset.
            let mut chosen: HashSet<usize> = HashSet::with_capacity(size);
            let n = population.len();
            for j in (n - size)..n {
                state = mix64(state.wrapping_add(0x2545_F491_4F6C_DD1D));
                let t = (state % (j as u64 + 1)) as usize;
                if !chosen.insert(t) {
                    chosen.insert(j);
                }
            }
            let mut s: Vec<u64> = chosen.into_iter().map(|i| population[i]).collect();
            s.sort_unstable(); // canonical order: HashSet iteration is not deterministic
            let r = ratio_of(g, &s);
            if r < worst.ratio {
                worst.ratio = r;
                worst.witness = s;
            }
        }
    }
    worst
}

/// Measured unique-neighbor ratio `|Φ(S)| / (d·|S|)` — Lemma 4 predicts it
/// is at least `1 - 2ε` for sets within capacity.
#[must_use]
pub fn unique_neighbor_ratio<G: NeighborFn>(g: &G, s: &[u64]) -> f64 {
    let phi = crate::unique::unique_neighbors(g, s);
    phi.len() as f64 / (g.degree() * s.len().max(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TableGraph;
    use crate::seeded::SeededExpander;

    #[test]
    fn perfect_matching_has_ratio_one() {
        // d = 1, each left vertex its own right vertex.
        let g = TableGraph::new(4, vec![vec![0], vec![1], vec![2], vec![3]], true);
        let w = worst_expansion_exhaustive(&g, 4);
        assert_eq!(w.ratio, 1.0);
    }

    #[test]
    fn colliding_pair_detected() {
        // Two left vertices with identical neighborhoods: ratio 1/2 at size 2.
        let g = TableGraph::new(4, vec![vec![0, 2], vec![0, 2], vec![1, 3]], true);
        let w = worst_expansion_exhaustive(&g, 2);
        assert!((w.ratio - 0.5).abs() < 1e-12);
        let mut witness = w.witness;
        witness.sort_unstable();
        assert_eq!(witness, vec![0, 1]);
    }

    #[test]
    fn exhaustive_certifies_searched_seeded_graph() {
        // u = 20, v = 4 stripes of 30: the probabilistic-preprocessing
        // search finds a certified (3, 1/4)-expander within a few seeds.
        let g = SeededExpander::search_verified(20, 30, 4, 3, 0.25, 0, 64)
            .expect("a (3, 1/4)-expander exists at these parameters");
        let w = worst_expansion_exhaustive(&g, 3);
        assert!(
            w.ratio >= 0.75,
            "certified graph has ratio {} with witness {:?}",
            w.ratio,
            w.witness
        );
    }

    #[test]
    fn search_fails_on_infeasible_parameters() {
        // v = 2, d = 2, but 4 identical-neighborhood keys are unavoidable:
        // no (2, 0)-expander exists.
        assert!(SeededExpander::search_verified(8, 1, 2, 2, 0.0, 0, 32).is_none());
    }

    #[test]
    fn sampled_never_beats_exhaustive() {
        let g = SeededExpander::new(24, 8, 4, 11);
        let pop: Vec<u64> = (0..24).collect();
        let ex = worst_expansion_exhaustive(&g, 2);
        let sa = worst_expansion_sampled(&g, &pop, &[2], 200, 5);
        assert!(sa.ratio >= ex.ratio - 1e-12);
    }

    #[test]
    fn sampled_is_deterministic() {
        let g = SeededExpander::new(1 << 16, 256, 8, 2);
        let pop: Vec<u64> = (0..4096).collect();
        let a = worst_expansion_sampled(&g, &pop, &[16, 64], 20, 9);
        let b = worst_expansion_sampled(&g, &pop, &[16, 64], 20, 9);
        assert_eq!(a.ratio, b.ratio);
        assert_eq!(a.witness, b.witness);
    }

    #[test]
    fn seeded_expander_passes_sampled_check_at_scale() {
        // n = 1024 capacity, v = 8·n·d — expect near-(N, 1/12) expansion.
        let d = 16;
        let n = 1024usize;
        let g = SeededExpander::new(1 << 40, 8 * n, d, 4242);
        let pop: Vec<u64> = (0..(n as u64 * 4))
            .map(|i| i.wrapping_mul(0x00DE_ADBE_EF97) % (1 << 40))
            .collect();
        let w = worst_expansion_sampled(&g, &pop, &[4, 32, 256, n], 30, 1);
        assert!(
            w.ratio > 1.0 - 2.0 * (1.0 / 12.0),
            "sampled worst ratio {} too small",
            w.ratio
        );
    }

    #[test]
    fn unique_ratio_close_to_one_for_sparse_sets() {
        let g = SeededExpander::new(1 << 30, 4096, 16, 77);
        let s: Vec<u64> = (0..64u64).map(|i| i * 1_000_003).collect();
        // Tiny set in a big right part: almost all neighbors unique.
        assert!(unique_neighbor_ratio(&g, &s) > 0.9);
    }

    #[test]
    #[should_panic(expected = "exceeds population")]
    fn oversized_sample_panics() {
        let g = SeededExpander::new(16, 4, 2, 0);
        let pop: Vec<u64> = (0..8).collect();
        let _ = worst_expansion_sampled(&g, &pop, &[9], 1, 0);
    }
}
