//! Pluggable hash families for striped expanders.
//!
//! All the paper's guarantees hang off the expander's neighbor function,
//! so the *family* that function is drawn from is a first-class design
//! axis. This module is the seam: [`NeighborFamily`] builds a striped
//! graph of a requested geometry from a seed, [`FamilyKind`] is the
//! `Copy` configuration handle the dictionary front-ends store, and
//! [`FamilyExpander`] is the graph value they hold — one enum so the
//! dispatch cost is a branch, not a virtual call, on the lookup path.
//!
//! Three built-in families (see the `hashfam` bench for the ablation):
//!
//! * **Seeded** ([`SeededExpander`]) — the original double-splitmix chain;
//!   the faithful stand-in for a random striped graph.
//! * **Tabulation** ([`TabulationExpander`]) — simple tabulation per
//!   Aamand–Knudsen–Thorup; same load-bound fidelity, measurably faster.
//! * **Polynomial** ([`PolynomialExpander`]) — explicit Reed–Solomon
//!   construction on small universes; no sampled tables at all.
//!
//! The `Custom` variant of [`FamilyExpander`] keeps the seam genuinely
//! open: anything implementing [`DynNeighborFn`] (e.g. the k-wise
//! polynomial baselines in `crates/baselines`) can be plugged into any
//! dictionary front-end.

use crate::explicit::PolynomialExpander;
use crate::graph::NeighborFn;
use crate::seeded::SeededExpander;
use crate::tabulation::TabulationExpander;
use std::sync::Arc;

/// A family of striped neighbor functions: given a geometry and a seed,
/// produce one member graph.
pub trait NeighborFamily {
    /// Short stable identifier (used in bench JSON, CLI flags, reports).
    fn name(&self) -> &'static str;

    /// Build the member graph for `(universe, stripe_size, degree, seed)`.
    ///
    /// The result must be striped with exactly the requested geometry:
    /// `right_size = stripe_size · degree` and the `i`-th neighbor of
    /// every key in stripe `i` — the dictionary layouts depend on it.
    fn build(
        &self,
        universe: u64,
        stripe_size: usize,
        degree: usize,
        seed: u64,
    ) -> FamilyExpander;
}

/// Object-safe neighbor function for the [`FamilyExpander::Custom`]
/// escape hatch.
pub trait DynNeighborFn: NeighborFn + Send + Sync + std::fmt::Debug {}

impl<T: NeighborFn + Send + Sync + std::fmt::Debug> DynNeighborFn for T {}

/// The built-in families as a `Copy` configuration value — what
/// `DictParams` and friends store and thread down to graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FamilyKind {
    /// Double-splitmix seeded sampler ([`SeededExpander`]).
    Seeded,
    /// Simple tabulation ([`TabulationExpander`]) — the default: it
    /// matches the seeded family's load-bound fidelity in the `hashfam`
    /// quality gates while being the fastest per-hash (see DESIGN.md).
    #[default]
    Tabulation,
    /// Explicit linear-polynomial construction ([`PolynomialExpander`]).
    Polynomial,
}

impl FamilyKind {
    /// All built-in families, in ablation order.
    pub const ALL: [FamilyKind; 3] = [
        FamilyKind::Seeded,
        FamilyKind::Tabulation,
        FamilyKind::Polynomial,
    ];

    /// Parse a family name as printed by [`NeighborFamily::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "seeded" => Some(FamilyKind::Seeded),
            "tabulation" => Some(FamilyKind::Tabulation),
            "polynomial" => Some(FamilyKind::Polynomial),
            _ => None,
        }
    }
}

impl NeighborFamily for FamilyKind {
    fn name(&self) -> &'static str {
        match self {
            FamilyKind::Seeded => "seeded",
            FamilyKind::Tabulation => "tabulation",
            FamilyKind::Polynomial => "polynomial",
        }
    }

    fn build(
        &self,
        universe: u64,
        stripe_size: usize,
        degree: usize,
        seed: u64,
    ) -> FamilyExpander {
        match self {
            FamilyKind::Seeded => FamilyExpander::Seeded(SeededExpander::new(
                universe,
                stripe_size,
                degree,
                seed,
            )),
            FamilyKind::Tabulation => FamilyExpander::Tabulation(TabulationExpander::new(
                universe,
                stripe_size,
                degree,
                seed,
            )),
            FamilyKind::Polynomial => FamilyExpander::Polynomial(PolynomialExpander::new(
                universe,
                stripe_size,
                degree,
                seed,
            )),
        }
    }
}

impl std::fmt::Display for FamilyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A graph drawn from any of the pluggable families.
///
/// The three built-in variants dispatch with a branch; `Custom` carries an
/// arbitrary [`DynNeighborFn`] behind an `Arc` for out-of-crate families.
#[derive(Debug, Clone)]
pub enum FamilyExpander {
    /// Member of the seeded splitmix family.
    Seeded(SeededExpander),
    /// Member of the simple-tabulation family.
    Tabulation(TabulationExpander),
    /// Member of the explicit polynomial family.
    Polynomial(PolynomialExpander),
    /// Any external neighbor function (must be striped with the geometry
    /// the embedding dictionary expects).
    Custom(Arc<dyn DynNeighborFn>),
}

impl FamilyExpander {
    /// Which built-in family this graph belongs to, if any.
    #[must_use]
    pub fn kind(&self) -> Option<FamilyKind> {
        match self {
            FamilyExpander::Seeded(_) => Some(FamilyKind::Seeded),
            FamilyExpander::Tabulation(_) => Some(FamilyKind::Tabulation),
            FamilyExpander::Polynomial(_) => Some(FamilyKind::Polynomial),
            FamilyExpander::Custom(_) => None,
        }
    }

    /// Family name for reports (`"custom"` for out-of-crate graphs).
    #[must_use]
    pub fn family_name(&self) -> &'static str {
        self.kind().map_or("custom", |k| {
            match k {
                FamilyKind::Seeded => "seeded",
                FamilyKind::Tabulation => "tabulation",
                FamilyKind::Polynomial => "polynomial",
            }
        })
    }
}

impl NeighborFn for FamilyExpander {
    fn left_size(&self) -> u64 {
        match self {
            FamilyExpander::Seeded(g) => g.left_size(),
            FamilyExpander::Tabulation(g) => g.left_size(),
            FamilyExpander::Polynomial(g) => g.left_size(),
            FamilyExpander::Custom(g) => g.left_size(),
        }
    }

    fn right_size(&self) -> usize {
        match self {
            FamilyExpander::Seeded(g) => g.right_size(),
            FamilyExpander::Tabulation(g) => g.right_size(),
            FamilyExpander::Polynomial(g) => g.right_size(),
            FamilyExpander::Custom(g) => g.right_size(),
        }
    }

    fn degree(&self) -> usize {
        match self {
            FamilyExpander::Seeded(g) => g.degree(),
            FamilyExpander::Tabulation(g) => g.degree(),
            FamilyExpander::Polynomial(g) => g.degree(),
            FamilyExpander::Custom(g) => g.degree(),
        }
    }

    fn neighbor(&self, x: u64, i: usize) -> usize {
        match self {
            FamilyExpander::Seeded(g) => g.neighbor(x, i),
            FamilyExpander::Tabulation(g) => g.neighbor(x, i),
            FamilyExpander::Polynomial(g) => g.neighbor(x, i),
            FamilyExpander::Custom(g) => g.neighbor(x, i),
        }
    }

    fn neighbors(&self, x: u64) -> Vec<usize> {
        match self {
            FamilyExpander::Seeded(g) => g.neighbors(x),
            FamilyExpander::Tabulation(g) => g.neighbors(x),
            FamilyExpander::Polynomial(g) => g.neighbors(x),
            FamilyExpander::Custom(g) => g.neighbors(x),
        }
    }

    fn is_striped(&self) -> bool {
        match self {
            FamilyExpander::Seeded(g) => g.is_striped(),
            FamilyExpander::Tabulation(g) => g.is_striped(),
            FamilyExpander::Polynomial(g) => g.is_striped(),
            FamilyExpander::Custom(g) => g.is_striped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_honor_requested_geometry() {
        for kind in FamilyKind::ALL {
            let g = kind.build(1 << 20, 37, 9, 5);
            assert_eq!(g.left_size(), 1 << 20, "{kind}");
            assert_eq!(g.degree(), 9, "{kind}");
            assert_eq!(g.right_size(), 37 * 9, "{kind}");
            assert!(g.is_striped(), "{kind}");
            assert_eq!(g.stripe_size(), 37, "{kind}");
            for x in [0u64, 1, 1000, (1 << 20) - 1] {
                for (i, &y) in g.neighbors(x).iter().enumerate() {
                    assert_eq!(y, g.neighbor(x, i), "{kind}: batch vs single");
                    assert!(y >= i * 37 && y < (i + 1) * 37, "{kind}: stripe");
                }
            }
        }
    }

    #[test]
    fn families_are_deterministic_per_seed() {
        for kind in FamilyKind::ALL {
            let g1 = kind.build(1 << 16, 64, 6, 11);
            let g2 = kind.build(1 << 16, 64, 6, 11);
            for x in 0..50 {
                assert_eq!(g1.neighbors(x), g2.neighbors(x), "{kind}");
            }
        }
    }

    #[test]
    fn built_in_families_differ_from_each_other() {
        let gs: Vec<_> = FamilyKind::ALL
            .iter()
            .map(|k| k.build(1 << 16, 64, 6, 11))
            .collect();
        for a in 0..gs.len() {
            for b in (a + 1)..gs.len() {
                let same = (0..200)
                    .filter(|&x| gs[a].neighbors(x) == gs[b].neighbors(x))
                    .count();
                assert!(same < 50, "families {a} and {b} look identical");
            }
        }
    }

    #[test]
    fn kind_round_trips_through_names() {
        for kind in FamilyKind::ALL {
            assert_eq!(FamilyKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.build(1 << 10, 8, 4, 0).family_name(), kind.name());
        }
        assert_eq!(FamilyKind::from_name("nope"), None);
        assert_eq!(FamilyKind::default(), FamilyKind::Tabulation);
    }

    #[test]
    fn custom_variant_delegates() {
        let inner = SeededExpander::new(1 << 10, 16, 4, 3);
        let g = FamilyExpander::Custom(Arc::new(inner));
        assert_eq!(g.kind(), None);
        assert_eq!(g.family_name(), "custom");
        assert_eq!(g.degree(), 4);
        assert_eq!(g.neighbors(5), inner.neighbors(5));
        assert!(g.is_striped());
    }
}
