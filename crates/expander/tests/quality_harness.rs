//! Statistical expander-quality harness, run as tier-1 tests.
//!
//! Every gate from `verify::QualityReport` is exercised across multiple
//! seeds for every built-in hash family: Lemma 3 greedy max load,
//! sampled expansion, unique-neighbor rates (Lemma 4), within-stripe
//! χ², and pairwise collision rates. The `hashfam` bench runs the same
//! battery at larger scale; these tests are the fast always-on slice.

use expander::family::{FamilyKind, NeighborFamily};
use expander::mix::SplitMix64;
use expander::verify::{
    greedy_max_load, pairwise_collision_rate, quality_report, stripe_chi_square,
    unique_neighbor_ratio,
};
use expander::{ExpanderParams, NeighborFn};

const UNIVERSE: u64 = 1 << 32;
const SEEDS: [u64; 4] = [0xA11CE, 0xB0B, 0xC0FFEE, 0xD15EA5E];

/// A pseudorandom key sample, distinct per (seed, n), sorted for
/// determinism of the downstream set operations.
fn sample_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x5EED_5EED);
    let mut keys = std::collections::BTreeSet::new();
    while keys.len() < n {
        keys.insert(rng.next_u64() % UNIVERSE);
    }
    keys.into_iter().collect()
}

/// Gate 1 — Lemma 3: for every family and every seed, the greedy `k = 1`
/// placement stays within the paper's bound at Theorem 6 parameters.
#[test]
fn lemma3_max_load_within_bound_across_families_and_seeds() {
    let d = 16;
    let n = 1024;
    let stripe = 8 * n; // DEFAULT_RIGHT_SLACK · n, v = 8·n·d
    let params = ExpanderParams {
        degree: d,
        right_size: stripe * d,
        epsilon: 1.0 / 12.0,
        delta: 0.5,
    };
    let bound = expander::params::lemma3_bound(n, 1, &params).unwrap();
    for kind in FamilyKind::ALL {
        for seed in SEEDS {
            let g = kind.build(UNIVERSE, stripe, d, seed);
            let keys = sample_keys(n, seed);
            let load = greedy_max_load(&g, &keys, 1);
            assert!(
                (load as f64) <= bound,
                "{kind} seed {seed:#x}: max load {load} > Lemma 3 bound {bound:.2}"
            );
        }
    }
}

/// Gate 2 — expansion spot-checks: sampled subsets of every size expand
/// by at least `(1 - 2ε)·d` for all families and seeds.
#[test]
fn sampled_expansion_across_families_and_seeds() {
    let d = 16;
    let n = 512;
    let stripe = 8 * n;
    for kind in FamilyKind::ALL {
        for seed in SEEDS {
            let g = kind.build(UNIVERSE, stripe, d, seed);
            let keys = sample_keys(2 * n, seed);
            let w = expander::verify::worst_expansion_sampled(
                &g,
                &keys,
                &[4, 32, 128, n],
                15,
                seed ^ 1,
            );
            assert!(
                w.ratio >= 1.0 - 2.0 / 12.0,
                "{kind} seed {seed:#x}: sampled expansion {:.4} with witness size {}",
                w.ratio,
                w.witness.len()
            );
        }
    }
}

/// Gate 3 — χ² of the within-stripe slot distribution stays near its
/// degrees of freedom: no family has a systematically biased stripe.
#[test]
fn stripe_distribution_chi_square_across_families_and_seeds() {
    let d = 8;
    let stripe = 128;
    for kind in FamilyKind::ALL {
        for seed in SEEDS {
            let g = kind.build(UNIVERSE, stripe, d, seed);
            let keys = sample_keys(8192, seed);
            let (stat, dof) = stripe_chi_square(&g, &keys);
            let limit = dof as f64 + 8.0 * (2.0 * dof as f64).sqrt();
            assert!(
                stat <= limit,
                "{kind} seed {seed:#x}: χ² = {stat:.1} > {limit:.1} (dof {dof})"
            );
        }
    }
}

/// Gate 4 — collision and unique-neighbor rates: pairwise collisions stay
/// within 2× the uniform expectation `d/stripe`, and the Lemma 4
/// unique-neighbor ratio holds with slack for within-capacity sets.
#[test]
fn collision_and_unique_neighbor_rates_across_families_and_seeds() {
    let d = 16;
    let n = 768;
    let stripe = 8 * n;
    for kind in FamilyKind::ALL {
        for seed in SEEDS {
            let g = kind.build(UNIVERSE, stripe, d, seed);
            let keys = sample_keys(n, seed);
            let rate = pairwise_collision_rate(&g, &keys);
            let expected = d as f64 / stripe as f64;
            assert!(
                rate <= 2.0 * expected,
                "{kind} seed {seed:#x}: collision rate {rate:.6} vs expected {expected:.6}"
            );
            let unique = unique_neighbor_ratio(&g, &keys);
            assert!(
                unique >= 1.0 - 4.0 / 12.0,
                "{kind} seed {seed:#x}: unique-neighbor ratio {unique:.4}"
            );
        }
    }
}

/// Gate 5 — the combined report: `quality_report` passes every gate for
/// every family and seed at dictionary-like parameters, and its fields
/// are internally consistent.
#[test]
fn full_quality_report_passes_for_all_families_across_seeds() {
    let d = 16;
    let n = 1024;
    let stripe = 8 * n;
    for kind in FamilyKind::ALL {
        for seed in SEEDS {
            let g = kind.build(UNIVERSE, stripe, d, seed);
            let keys = sample_keys(n, seed);
            let report = quality_report(&g, kind.name(), seed, &keys, seed ^ 0xF00D);
            assert!(
                report.passes(),
                "{kind} seed {seed:#x}: {:?}",
                report.failures()
            );
            assert_eq!(report.degree, d);
            assert_eq!(report.stripe, stripe);
            assert_eq!(report.keys, n);
            assert!((report.collision_expected - d as f64 / stripe as f64).abs() < 1e-12);
            assert!(report.lemma3_bound > 0.0);
        }
    }
}

/// Gate 6 — negative control: the harness actually rejects a broken
/// family (identity "mixing" collapses sequential keys).
#[test]
fn harness_rejects_a_broken_neighbor_function() {
    #[derive(Debug)]
    struct BrokenMixer {
        stripe: usize,
        degree: usize,
    }
    impl NeighborFn for BrokenMixer {
        fn left_size(&self) -> u64 {
            UNIVERSE
        }
        fn right_size(&self) -> usize {
            self.stripe * self.degree
        }
        fn degree(&self) -> usize {
            self.degree
        }
        fn neighbor(&self, x: u64, i: usize) -> usize {
            // No mixing at all: clusters of nearby keys collide en masse
            // once divided by a power of two.
            i * self.stripe + ((x / 64) % self.stripe as u64) as usize
        }
        fn is_striped(&self) -> bool {
            true
        }
    }
    let g = BrokenMixer {
        stripe: 4096,
        degree: 16,
    };
    // Clustered keys: runs of 64 consecutive keys all share every slot.
    let keys: Vec<u64> = (0..1024u64).map(|i| (i / 4) * 64 + i % 4).collect();
    let report = quality_report(&g, "broken", 0, &keys, 3);
    assert!(
        !report.passes(),
        "broken mixer passed the quality gates: {report:?}"
    );
}
