//! Property-based tests of the expander machinery.

use expander::semi_explicit::{SemiExplicitConfig, SemiExplicitExpander};
use expander::{NeighborFn, SeededExpander, TelescopeExpander, TriviallyStriped};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Striped neighbors always live in their stripes, for any geometry.
    #[test]
    fn seeded_neighbors_in_stripes(
        stripe in 1usize..200,
        d in 1usize..24,
        seed in any::<u64>(),
        x in any::<u64>(),
    ) {
        let g = SeededExpander::new(u64::MAX, stripe, d, seed);
        for i in 0..d {
            let y = g.neighbor(x, i);
            prop_assert!(y >= i * stripe && y < (i + 1) * stripe);
        }
        prop_assert_eq!(g.right_size(), stripe * d);
    }

    /// Trivial striping is a bijection-per-stripe transformation: the
    /// striped graph's neighbor i is the inner graph's neighbor i offset
    /// by i·v, and expansion can only improve.
    #[test]
    fn trivial_striping_structure(
        stripe in 2usize..50,
        d in 2usize..8,
        seed in any::<u64>(),
    ) {
        let inner = SeededExpander::new(1 << 20, stripe, d, seed);
        let v = inner.right_size();
        let s = TriviallyStriped::new(inner);
        prop_assert!(s.is_striped());
        prop_assert_eq!(s.right_size(), v * d);
        for x in [0u64, 1, 99999] {
            let inner_ns = s.inner().neighbors(x);
            for (i, &y) in s.neighbors(x).iter().enumerate() {
                prop_assert_eq!(y, i * v + inner_ns[i]);
            }
        }
    }

    /// The telescope product yields distinct neighbors and the advertised
    /// degree, for any compatible factor pair.
    #[test]
    fn telescope_degree_and_distinctness(
        s1 in 4usize..24,
        d1 in 2usize..5,
        d2 in 2usize..5,
        seed in any::<u64>(),
        x in 0u64..(1 << 16),
    ) {
        let g1 = SeededExpander::new(1 << 16, s1, d1, seed);
        let v1 = g1.right_size();
        // Final right part must hold d1·d2 distinct vertices.
        let s2 = (d1 * d2).div_ceil(d2) + 8;
        let g2 = SeededExpander::new(v1 as u64, s2, d2, seed ^ 1);
        let t = TelescopeExpander::new(g1, g2);
        prop_assert_eq!(t.degree(), d1 * d2);
        let ns = t.neighbors(x);
        prop_assert_eq!(ns.len(), d1 * d2);
        let mut dedup = ns.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), ns.len(), "duplicate neighbors after remap");
        prop_assert!(ns.iter().all(|&y| y < t.right_size()));
    }

    /// The semi-explicit construction always terminates with O(1) stages,
    /// in-range neighbors, and per-stage degrees within the cap.
    #[test]
    fn semi_explicit_invariants(
        log_u in 16u32..36,
        log_n in 6u32..12,
        beta in 0.2f64..0.9,
        seed in any::<u64>(),
    ) {
        prop_assume!(log_n + 4 <= log_u);
        let cfg = SemiExplicitConfig {
            universe: 1 << log_u,
            capacity: 1 << log_n,
            beta,
            epsilon: 0.25,
            seed,
            stage_degree_cap: 8,
        };
        let g = SemiExplicitExpander::build(cfg).expect("valid parameters build");
        prop_assert!(g.num_stages() >= 1 && g.num_stages() <= 4);
        let r = g.report();
        for st in &r.stages {
            prop_assert!(st.degree >= 4 && st.degree <= 8);
            prop_assert!((st.right as u64) < st.left);
        }
        let x = seed % (1 << log_u);
        let ns = g.neighbors(x);
        prop_assert_eq!(ns.len(), g.degree());
        prop_assert!(ns.iter().all(|&y| y < g.right_size()));
    }

    /// Exhaustive witness ratios are monotone in the set-size cap: allowing
    /// larger sets can only find worse (or equal) expansion.
    #[test]
    fn exhaustive_worst_is_monotone(seed in any::<u64>()) {
        let g = SeededExpander::new(14, 12, 3, seed);
        let w2 = expander::verify::worst_expansion_exhaustive(&g, 2).ratio;
        let w3 = expander::verify::worst_expansion_exhaustive(&g, 3).ratio;
        prop_assert!(w3 <= w2 + 1e-12);
    }
}
