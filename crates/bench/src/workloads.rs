//! Deterministic workload generators.
//!
//! Everything is seeded so runs are reproducible; keys are drawn from a
//! bounded universe exactly as the paper's model requires.

use expander::mix::mix64;
use pdm::Word;
use std::collections::HashSet;

/// `n` distinct pseudorandom keys from `[0, universe)`.
///
/// # Panics
/// Panics if `n as u64 > universe`.
#[must_use]
pub fn uniform_keys(n: usize, universe: u64, seed: u64) -> Vec<u64> {
    assert!(
        n as u64 <= universe,
        "cannot draw {n} distinct keys from {universe}"
    );
    let mut out = Vec::with_capacity(n);
    let mut seen = HashSet::with_capacity(n);
    let mut state = seed;
    while out.len() < n {
        state = mix64(state.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let k = state % universe;
        if seen.insert(k) {
            out.push(k);
        }
    }
    out
}

/// `n` keys in `clusters` contiguous runs — the "sequential file names"
/// shape that stresses hash families with weak mixing.
#[must_use]
pub fn clustered_keys(n: usize, universe: u64, clusters: usize, seed: u64) -> Vec<u64> {
    let clusters = clusters.max(1);
    let per = n.div_ceil(clusters);
    let mut out = Vec::with_capacity(n);
    let mut seen = HashSet::with_capacity(n);
    let mut state = seed;
    while out.len() < n {
        state = mix64(state.wrapping_add(1));
        let base = state % universe;
        for i in 0..per as u64 {
            if out.len() >= n {
                break;
            }
            let k = (base + i) % universe;
            if seen.insert(k) {
                out.push(k);
            }
        }
    }
    out
}

/// Fixed-width satellite payload derived from the key (verifiable).
#[must_use]
pub fn satellite_for(key: u64, words: usize) -> Vec<Word> {
    (0..words as u64).map(|i| mix64(key ^ (i << 48))).collect()
}

/// `(key, satellite)` entries for a key set.
#[must_use]
pub fn entries_for(keys: &[u64], sigma_words: usize) -> Vec<(u64, Vec<Word>)> {
    keys.iter()
        .map(|&k| (k, satellite_for(k, sigma_words)))
        .collect()
}

/// `count` probe keys from `[0, universe)` that are **not** in `present`.
#[must_use]
pub fn miss_probes(present: &[u64], universe: u64, count: usize, seed: u64) -> Vec<u64> {
    let present: HashSet<u64> = present.iter().copied().collect();
    let mut out = Vec::with_capacity(count);
    let mut state = seed ^ 0xDEAD_BEEF;
    while out.len() < count {
        state = mix64(state.wrapping_add(3));
        let k = state % universe;
        if !present.contains(&k) {
            out.push(k);
        }
    }
    out
}

/// A Zipf(θ)-distributed index sampler over `0..n` — the "webmail or http
/// server" access pattern of Section 1.2 (a few hot users, a long tail).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    /// Sampler over `n` items with exponent `theta` (0 = uniform).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf, state: seed }
    }

    /// Replace the draw-sequence state without touching the law.
    pub fn reseed(&mut self, seed: u64) {
        self.state = seed;
    }

    /// Draw one index in `0..n`.
    pub fn sample(&mut self) -> usize {
        self.state = mix64(self.state.wrapping_add(0x2545_F491_4F6C_DD1D));
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Analytic probability mass of the `head` hottest ranks — the
    /// fraction of draws that will land there in expectation.
    #[must_use]
    pub fn head_mass(&self, head: usize) -> f64 {
        if head == 0 {
            0.0
        } else if head >= self.cdf.len() {
            1.0
        } else {
            self.cdf[head - 1]
        }
    }
}

/// A seeded Zipf(θ) **key** stream over a fixed key set: the rank-`i`
/// key of a seed-shuffled ordering is drawn with probability
/// ∝ `1/(i+1)^θ`. This is the skewed access shape the cache tier is
/// built for; the shuffle makes the hot set seed-dependent rather than
/// positional, so rotated CI seeds exercise different hot keys.
#[derive(Debug, Clone)]
pub struct ZipfStream {
    keys: Vec<u64>,
    zipf: Zipf,
}

impl ZipfStream {
    /// Stream over `keys` with exponent `theta` (0 = uniform), fully
    /// determined by `seed`.
    ///
    /// # Panics
    /// Panics if `keys` is empty.
    #[must_use]
    pub fn new(keys: &[u64], theta: f64, seed: u64) -> Self {
        assert!(!keys.is_empty(), "a key stream needs keys");
        let mut keys = keys.to_vec();
        // Seeded Fisher–Yates: rank order is a pure function of the seed.
        let mut state = seed ^ 0x0517_F1E5;
        for i in (1..keys.len()).rev() {
            state = mix64(state.wrapping_add(0x9E37_79B9_7F4A_7C15));
            let j = (state % (i as u64 + 1)) as usize;
            keys.swap(i, j);
        }
        let zipf = Zipf::new(keys.len(), theta, mix64(seed ^ 0x21BF));
        ZipfStream { keys, zipf }
    }

    /// Reseed the draw sequence while keeping the rank order (which key
    /// is hot) fixed. This is how concurrent clients share one hot set:
    /// construct every stream with the same seed, then give each client
    /// its own draw seed — without this, each seed shuffles the corpus
    /// and `n` clients aggregate to a much flatter mixture of `n`
    /// disjoint hot sets.
    #[must_use]
    pub fn with_draws(mut self, seed: u64) -> Self {
        self.zipf.reseed(seed);
        self
    }

    /// Draw the next key.
    pub fn next_key(&mut self) -> u64 {
        self.keys[self.zipf.sample()]
    }

    /// Draw `n` keys.
    pub fn take(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_key()).collect()
    }

    /// The `head` hottest keys, hottest first.
    #[must_use]
    pub fn hot_keys(&self, head: usize) -> &[u64] {
        &self.keys[..head.min(self.keys.len())]
    }

    /// Analytic fraction of draws landing in the `head` hottest keys.
    #[must_use]
    pub fn head_mass(&self, head: usize) -> f64 {
        self.zipf.head_mass(head)
    }
}

/// One operation of a file-system trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsOp {
    /// Write `(inode, block, payload seed)`.
    Write(u32, u32),
    /// Read `(inode, block)`.
    Read(u32, u32),
}

/// A trace over `files` files of up to `blocks_per_file` blocks: a write
/// warm-up followed by Zipf-weighted random reads.
#[must_use]
pub fn fs_trace(files: u32, blocks_per_file: u32, reads: usize, seed: u64) -> Vec<FsOp> {
    let mut ops = Vec::new();
    for f in 0..files {
        for b in 0..blocks_per_file {
            ops.push(FsOp::Write(f, b));
        }
    }
    let mut zipf = Zipf::new(files as usize, 0.9, seed);
    let mut state = seed;
    for _ in 0..reads {
        let f = zipf.sample() as u32;
        state = mix64(state.wrapping_add(7));
        let b = (state % u64::from(blocks_per_file)) as u32;
        ops.push(FsOp::Read(f, b));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_distinct_and_in_range() {
        let ks = uniform_keys(1000, 1 << 20, 5);
        assert_eq!(ks.len(), 1000);
        let set: HashSet<u64> = ks.iter().copied().collect();
        assert_eq!(set.len(), 1000);
        assert!(ks.iter().all(|&k| k < (1 << 20)));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_keys(100, 1 << 16, 9), uniform_keys(100, 1 << 16, 9));
        assert_ne!(
            uniform_keys(100, 1 << 16, 9),
            uniform_keys(100, 1 << 16, 10)
        );
    }

    #[test]
    fn clustered_keys_have_runs() {
        let ks = clustered_keys(100, 1 << 30, 4, 3);
        assert_eq!(ks.len(), 100);
        let consecutive = ks.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(consecutive > 50, "only {consecutive} consecutive pairs");
    }

    #[test]
    fn miss_probes_avoid_present() {
        let present = uniform_keys(500, 1 << 16, 1);
        let probes = miss_probes(&present, 1 << 16, 200, 2);
        let pset: HashSet<u64> = present.into_iter().collect();
        assert!(probes.iter().all(|k| !pset.contains(k)));
    }

    #[test]
    fn satellite_is_key_derived() {
        assert_eq!(satellite_for(5, 3), satellite_for(5, 3));
        assert_ne!(satellite_for(5, 3), satellite_for(6, 3));
        assert_eq!(satellite_for(5, 0), Vec::<Word>::new());
    }

    #[test]
    fn zipf_prefers_small_indices() {
        let mut z = Zipf::new(1000, 1.0, 7);
        let mut head = 0;
        for _ in 0..10_000 {
            if z.sample() < 100 {
                head += 1;
            }
        }
        // Top 10% of a Zipf(1) gets far more than 10% of the mass.
        assert!(head > 4000, "head hits {head}");
    }

    #[test]
    fn zipf_stream_is_deterministic_and_skewed() {
        let keys = uniform_keys(2000, 1 << 30, 11);
        let mut a = ZipfStream::new(&keys, 1.1, 42);
        let mut b = ZipfStream::new(&keys, 1.1, 42);
        assert_eq!(a.take(500), b.take(500), "same seed, same stream");
        assert_ne!(
            ZipfStream::new(&keys, 1.1, 42).take(500),
            ZipfStream::new(&keys, 1.1, 43).take(500),
            "seed rotates the stream"
        );

        // Empirical head mass tracks the analytic CDF.
        let mut s = ZipfStream::new(&keys, 1.1, 7);
        let hot: HashSet<u64> = s.hot_keys(100).iter().copied().collect();
        let expected = s.head_mass(100);
        let draws = 20_000;
        let hits = s.take(draws).iter().filter(|k| hot.contains(k)).count();
        let got = hits as f64 / draws as f64;
        assert!(
            (got - expected).abs() < 0.05,
            "head mass: analytic {expected:.3}, empirical {got:.3}"
        );
        assert!(expected > 0.5, "Zipf(1.1) concentrates over half its mass");
    }

    #[test]
    fn with_draws_keeps_rank_order_but_rotates_draws() {
        let keys = uniform_keys(500, 1 << 30, 3);
        let base = ZipfStream::new(&keys, 1.5, 21);
        let mut a = ZipfStream::new(&keys, 1.5, 21).with_draws(1);
        let mut b = ZipfStream::new(&keys, 1.5, 21).with_draws(2);
        assert_eq!(base.hot_keys(10), a.hot_keys(10), "same hot set");
        assert_eq!(a.hot_keys(10), b.hot_keys(10), "same hot set");
        assert_ne!(a.take(300), b.take(300), "different draw sequences");
    }

    #[test]
    fn fs_trace_shape() {
        let ops = fs_trace(4, 8, 50, 1);
        assert_eq!(ops.len(), 4 * 8 + 50);
        assert!(matches!(ops[0], FsOp::Write(0, 0)));
        assert!(matches!(ops[4 * 8], FsOp::Read(_, _)));
    }
}
