//! # `bench` — the experiment harness
//!
//! Regenerates every table, figure and quantitative claim of the paper
//! (see DESIGN.md's experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_table` | Figure 1 — the old/new dictionary comparison table |
//! | `lemma3_load` | Lemma 3 — deterministic load balancing bound |
//! | `thm6_construction` | Theorem 6 — one-probe static dictionary |
//! | `thm7_dynamic` | Theorem 7 — `1+ɛ` / `2+ɛ` dynamic dictionary |
//! | `basic_dict` | Section 4.1 claims |
//! | `expander_quality` | Section 5 — semi-explicit construction |
//! | `filesystem_motivation` | Section 1.2 — B-tree vs dictionary |
//! | `ablation_k_choice` | ablation: degree `d` and items-per-key `k` |
//! | `ablation_expansion` | ablation: expander quality vs dictionary cost |
//! | `workload_replay` | observability: guarantees read off exported metrics |
//!
//! Criterion benches (`cargo bench -p bench`) measure wall-clock time of
//! the same structures; the binaries measure **parallel I/Os**, the
//! paper's own cost metric.

#![forbid(unsafe_code)]

pub mod measure;
pub mod report;
pub mod workloads;

pub use measure::{evaluate, BuildStyle, MethodReport, Subject};
pub use report::{print_table, write_json};
