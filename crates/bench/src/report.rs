//! Table printing and JSON persistence for the experiment binaries.

use crate::measure::MethodReport;
use std::io::Write;
use std::path::PathBuf;

fn fmt_opt_f(v: Option<f64>) -> String {
    v.map_or("-".into(), |x| format!("{x:.2}"))
}

fn fmt_opt_u(v: Option<u64>) -> String {
    v.map_or("-".into(), |x| x.to_string())
}

/// Print the Figure 1-style comparison table.
pub fn print_table(title: &str, reports: &[MethodReport]) {
    println!("\n== {title} ==");
    println!(
        "{:<34} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>10} {:>6} {:>5}",
        "method",
        "lkp avg",
        "lkp wc",
        "miss",
        "ins avg",
        "ins wc",
        "del avg",
        "bld IOs",
        "space(w)",
        "bw(w)",
        "disks"
    );
    for r in reports {
        println!(
            "{:<34} {:>7.3} {:>7} {:>7.3} {:>7} {:>7} {:>7} {:>7} {:>10} {:>6} {:>5}{}",
            r.name,
            r.lookup_avg,
            r.lookup_worst,
            r.miss_avg,
            fmt_opt_f(r.insert_avg),
            fmt_opt_u(r.insert_worst),
            fmt_opt_f(r.delete_avg),
            r.build_ios,
            r.space_words,
            r.bandwidth_words,
            r.disks_used,
            if r.failures > 0 {
                format!("  !! {} FAILURES", r.failures)
            } else {
                String::new()
            }
        );
    }
}

/// Persist results as JSON under `target/experiments/<name>.json`.
///
/// Returns the path written.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let body = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    f.write_all(body.as_bytes())?;
    writeln!(f)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> MethodReport {
        MethodReport {
            name: "test".into(),
            n: 10,
            build_ios: 20,
            insert_avg: Some(2.0),
            insert_worst: Some(2),
            lookup_avg: 1.0,
            lookup_worst: 1,
            miss_avg: 1.0,
            miss_worst: 1,
            delete_avg: None,
            space_words: 100,
            bandwidth_words: 4,
            disks_used: 8,
            failures: 0,
        }
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table("unit test", &[dummy()]);
    }

    #[test]
    fn json_roundtrip() {
        let path = write_json("unit_test_report", &vec![dummy()]).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"name\": \"test\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_opt_f(None), "-");
        assert_eq!(fmt_opt_f(Some(1.5)), "1.50");
        assert_eq!(fmt_opt_u(Some(3)), "3");
    }
}
