//! Uniform measurement harness over all dictionary implementations.
//!
//! Every structure — deterministic or randomized — is wrapped in the
//! [`Subject`] trait, built over the same key sets, and measured in
//! **parallel I/Os per operation** on its own simulated disk array.

use baselines::{CuckooDict, DghpDict, FolkloreDict, PdmBTree, StripedHashTable};
use pdm::{CostProfile, DiskArray, OpCost, PdmConfig, Word};
use pdm_dict::basic::{BasicDict, BasicDictConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::wide::{WideDict, WideDictConfig};
use pdm_dict::{DictParams, DynamicDict};

/// How a subject is populated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildStyle {
    /// Keys inserted one at a time (per-insert costs are meaningful).
    Incremental,
    /// Built once from the full key set (construction cost is reported
    /// instead of per-insert costs).
    Static,
}

/// A dictionary under measurement.
pub trait Subject {
    /// Display name (matches the Figure 1 row it reproduces).
    fn name(&self) -> String;
    /// Incremental or static.
    fn style(&self) -> BuildStyle;
    /// Populate with `entries`. Returns `(total build parallel I/Os,
    /// per-insert profile if incremental)`.
    fn build(&mut self, entries: &[(u64, Vec<Word>)])
        -> Result<(u64, Option<CostProfile>), String>;
    /// Lookup; returns whether found and the cost.
    fn lookup(&mut self, key: u64) -> (bool, OpCost);
    /// Delete if supported.
    fn delete(&mut self, key: u64) -> Option<(bool, OpCost)>;
    /// Space in words.
    fn space_words(&self) -> usize;
    /// Satellite bandwidth in words (how much data one lookup returns).
    fn bandwidth_words(&self) -> usize;
    /// Disks the structure occupies.
    fn disks_used(&self) -> usize;
}

/// Everything measured about one method on one workload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MethodReport {
    /// Method name.
    pub name: String,
    /// Keys stored.
    pub n: usize,
    /// Total parallel I/Os to build.
    pub build_ios: u64,
    /// Average insert I/Os (incremental subjects).
    pub insert_avg: Option<f64>,
    /// Worst insert I/Os.
    pub insert_worst: Option<u64>,
    /// Average successful-lookup I/Os.
    pub lookup_avg: f64,
    /// Worst successful-lookup I/Os.
    pub lookup_worst: u64,
    /// Average unsuccessful-lookup I/Os.
    pub miss_avg: f64,
    /// Worst unsuccessful-lookup I/Os.
    pub miss_worst: u64,
    /// Average delete I/Os (when supported).
    pub delete_avg: Option<f64>,
    /// Space in words.
    pub space_words: usize,
    /// Bandwidth in words.
    pub bandwidth_words: usize,
    /// Disks occupied.
    pub disks_used: usize,
    /// Lookup correctness failures (should always be 0).
    pub failures: usize,
}

/// Build `subject` from `entries`, probe all present keys and
/// `miss_probes`, optionally delete `delete_sample`, and report.
pub fn evaluate(
    subject: &mut dyn Subject,
    entries: &[(u64, Vec<Word>)],
    miss_probes: &[u64],
    delete_sample: &[u64],
) -> Result<MethodReport, String> {
    let (build_ios, insert_profile) = subject.build(entries)?;
    let mut lookup_hit = CostProfile::default();
    let mut failures = 0usize;
    for (k, _) in entries {
        let (found, cost) = subject.lookup(*k);
        if !found {
            failures += 1;
        }
        lookup_hit.record(cost);
    }
    let mut lookup_miss = CostProfile::default();
    for &k in miss_probes {
        let (found, cost) = subject.lookup(k);
        if found {
            failures += 1;
        }
        lookup_miss.record(cost);
    }
    let mut delete_profile: Option<CostProfile> = None;
    for &k in delete_sample {
        if let Some((_, cost)) = subject.delete(k) {
            delete_profile
                .get_or_insert_with(CostProfile::default)
                .record(cost);
        }
    }
    Ok(MethodReport {
        name: subject.name(),
        n: entries.len(),
        build_ios,
        insert_avg: insert_profile.as_ref().map(CostProfile::average),
        insert_worst: insert_profile.as_ref().map(|p| p.worst_parallel_ios),
        lookup_avg: lookup_hit.average(),
        lookup_worst: lookup_hit.worst_parallel_ios,
        miss_avg: lookup_miss.average(),
        miss_worst: lookup_miss.worst_parallel_ios,
        delete_avg: delete_profile.as_ref().map(CostProfile::average),
        space_words: subject.space_words(),
        bandwidth_words: subject.bandwidth_words(),
        disks_used: subject.disks_used(),
        failures,
    })
}

// ---------------------------------------------------------------------------
// Deterministic subjects (this paper)
// ---------------------------------------------------------------------------

/// Section 4.1 basic dictionary.
pub struct BasicSubject {
    disks: DiskArray,
    dict: BasicDict,
    sigma: usize,
}

impl BasicSubject {
    /// `d` disks of `block_words`-word blocks, capacity `n`.
    #[must_use]
    pub fn new(n: usize, sigma: usize, degree: usize, block_words: usize, seed: u64) -> Self {
        let mut disks = DiskArray::new(PdmConfig::new(degree, block_words), 0);
        let mut alloc = DiskAllocator::new(degree);
        let cfg = BasicDictConfig::log_load(n, 1 << 40, degree, sigma, seed);
        let dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).expect("valid config");
        BasicSubject { disks, dict, sigma }
    }
}

impl Subject for BasicSubject {
    fn name(&self) -> String {
        "§4.1 basic (det.)".into()
    }
    fn style(&self) -> BuildStyle {
        BuildStyle::Incremental
    }
    fn build(
        &mut self,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(u64, Option<CostProfile>), String> {
        let mut profile = CostProfile::default();
        let before = self.disks.stats().parallel_ios;
        for (k, s) in entries {
            let cost = self
                .dict
                .insert(&mut self.disks, *k, s)
                .map_err(|e| e.to_string())?;
            profile.record(cost);
        }
        Ok((self.disks.stats().parallel_ios - before, Some(profile)))
    }
    fn lookup(&mut self, key: u64) -> (bool, OpCost) {
        let out = self.dict.lookup(&mut self.disks, key);
        (out.found(), out.cost)
    }
    fn delete(&mut self, key: u64) -> Option<(bool, OpCost)> {
        Some(self.dict.delete(&mut self.disks, key))
    }
    fn space_words(&self) -> usize {
        self.dict.space_words(&self.disks)
    }
    fn bandwidth_words(&self) -> usize {
        self.sigma
    }
    fn disks_used(&self) -> usize {
        self.disks.disks()
    }
}

/// Theorem 6 one-probe static dictionary (either case).
pub struct OneProbeSubject {
    disks: DiskArray,
    dict: Option<OneProbeStatic>,
    params: DictParams,
    variant: OneProbeVariant,
}

impl OneProbeSubject {
    /// Case (a) or (b) with the given geometry.
    #[must_use]
    pub fn new(
        n: usize,
        sigma: usize,
        degree: usize,
        block_words: usize,
        variant: OneProbeVariant,
        seed: u64,
    ) -> Self {
        let disks_needed = match variant {
            OneProbeVariant::CaseA => 2 * degree,
            OneProbeVariant::CaseB => degree,
        };
        let disks = DiskArray::new(PdmConfig::new(disks_needed, block_words), 0);
        let params = DictParams::new(n, 1 << 40, sigma)
            .with_degree(degree)
            .with_seed(seed);
        OneProbeSubject {
            disks,
            dict: None,
            params,
            variant,
        }
    }
}

impl Subject for OneProbeSubject {
    fn name(&self) -> String {
        match self.variant {
            OneProbeVariant::CaseA => "§4.2 one-probe a (det., static)".into(),
            OneProbeVariant::CaseB => "§4.2 one-probe b (det., static)".into(),
        }
    }
    fn style(&self) -> BuildStyle {
        BuildStyle::Static
    }
    fn build(
        &mut self,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(u64, Option<CostProfile>), String> {
        let mut alloc = DiskAllocator::new(self.disks.disks());
        let (dict, stats) = OneProbeStatic::build(
            &mut self.disks,
            &mut alloc,
            0,
            &self.params,
            self.variant,
            entries,
        )
        .map_err(|e| e.to_string())?;
        self.dict = Some(dict);
        Ok((stats.cost.parallel_ios, None))
    }
    fn lookup(&mut self, key: u64) -> (bool, OpCost) {
        let out = self
            .dict
            .as_ref()
            .expect("built")
            .lookup(&mut self.disks, key);
        (out.found(), out.cost)
    }
    fn delete(&mut self, _key: u64) -> Option<(bool, OpCost)> {
        None // static structure
    }
    fn space_words(&self) -> usize {
        self.dict.as_ref().map_or(0, |d| d.space_words(&self.disks))
    }
    fn bandwidth_words(&self) -> usize {
        self.params.satellite_words
    }
    fn disks_used(&self) -> usize {
        self.disks.disks()
    }
}

/// Theorem 7 dynamic dictionary.
pub struct DynamicSubject {
    disks: DiskArray,
    dict: DynamicDict,
    sigma: usize,
}

impl DynamicSubject {
    /// `2d` disks; capacity 2n for headroom.
    #[must_use]
    pub fn new(
        n: usize,
        sigma: usize,
        degree: usize,
        block_words: usize,
        epsilon: f64,
        seed: u64,
    ) -> Self {
        let mut disks = DiskArray::new(PdmConfig::new(2 * degree, block_words), 0);
        let mut alloc = DiskAllocator::new(2 * degree);
        let params = DictParams::new(2 * n, 1 << 40, sigma)
            .with_degree(degree)
            .with_epsilon(epsilon)
            .with_seed(seed);
        let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).expect("valid params");
        DynamicSubject { disks, dict, sigma }
    }

    /// Level occupancy (for the THM7 experiment).
    #[must_use]
    pub fn level_population(&self) -> Vec<usize> {
        self.dict.level_population().to_vec()
    }
}

impl Subject for DynamicSubject {
    fn name(&self) -> String {
        "§4.3 dynamic (det.)".into()
    }
    fn style(&self) -> BuildStyle {
        BuildStyle::Incremental
    }
    fn build(
        &mut self,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(u64, Option<CostProfile>), String> {
        let mut profile = CostProfile::default();
        let before = self.disks.stats().parallel_ios;
        for (k, s) in entries {
            let cost = self
                .dict
                .insert(&mut self.disks, *k, s)
                .map_err(|e| e.to_string())?;
            profile.record(cost);
        }
        Ok((self.disks.stats().parallel_ios - before, Some(profile)))
    }
    fn lookup(&mut self, key: u64) -> (bool, OpCost) {
        let out = self.dict.lookup(&mut self.disks, key);
        (out.found(), out.cost)
    }
    fn delete(&mut self, key: u64) -> Option<(bool, OpCost)> {
        Some(self.dict.delete(&mut self.disks, key))
    }
    fn space_words(&self) -> usize {
        self.dict.space_words(&self.disks)
    }
    fn bandwidth_words(&self) -> usize {
        self.sigma
    }
    fn disks_used(&self) -> usize {
        self.disks.disks()
    }
}

/// Section 4.1's wide-bandwidth variant (`k = d/2`).
pub struct WideSubject {
    disks: DiskArray,
    dict: WideDict,
}

impl WideSubject {
    /// `d` disks; chunk size chosen so the satellite is `k·chunk_words`.
    #[must_use]
    pub fn new(n: usize, chunk_words: usize, degree: usize, block_words: usize, seed: u64) -> Self {
        let mut disks = DiskArray::new(PdmConfig::new(degree, block_words), 0);
        let mut alloc = DiskAllocator::new(degree);
        let cfg = WideDictConfig::paper(n, 1 << 40, degree, chunk_words, seed);
        let dict = WideDict::create(&mut disks, &mut alloc, 0, cfg).expect("valid config");
        WideSubject { disks, dict }
    }

    /// Satellite words per key for this instance.
    #[must_use]
    pub fn satellite_words(&self) -> usize {
        self.dict.bandwidth_words()
    }
}

impl Subject for WideSubject {
    fn name(&self) -> String {
        "§4.1 wide k=d/2 (det.)".into()
    }
    fn style(&self) -> BuildStyle {
        BuildStyle::Incremental
    }
    fn build(
        &mut self,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(u64, Option<CostProfile>), String> {
        let mut profile = CostProfile::default();
        let before = self.disks.stats().parallel_ios;
        for (k, s) in entries {
            let cost = self
                .dict
                .insert(&mut self.disks, *k, s)
                .map_err(|e| e.to_string())?;
            profile.record(cost);
        }
        Ok((self.disks.stats().parallel_ios - before, Some(profile)))
    }
    fn lookup(&mut self, key: u64) -> (bool, OpCost) {
        let out = self.dict.lookup(&mut self.disks, key);
        (out.found(), out.cost)
    }
    fn delete(&mut self, key: u64) -> Option<(bool, OpCost)> {
        Some(self.dict.delete(&mut self.disks, key))
    }
    fn space_words(&self) -> usize {
        self.dict.space_words(&self.disks)
    }
    fn bandwidth_words(&self) -> usize {
        self.dict.bandwidth_words()
    }
    fn disks_used(&self) -> usize {
        self.disks.disks()
    }
}

// ---------------------------------------------------------------------------
// Randomized subjects (Figure 1's comparators) and the B-tree
// ---------------------------------------------------------------------------

macro_rules! baseline_subject {
    ($wrapper:ident, $inner:ty, $name:expr, $bandwidth:expr) => {
        /// Baseline wrapper (see the inner type's docs).
        pub struct $wrapper {
            inner: $inner,
            sigma: usize,
        }

        impl Subject for $wrapper {
            fn name(&self) -> String {
                $name.into()
            }
            fn style(&self) -> BuildStyle {
                BuildStyle::Incremental
            }
            fn build(
                &mut self,
                entries: &[(u64, Vec<Word>)],
            ) -> Result<(u64, Option<CostProfile>), String> {
                let mut profile = CostProfile::default();
                let before = self.inner.disks().stats().parallel_ios;
                for (k, s) in entries {
                    let cost = self.inner.insert(*k, s).map_err(|e| e.to_string())?;
                    profile.record(cost);
                }
                Ok((
                    self.inner.disks().stats().parallel_ios - before,
                    Some(profile),
                ))
            }
            fn lookup(&mut self, key: u64) -> (bool, OpCost) {
                let (found, cost) = self.inner.lookup(key);
                (found.is_some(), cost)
            }
            fn delete(&mut self, key: u64) -> Option<(bool, OpCost)> {
                Some(self.inner.delete(key))
            }
            fn space_words(&self) -> usize {
                self.inner.disks().total_words()
            }
            fn bandwidth_words(&self) -> usize {
                #[allow(clippy::redundant_closure_call)]
                ($bandwidth)(&self.inner, self.sigma)
            }
            fn disks_used(&self) -> usize {
                self.inner.disks().disks()
            }
        }
    };
}

baseline_subject!(
    StripedSubject,
    StripedHashTable,
    "hashing + striping (rand.)",
    |_inner: &StripedHashTable, sigma| sigma
);
baseline_subject!(
    CuckooSubject,
    CuckooDict,
    "cuckoo [13] (rand.)",
    |inner: &CuckooDict, _| inner.bandwidth_words()
);
baseline_subject!(
    DghpSubject,
    DghpDict,
    "[7] dghp-style (rand.)",
    |_inner: &DghpDict, sigma| sigma
);
baseline_subject!(
    BTreeSubject,
    PdmBTree,
    "B-tree (§1.2 incumbent)",
    |_inner: &PdmBTree, sigma| sigma
);

impl StripedSubject {
    /// Construct with the given geometry.
    #[must_use]
    pub fn new(n: usize, sigma: usize, disks: usize, block_words: usize, seed: u64) -> Self {
        StripedSubject {
            inner: StripedHashTable::new(n, sigma, disks, block_words, seed),
            sigma,
        }
    }
}

impl CuckooSubject {
    /// Construct with the given geometry.
    #[must_use]
    pub fn new(n: usize, sigma: usize, disks: usize, block_words: usize, seed: u64) -> Self {
        CuckooSubject {
            inner: CuckooDict::new(n, sigma, disks, block_words, seed),
            sigma,
        }
    }
}

impl DghpSubject {
    /// Construct with the given geometry.
    #[must_use]
    pub fn new(n: usize, sigma: usize, disks: usize, block_words: usize, seed: u64) -> Self {
        DghpSubject {
            inner: DghpDict::new(n, sigma, disks, block_words, seed),
            sigma,
        }
    }
}

impl BTreeSubject {
    /// Construct with the given geometry.
    #[must_use]
    pub fn new(sigma: usize, disks: usize, block_words: usize) -> Self {
        BTreeSubject {
            inner: PdmBTree::new(sigma, disks, block_words),
            sigma,
        }
    }
}

/// The "\[7\] + trick" folklore structure (two component arrays, so it
/// needs a hand-rolled wrapper).
pub struct FolkloreSubject {
    inner: FolkloreDict,
    sigma: usize,
}

impl FolkloreSubject {
    /// Construct with the given geometry and primary slack.
    #[must_use]
    pub fn new(
        n: usize,
        sigma: usize,
        disks: usize,
        block_words: usize,
        slack: usize,
        seed: u64,
    ) -> Self {
        FolkloreSubject {
            inner: FolkloreDict::new(n, sigma, disks, block_words, slack, seed),
            sigma,
        }
    }
}

impl Subject for FolkloreSubject {
    fn name(&self) -> String {
        "[7] + trick folklore (rand.)".into()
    }
    fn style(&self) -> BuildStyle {
        BuildStyle::Incremental
    }
    fn build(
        &mut self,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(u64, Option<CostProfile>), String> {
        let mut profile = CostProfile::default();
        let before = self.inner.io_stats().parallel_ios;
        for (k, s) in entries {
            let cost = self.inner.insert(*k, s).map_err(|e| e.to_string())?;
            profile.record(cost);
        }
        Ok((self.inner.io_stats().parallel_ios - before, Some(profile)))
    }
    fn lookup(&mut self, key: u64) -> (bool, OpCost) {
        let (found, cost) = self.inner.lookup(key);
        (found.is_some(), cost)
    }
    fn delete(&mut self, key: u64) -> Option<(bool, OpCost)> {
        Some(self.inner.delete(key))
    }
    fn space_words(&self) -> usize {
        self.inner.space_words()
    }
    fn bandwidth_words(&self) -> usize {
        let _ = self.sigma;
        self.inner.bandwidth_words()
    }
    fn disks_used(&self) -> usize {
        self.inner.primary_disks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{entries_for, miss_probes, uniform_keys};

    fn check_subject(subject: &mut dyn Subject, n: usize, sigma: usize) -> MethodReport {
        let keys = uniform_keys(n, 1 << 30, 11);
        let entries = entries_for(&keys, sigma);
        let misses = miss_probes(&keys, 1 << 30, 50, 12);
        let report = evaluate(subject, &entries, &misses, &keys[..10.min(n)]).unwrap();
        assert_eq!(report.failures, 0, "{}: correctness failures", report.name);
        report
    }

    #[test]
    fn basic_subject_measures() {
        let mut s = BasicSubject::new(200, 1, 13, 64, 1);
        let r = check_subject(&mut s, 200, 1);
        assert_eq!(r.lookup_worst, 1);
        assert_eq!(r.insert_avg, Some(2.0));
    }

    #[test]
    fn one_probe_subjects_measure() {
        for variant in [OneProbeVariant::CaseA, OneProbeVariant::CaseB] {
            let mut s = OneProbeSubject::new(150, 1, 13, 64, variant, 2);
            let r = check_subject(&mut s, 150, 1);
            assert_eq!(r.lookup_worst, 1, "{}", r.name);
            assert!(r.build_ios > 0);
            assert!(r.insert_avg.is_none());
        }
    }

    #[test]
    fn dynamic_subject_measures() {
        let mut s = DynamicSubject::new(200, 1, 20, 64, 0.5, 3);
        let r = check_subject(&mut s, 200, 1);
        assert!(r.lookup_avg <= 1.5);
        assert!(r.insert_avg.unwrap() <= 2.5);
        assert_eq!(r.miss_worst, 1);
    }

    #[test]
    fn baseline_subjects_measure() {
        let n = 150;
        let mut subjects: Vec<Box<dyn Subject>> = vec![
            Box::new(StripedSubject::new(n, 1, 8, 16, 4)),
            Box::new(CuckooSubject::new(n, 1, 8, 16, 5)),
            Box::new(DghpSubject::new(n, 1, 8, 16, 6)),
            Box::new(FolkloreSubject::new(n, 1, 8, 16, 4, 7)),
            Box::new(BTreeSubject::new(1, 8, 16)),
        ];
        for s in &mut subjects {
            let r = check_subject(s.as_mut(), n, 1);
            assert!(r.lookup_avg >= 1.0, "{}", r.name);
        }
    }
}
