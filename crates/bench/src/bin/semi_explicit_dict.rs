//! SEC5b — the paper's end-to-end result: a one-probe dictionary powered
//! by the Section 5 *semi-explicit* expander.
//!
//! Sections 2–4 assume an explicit expander "for free"; Section 5 builds
//! one with `O(N^β)` words of internal memory when `u = poly(N)` and
//! notes that after trivial striping it supports the dictionaries in the
//! parallel disk model at a factor-`d` space cost. This binary closes the
//! loop: build the Theorem 12 expander, stripe it, hand it to the
//! Theorem 6 case (b) dictionary, and measure
//!
//! * one-parallel-I/O lookups (the headline),
//! * the price of semi-explicitness: composite degree `d = polylog(u)`
//!   means `D = d` disks (the paper: "the smallest number of disks for
//!   which we can realize our scheme" is set by the best known explicit
//!   construction) and a factor-`d` space overhead from striping.
//!
//! Run: `cargo run -p bench --release --bin semi_explicit_dict`

use bench::workloads::{entries_for, miss_probes, uniform_keys};
use bench::write_json;
use expander::semi_explicit::{SemiExplicitConfig, SemiExplicitExpander};
use expander::{NeighborFn, TriviallyStriped};
use pdm::{DiskArray, Model, PdmConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{HeadModelOneProbe, OneProbeStatic, OneProbeVariant};
use pdm_dict::DictParams;

#[derive(serde::Serialize)]
struct Row {
    model: &'static str,
    universe_log2: u32,
    n: usize,
    beta: f64,
    degree: usize,
    disks: usize,
    memory_words: u64,
    build_ios: u64,
    lookup_worst: u64,
    false_positives: usize,
    space_words: usize,
}

fn print_row(row: &Row) {
    println!(
        "{:<18} {:>6} {:>6} {:>4} {:>7} {:>6} {:>9} {:>9} {:>7} {:>4} {:>12}",
        row.model,
        row.universe_log2,
        row.n,
        row.beta,
        row.degree,
        row.disks,
        row.memory_words,
        row.build_ios,
        row.lookup_worst,
        row.false_positives,
        row.space_words
    );
}

fn main() {
    println!(
        "{:<18} {:>6} {:>6} {:>4} {:>7} {:>6} {:>9} {:>9} {:>7} {:>4} {:>12}",
        "model",
        "log u",
        "n",
        "β",
        "degree",
        "disks",
        "mem(w)",
        "build",
        "lkp wc",
        "fp",
        "space(w)"
    );
    let mut rows = Vec::new();
    for &(log_u, n, beta, cap) in &[(20u32, 256usize, 0.5, 6usize), (24, 512, 0.5, 8)] {
        let semi = SemiExplicitExpander::build(SemiExplicitConfig {
            universe: 1 << log_u,
            capacity: n,
            beta,
            epsilon: 1.0 / 12.0,
            seed: 0x5D1C,
            stage_degree_cap: cap,
        })
        .expect("Theorem 12 construction");
        let memory_words = semi.report().memory_words;
        let graph = TriviallyStriped::new(semi.clone());
        let d = graph.degree();

        // The dictionary needs one disk per stripe: D = d — the cost of
        // semi-explicitness that the paper's introduction flags.
        let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
        let mut alloc = DiskAllocator::new(d);
        let keys = uniform_keys(n, 1 << log_u, 0x5D2);
        let entries = entries_for(&keys, 1);
        let params = DictParams::new(n, 1 << log_u, 1).with_degree(d);
        let (dict, stats) = OneProbeStatic::build_with_graph(
            &mut disks,
            &mut alloc,
            0,
            &params,
            OneProbeVariant::CaseB,
            graph,
            &entries,
        )
        .expect("construction succeeds");

        let mut lookup_worst = 0;
        for (k, sat) in &entries {
            let out = dict.lookup(&mut disks, *k);
            assert_eq!(out.satellite.as_ref(), Some(sat), "wrong data for {k}");
            lookup_worst = lookup_worst.max(out.cost.parallel_ios);
        }
        let mut fp = 0;
        for probe in miss_probes(&keys, 1 << log_u, 500, 0x5D3) {
            if dict.lookup(&mut disks, probe).found() {
                fp += 1;
            }
        }
        let row = Row {
            model: "PDM (striped)",
            universe_log2: log_u,
            n,
            beta,
            degree: d,
            disks: d,
            memory_words,
            build_ios: stats.cost.parallel_ios,
            lookup_worst,
            false_positives: fp,
            space_words: dict.space_words(&disks),
        };
        print_row(&row);
        rows.push(row);

        // The same graph WITHOUT striping, in the parallel disk head model:
        // the paper's other deployment option, saving the factor-d space.
        let head_cfg = PdmConfig::new(d, 64).with_model(Model::ParallelDiskHead);
        let mut hdisks = DiskArray::new(head_cfg, 0);
        let mut halloc = DiskAllocator::new(d);
        let before = hdisks.stats().parallel_ios;
        let hdict = HeadModelOneProbe::build(&mut hdisks, &mut halloc, 0, &params, semi, &entries)
            .expect("head-model build");
        let hbuild = hdisks.stats().parallel_ios - before;
        let mut hworst = 0;
        for (k, sat) in &entries {
            let out = hdict.lookup(&mut hdisks, *k);
            assert_eq!(out.satellite.as_ref(), Some(sat));
            hworst = hworst.max(out.cost.parallel_ios);
        }
        let mut hfp = 0;
        for probe in miss_probes(&keys, 1 << log_u, 500, 0x5D3) {
            if hdict.lookup(&mut hdisks, probe).found() {
                hfp += 1;
            }
        }
        let hrow = Row {
            model: "head model (flat)",
            universe_log2: log_u,
            n,
            beta,
            degree: d,
            disks: d,
            memory_words,
            build_ios: hbuild,
            lookup_worst: hworst,
            false_positives: hfp,
            space_words: hdict.space_words(&hdisks),
        };
        print_row(&hrow);
        rows.push(hrow);
    }
    println!(
        "\nEnd-to-end Section 5: one-probe lookups hold (lkp wc = 1, fp = 0) with NO assumed \
         explicit expander. The striped PDM build pays ~d× the space of the head-model flat \
         build — both sides of the paper's closing trade-off, measured."
    );
    if let Ok(p) = write_json("semi_explicit_dict", &rows) {
        println!("wrote {}", p.display());
    }
}
