//! ABL2 — ablation: expander quality vs dictionary cost.
//!
//! The Theorem 7 structure's `1 + ɛ` / `2 + ɛ` averages rest on the field
//! arrays' expansion, which in turn depends on the right-part slack
//! `c` in `v = c·N·d`. Shrinking `c` degrades expansion: more keys fall
//! through to deeper levels, the averages drift up, and below a critical
//! slack the first-fit insertion starts failing outright — the empirical
//! version of the theorems' `v = Θ(N·d)` requirement.
//!
//! Run: `cargo run -p bench --release --bin ablation_expansion`

use bench::workloads::{entries_for, uniform_keys};
use bench::write_json;
use pdm::{CostProfile, DiskArray, PdmConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::{DictParams, DynamicDict};

#[derive(serde::Serialize)]
struct Row {
    right_slack: f64,
    inserted: usize,
    failed: usize,
    insert_avg: f64,
    lookup_avg: f64,
    level_population: Vec<usize>,
    space_words: usize,
}

fn main() {
    let n = 1 << 12;
    let d = 20;
    let eps = 0.5;
    let keys = uniform_keys(n, 1 << 40, 0xAB2E);
    let entries = entries_for(&keys, 1);
    println!(
        "{:>6} {:>8} {:>7} {:>9} {:>9} {:>12}  levels",
        "slack", "stored", "failed", "ins avg", "lkp avg", "space(w)"
    );
    let mut rows = Vec::new();
    for &slack in &[0.75f64, 1.0, 1.5, 2.0, 4.0, 8.0] {
        let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
        let mut alloc = DiskAllocator::new(2 * d);
        let mut params = DictParams::new(n, 1 << 40, 1)
            .with_degree(d)
            .with_epsilon(eps)
            .with_seed(0xAB2F);
        params.right_slack = slack;
        let mut dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
        let mut inserts = CostProfile::default();
        let mut failed = 0usize;
        for (k, s) in &entries {
            match dict.insert(&mut disks, *k, s) {
                Ok(c) => inserts.record(c),
                Err(_) => failed += 1,
            }
        }
        let mut lookups = CostProfile::default();
        for (k, _) in &entries {
            let out = dict.lookup(&mut disks, *k);
            if out.found() {
                lookups.record(out.cost);
            }
        }
        let row = Row {
            right_slack: slack,
            inserted: dict.len(),
            failed,
            insert_avg: inserts.average(),
            lookup_avg: lookups.average(),
            level_population: dict.level_population().to_vec(),
            space_words: dict.space_words(&disks),
        };
        println!(
            "{:>6} {:>8} {:>7} {:>9.4} {:>9.4} {:>12}  {:?}",
            row.right_slack,
            row.inserted,
            row.failed,
            row.insert_avg,
            row.lookup_avg,
            row.space_words,
            row.level_population
        );
        rows.push(row);
    }
    println!(
        "\nShape: generous slack keeps nearly all keys on level 1 (averages ≈ 1 and 2); \
         starving the expander pushes keys deeper and eventually fails first-fit entirely."
    );
    if let Ok(p) = write_json("ablation_expansion", &rows) {
        println!("wrote {}", p.display());
    }
}
