//! THM6 — Theorem 6: the one-probe static dictionary.
//!
//! For a sweep of `n` and σ, builds both cases and reports:
//! * every lookup = exactly 1 parallel I/O (the headline claim),
//! * construction parallel I/Os vs the `sort(n·d)` yardstick (the claim
//!   is proportionality — the ratio should stay flat as `n` grows),
//! * space usage vs the information-theoretic `n(log u + σ)` bits.
//!
//! Run: `cargo run -p bench --release --bin thm6_construction`

use bench::workloads::{entries_for, miss_probes, uniform_keys};
use bench::write_json;
use pdm::{DiskArray, PdmConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::DictParams;

#[derive(serde::Serialize)]
struct Row {
    case: &'static str,
    n: usize,
    sigma_words: usize,
    build_ios: u64,
    sort_nd_bound: u64,
    ratio: f64,
    rounds: usize,
    lookup_worst: u64,
    miss_false_positives: usize,
    space_words: usize,
    optimal_words: usize,
}

fn run_case(
    variant: OneProbeVariant,
    name: &'static str,
    n: usize,
    sigma: usize,
    rows: &mut Vec<Row>,
) {
    let d = 13;
    let disks_needed = match variant {
        OneProbeVariant::CaseA => 2 * d,
        OneProbeVariant::CaseB => d,
    };
    let block_words = 128;
    let mut disks = DiskArray::new(PdmConfig::new(disks_needed, block_words), 0);
    let mut alloc = DiskAllocator::new(disks_needed);
    let keys = uniform_keys(n, 1 << 40, 0x736 + n as u64);
    let entries = entries_for(&keys, sigma);
    let params = DictParams::new(n, 1 << 40, sigma)
        .with_degree(d)
        .with_seed(9);
    let (dict, stats) =
        OneProbeStatic::build(&mut disks, &mut alloc, 0, &params, variant, &entries)
            .expect("construction succeeds");

    let mut lookup_worst = 0;
    for (k, sat) in &entries {
        let out = dict.lookup(&mut disks, *k);
        assert_eq!(out.satellite.as_ref(), Some(sat), "wrong satellite for {k}");
        lookup_worst = lookup_worst.max(out.cost.parallel_ios);
    }
    let mut false_pos = 0;
    for k in miss_probes(&keys, 1 << 40, 1000, 0x737) {
        if dict.lookup(&mut disks, k).found() {
            false_pos += 1;
        }
    }
    let sort_bound = pdm::sort_io_bound(disks.config(), n * d, 2).max(1);
    // Optimal: n(log u + σ) bits -> words.
    let optimal_words = n * (40 + sigma * 64).div_ceil(64);
    let row = Row {
        case: name,
        n,
        sigma_words: sigma,
        build_ios: stats.cost.parallel_ios,
        sort_nd_bound: sort_bound,
        ratio: stats.cost.parallel_ios as f64 / sort_bound as f64,
        rounds: stats.rounds,
        lookup_worst,
        miss_false_positives: false_pos,
        space_words: dict.space_words(&disks),
        optimal_words,
    };
    println!(
        "{:<7} {:>7} {:>3} {:>9} {:>9} {:>7.2} {:>7} {:>8} {:>6} {:>10} {:>10}",
        row.case,
        row.n,
        row.sigma_words,
        row.build_ios,
        row.sort_nd_bound,
        row.ratio,
        row.rounds,
        row.lookup_worst,
        row.miss_false_positives,
        row.space_words,
        row.optimal_words
    );
    rows.push(row);
}

fn main() {
    println!(
        "{:<7} {:>7} {:>3} {:>9} {:>9} {:>7} {:>7} {:>8} {:>6} {:>10} {:>10}",
        "case",
        "n",
        "σ",
        "build",
        "sort(nd)",
        "ratio",
        "rounds",
        "lkp wc",
        "fp",
        "space(w)",
        "opt(w)"
    );
    let mut rows = Vec::new();
    for &n in &[1 << 10, 1 << 12, 1 << 14] {
        for &sigma in &[1usize, 4] {
            run_case(OneProbeVariant::CaseA, "case a", n, sigma, &mut rows);
            run_case(OneProbeVariant::CaseB, "case b", n, sigma, &mut rows);
        }
    }
    println!("\nTheorem 6 holds if: lookup wc = 1, fp = 0, and the ratio column stays ~flat in n.");
    if let Ok(p) = write_json("thm6_construction", &rows) {
        println!("wrote {}", p.display());
    }
}
