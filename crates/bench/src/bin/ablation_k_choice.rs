//! ABL1 — ablation: choices `d` and items-per-key `k` in the greedy
//! load-balancing scheme.
//!
//! The Section 6 open problem asks whether full bandwidth is achievable
//! with 1-I/O lookups by running the scheme with `k = Ω(d)`; this ablation
//! maps the empirical trade-off: larger `k` spreads each key's data wider
//! (more bandwidth per parallel I/O) but pushes the max load up as `k`
//! approaches `d` (the Lemma 3 premise `d > k` frays).
//!
//! Run: `cargo run -p bench --release --bin ablation_k_choice`

use bench::workloads::uniform_keys;
use bench::write_json;
use expander::params::{lemma3_bound, ExpanderParams};
use expander::SeededExpander;
use loadbalance::{GreedyBalancer, LoadStats};

#[derive(serde::Serialize)]
struct Row {
    d: usize,
    k: usize,
    n: usize,
    v: usize,
    avg: f64,
    max: u32,
    deviation: f64,
    bound: Option<f64>,
    bandwidth_fraction: f64,
}

fn main() {
    let n = 1 << 14;
    let universe = 1u64 << 40;
    println!(
        "{:>4} {:>4} {:>9} {:>9} {:>6} {:>9} {:>11} {:>9}",
        "d", "k", "avg", "max", "dev", "bound", "bandwidth", "verdict"
    );
    let mut rows = Vec::new();
    for &d in &[8usize, 16, 32, 64] {
        let v = 64 * d; // fixed buckets per stripe across the sweep
        for &k in &[1usize, d / 4, d / 2, (3 * d) / 4, d - 1] {
            let k = k.max(1);
            let g = SeededExpander::new(universe, v / d, d, 0xAB1 + d as u64);
            let mut lb = GreedyBalancer::new(&g, k);
            for x in uniform_keys(n, universe, 0xAB2) {
                lb.insert(x);
            }
            let stats = LoadStats::of(lb.loads());
            let params = ExpanderParams {
                degree: d,
                right_size: v,
                epsilon: 1.0 / 12.0,
                delta: 0.5,
            };
            let bound = lemma3_bound(n, k, &params);
            let row = Row {
                d,
                k,
                n,
                v,
                avg: stats.mean,
                max: stats.max,
                deviation: stats.max_deviation(),
                bound,
                bandwidth_fraction: k as f64 / d as f64,
            };
            println!(
                "{:>4} {:>4} {:>9.2} {:>9} {:>6.1} {:>9} {:>10.0}% {:>9}",
                row.d,
                row.k,
                row.avg,
                row.max,
                row.deviation,
                row.bound.map_or("-".into(), |b| format!("{b:.1}")),
                100.0 * row.bandwidth_fraction,
                if row.bound.is_some_and(|b| f64::from(row.max) <= b) {
                    "≤ bound"
                } else if row.bound.is_none() {
                    "no bound"
                } else {
                    "EXCEEDS"
                }
            );
            rows.push(row);
        }
    }
    println!(
        "\nShape: deviation stays small while k ≪ d and degrades toward k = d-1, where Lemma 3's \
         log base (1-ε)d/k approaches 1 — the reason §6 calls the k = Ω(d) recursion non-constant-time."
    );
    if let Ok(p) = write_json("ablation_k_choice", &rows) {
        println!("wrote {}", p.display());
    }
}
