//! LEM3 — Lemma 3: deterministic load balancing.
//!
//! Sweeps `n`, `d`, `k` and compares the greedy expander scheme's maximum
//! load against (i) the Lemma 3 bound, (ii) single-choice hashing, and
//! (iii) random two-choice. Expected shape: greedy max load hugs the
//! average + small additive term; single choice pays the classic
//! `Θ(log n / log log n)` tail; two-choice sits in between.
//!
//! Run: `cargo run -p bench --release --bin lemma3_load`

use bench::workloads::uniform_keys;
use bench::write_json;
use expander::params::{lemma3_bound, ExpanderParams};
use expander::SeededExpander;
use loadbalance::baselines::{random_d_choice, single_choice};
use loadbalance::{GreedyBalancer, LoadStats};

#[derive(serde::Serialize)]
struct Row {
    n: usize,
    v: usize,
    d: usize,
    k: usize,
    average: f64,
    greedy_max: u32,
    lemma3_bound: Option<f64>,
    single_choice_max: u32,
    two_choice_max: u32,
}

fn main() {
    let universe = 1u64 << 40;
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>8} {:>4} {:>3} {:>9} {:>11} {:>13} {:>12} {:>11}",
        "n", "v", "d", "k", "avg", "greedy max", "Lemma3 bound", "1-choice max", "2-choice max"
    );
    for &(n, v) in &[(1 << 12, 512), (1 << 14, 1024), (1 << 16, 2048)] {
        for &d in &[8usize, 16, 32] {
            for &k in &[1usize, d / 4, d / 2] {
                let k = k.max(1);
                let keys = uniform_keys(n, universe, 0x13_37 + d as u64);
                // Greedy over the expander.
                let g = SeededExpander::new(universe, v / d, d, 0xE0 + d as u64);
                let mut greedy = GreedyBalancer::new(&g, k);
                for &x in &keys {
                    greedy.insert(x);
                }
                let gstats = LoadStats::of(greedy.loads());
                // Baselines place k·n items with the same totals.
                let mut one = single_choice(universe, v, 0xB1);
                let mut two = random_d_choice(universe, v, 2, 0xB2);
                for &x in &keys {
                    for j in 0..k as u64 {
                        // distinct pseudo-items per key for the baselines
                        one.insert(x.wrapping_add(j << 41) % universe);
                        two.insert(x.wrapping_add(j << 41) % universe);
                    }
                }
                // Lemma 3 parameters: measured ε at this scale is small;
                // use the paper's ε = 1/12, δ = 1/2 reference values.
                let params = ExpanderParams {
                    degree: d,
                    right_size: v,
                    epsilon: 1.0 / 12.0,
                    delta: 0.5,
                };
                let bound = lemma3_bound(n, k, &params);
                println!(
                    "{:>8} {:>8} {:>4} {:>3} {:>9.2} {:>11} {:>13} {:>12} {:>11}",
                    n,
                    v,
                    d,
                    k,
                    gstats.mean,
                    gstats.max,
                    bound.map_or("-".into(), |b| format!("{b:.1}")),
                    one.max_load(),
                    two.max_load()
                );
                rows.push(Row {
                    n,
                    v,
                    d,
                    k,
                    average: gstats.mean,
                    greedy_max: gstats.max,
                    lemma3_bound: bound,
                    single_choice_max: one.max_load(),
                    two_choice_max: two.max_load(),
                });
            }
        }
    }
    if let Ok(p) = write_json("lemma3_load", &rows) {
        println!("\nwrote {}", p.display());
    }
}
