//! CRASH — journaling overhead per op class and recovery cost vs
//! in-flight ops.
//!
//! Two identical `DynamicDict` twins replay the same read-heavy mixed
//! workload (~92% lookups — the shape of `workload_replay`'s trace —
//! plus inserts, deletes, and one batched insert), one with the
//! write-ahead intent journal enabled and one without (the PR-2
//! baseline). Parallel I/Os are counted per op class — deterministic in
//! the PDM cost model, so the gate is immune to CI timer noise;
//! wall-clock totals ride along for reference. Separately, recovery
//! cost is measured as a function of the number of in-flight (appended,
//! not yet truncated) intents at two dictionary sizes, on a ring large
//! enough that ring-pressure truncation does not fire mid-measurement
//! (a `DynamicDict` insert journals its whole membership replica set,
//! ~17 ring slots per intent).
//!
//! Writes `target/experiments/BENCH_crash.json` and exits nonzero if:
//! * the journal adds any I/O to lookups (reads never touch the ring),
//! * journaling overhead on the mixed workload exceeds 10%,
//! * a journaled mutation costs more than 2 extra parallel I/Os
//!   amortized (design: one ring append per op plus a group-committed
//!   superblock rewrite every [`pdm::GROUP_COMMIT_EVERY`] ops),
//! * recovery is not `O(in-flight)`: its I/O count must not grow with
//!   dictionary size, and must grow at most linearly (≤ 3 I/Os per
//!   intent) in the number of in-flight ops.
//!
//! Run: `cargo run -p bench --release --bin crash`
//! Smoke: `cargo run -p bench --release --bin crash -- --smoke`

use bench::write_json;
use pdm::{DiskArray, PdmConfig, Word};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::{DictParams, DynamicDict};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const KEY_SPACE: u64 = 1 << 20;
const UNIVERSE: u64 = 1 << 21;
/// Ring rows for the overhead twin (the harness default).
const JOURNAL_ROWS: usize = 4;
/// Ring rows for the recovery measurement: big enough that 7 in-flight
/// inserts (~17 slots each) never trigger ring-pressure truncation.
const RECOVERY_ROWS: usize = 8;

/// `n` distinct deterministic keys below [`KEY_SPACE`].
fn dense_keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % KEY_SPACE)
        .collect()
}

fn sat(key: u64) -> Vec<Word> {
    vec![key, key ^ (1 << 32)]
}

fn build(capacity: usize, journal_rows: usize, seed: u64) -> (DiskArray, DynamicDict) {
    let d = 20;
    let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
    let mut alloc = DiskAllocator::new(2 * d);
    let mut params = DictParams::new(capacity, UNIVERSE, 2)
        .with_degree(d)
        .with_epsilon(0.5)
        .with_seed(seed);
    if journal_rows > 0 {
        params = params.with_journal(journal_rows);
    }
    let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
    (disks, dict)
}

#[derive(Serialize)]
struct OpClassRow {
    class: String,
    ops: usize,
    plain_ios: u64,
    journaled_ios: u64,
    /// Extra parallel I/Os per op with the journal on.
    extra_ios_per_op: f64,
    overhead: f64,
}

#[derive(Serialize)]
struct RecoveryRow {
    dict_keys: usize,
    in_flight: usize,
    replayed: usize,
    recovery_ios: u64,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    keys: usize,
    journal_rows: usize,
    mixed_overhead: f64,
    plain_wall_ns: u128,
    journaled_wall_ns: u128,
    op_classes: Vec<OpClassRow>,
    recovery: Vec<RecoveryRow>,
}

/// Replay the mixed workload on one twin, returning per-phase parallel
/// I/O counts (in `phases` order) and total wall time.
fn replay(disks: &mut DiskArray, dict: &mut DynamicDict, keys: &[u64]) -> (Vec<u64>, u128) {
    let start = Instant::now();
    let mut ios = Vec::new();
    let mut mark = disks.stats().parallel_ios;
    let mut cut = |disks: &DiskArray, ios: &mut Vec<u64>| {
        let now = disks.stats().parallel_ios;
        ios.push(now - mark);
        mark = now;
    };

    // Preload half the keys sequentially: the "insert" op class.
    let (preload, rest) = keys.split_at(keys.len() / 2);
    for &k in preload {
        dict.insert(disks, k, &sat(k)).unwrap();
    }
    cut(disks, &mut ios);
    // One staged batch for the other half: the "batch_insert" class.
    let entries: Vec<(u64, Vec<Word>)> = rest.iter().map(|&k| (k, sat(k))).collect();
    let (results, _) = dict.insert_batch(disks, &entries);
    assert!(results.iter().all(Result::is_ok));
    cut(disks, &mut ios);
    // Read-heavy phase, the bulk of a replayed trace: twelve hit
    // sweeps, two miss sweeps, one batched sweep.
    for _ in 0..12 {
        for &k in keys {
            black_box(dict.lookup(disks, k).satellite);
        }
    }
    for pass in 0..2u64 {
        for &k in keys {
            black_box(dict.lookup(disks, k + KEY_SPACE + pass).satellite);
        }
    }
    let (got, _) = dict.lookup_batch(disks, keys);
    assert!(got.iter().all(Option::is_some));
    cut(disks, &mut ios);
    // Deletes for a quarter of the keys: the "delete" class.
    for &k in keys.iter().take(keys.len() / 4) {
        let (found, _) = dict.delete(disks, k);
        assert!(found);
    }
    cut(disks, &mut ios);
    (ios, start.elapsed().as_nanos())
}

/// Recovery cost with exactly `in_flight` un-truncated intents: build,
/// checkpoint (truncate), run `in_flight` more inserts, then reboot from
/// a clone of the image (superblock re-read from disk) and recover.
fn recovery_row(dict_keys: usize, in_flight: usize) -> RecoveryRow {
    assert!(
        (in_flight as u64) < pdm::GROUP_COMMIT_EVERY,
        "a group commit would truncate mid-measurement"
    );
    let (mut disks, mut dict) = build(dict_keys + 16, RECOVERY_ROWS, 0xC4A5);
    for &k in &dense_keys(dict_keys) {
        dict.insert(&mut disks, k, &sat(k)).unwrap();
    }
    let meta = disks.journal_meta();
    disks.journal_checkpoint(&meta);
    for i in 0..in_flight as u64 {
        let k = KEY_SPACE + 5_000 + i;
        dict.insert(&mut disks, k, &sat(k)).unwrap();
    }
    let mut image = disks.clone();
    let region = image.journal_region().unwrap();
    image.reopen_journal(region);
    let report = image.recover();
    RecoveryRow {
        dict_keys,
        in_flight,
        replayed: report.replayed.len(),
        recovery_ios: report.cost.parallel_ios,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 256 } else { 1024 };
    let keys = dense_keys(n);
    let mut failures: Vec<String> = Vec::new();

    // --- Journal overhead per op class, twin replay. ---
    let (mut pd, mut pdict) = build(n + 64, 0, 0xC4A5);
    let (plain_ios, plain_ns) = replay(&mut pd, &mut pdict, &keys);
    let (mut jd, mut jdict) = build(n + 64, JOURNAL_ROWS, 0xC4A5);
    let (journaled_ios, journaled_ns) = replay(&mut jd, &mut jdict, &keys);

    let classes = ["insert", "batch_insert", "lookup", "delete"];
    let class_ops = [n / 2, 1, 15 * n, n / 4];
    println!(
        "{:<13} {:>6} {:>10} {:>12} {:>10} {:>9}",
        "class", "ops", "plain_ios", "journal_ios", "extra/op", "overhead"
    );
    let mut op_classes = Vec::new();
    for (i, class) in classes.iter().enumerate() {
        let row = OpClassRow {
            class: (*class).into(),
            ops: class_ops[i],
            plain_ios: plain_ios[i],
            journaled_ios: journaled_ios[i],
            extra_ios_per_op: (journaled_ios[i] as f64 - plain_ios[i] as f64)
                / class_ops[i] as f64,
            overhead: journaled_ios[i] as f64 / plain_ios[i].max(1) as f64 - 1.0,
        };
        println!(
            "{:<13} {:>6} {:>10} {:>12} {:>10.3} {:>8.1}%",
            row.class, row.ops, row.plain_ios, row.journaled_ios, row.extra_ios_per_op,
            100.0 * row.overhead
        );
        if row.class == "lookup" && row.journaled_ios != row.plain_ios {
            failures.push(format!(
                "journal added I/O to lookups ({} vs {})",
                row.journaled_ios, row.plain_ios
            ));
        } else if row.class != "lookup" && row.extra_ios_per_op > 2.0 {
            failures.push(format!(
                "{}: {:.2} extra parallel I/Os per op with the journal on (budget: 2)",
                row.class, row.extra_ios_per_op
            ));
        }
        op_classes.push(row);
    }

    let plain_total: u64 = plain_ios.iter().sum();
    let journaled_total: u64 = journaled_ios.iter().sum();
    let mixed_overhead = journaled_total as f64 / plain_total.max(1) as f64 - 1.0;
    println!(
        "\nmixed-workload journal overhead: {:+.2}% ({journaled_total} vs {plain_total} \
         parallel I/Os; wall {:.2}ms vs {:.2}ms)",
        100.0 * mixed_overhead,
        journaled_ns as f64 / 1e6,
        plain_ns as f64 / 1e6
    );
    if mixed_overhead > 0.10 {
        failures.push(format!(
            "journaling overhead {:.1}% on the mixed workload (budget: 10%)",
            100.0 * mixed_overhead
        ));
    }

    // --- Recovery cost vs in-flight intents, at two sizes. ---
    let sizes = [n / 4, n];
    let in_flights = [0usize, 1, 2, 4, 7];
    println!("\n{:<10} {:>9} {:>9} {:>13}", "dict_keys", "in_flight", "replayed", "recovery_ios");
    let mut recovery = Vec::new();
    for &size in &sizes {
        for &m in &in_flights {
            let row = recovery_row(size, m);
            println!(
                "{:<10} {:>9} {:>9} {:>13}",
                row.dict_keys, row.in_flight, row.replayed, row.recovery_ios
            );
            if row.replayed != m {
                failures.push(format!(
                    "expected {m} replayable intents at size {size}, recovered {}",
                    row.replayed
                ));
            }
            recovery.push(row);
        }
    }
    // O(in-flight): independent of dictionary size...
    for (i, &m) in in_flights.iter().enumerate() {
        let small = recovery[i].recovery_ios;
        let large = recovery[in_flights.len() + i].recovery_ios;
        if large > small + 1 {
            failures.push(format!(
                "recovery with {m} in-flight ops scales with dictionary size \
                 ({small} I/Os at {} keys, {large} at {} keys)",
                sizes[0], sizes[1]
            ));
        }
    }
    // ...and at most linear in the in-flight count.
    for rows in recovery.chunks(in_flights.len()) {
        let base = rows[0].recovery_ios;
        for r in &rows[1..] {
            if r.recovery_ios > base + 3 * r.in_flight as u64 {
                failures.push(format!(
                    "recovery cost superlinear in in-flight ops at {} keys: \
                     {} I/Os for {} intents (idle: {base})",
                    r.dict_keys, r.recovery_ios, r.in_flight
                ));
            }
        }
    }

    let report = Report {
        smoke,
        keys: n,
        journal_rows: JOURNAL_ROWS,
        mixed_overhead,
        plain_wall_ns: plain_ns,
        journaled_wall_ns: journaled_ns,
        op_classes,
        recovery,
    };
    match write_json("BENCH_crash", &report) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_crash.json: {e}");
            std::process::exit(1);
        }
    }

    if failures.is_empty() {
        println!(
            "ACCEPT: lookups journal-free, mixed overhead <= 10%, \
             mutations <= 2 extra I/Os per op, recovery O(in-flight)"
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
