//! FAULT — chaos drill: every dictionary front-end under a canned
//! single-disk failure with integrity checksums sealed on.
//!
//! For each front this binary (1) builds the structure, seals checksums,
//! and measures the wall-clock overhead of verified reads against an
//! identical checksum-free twin (min-of-3 full lookup sweeps); (2) kills
//! one disk through the public [`FaultPlan`] API and counts how many
//! keys still decode *exactly*; (3) replaces the disk
//! (`clear_fault_plan`), runs the front's `scrub`, and recounts. Every
//! decoded satellite is compared against ground truth — a single byte of
//! silently wrong data fails the run.
//!
//! Writes `target/experiments/BENCH_fault.json` and exits nonzero if:
//! * any front decodes below its survival floor under the dead disk,
//! * recovery is not monotone (a key exact under the fault lost after
//!   scrub),
//! * the one-probe case (b) answers less than 100% exactly — under the
//!   fault *and* after scrub (Theorem 6's redundancy is an erasure
//!   code; see DESIGN.md),
//! * checksummed reads cost more than 10% over plain reads in
//!   aggregate.
//!
//! Run: `cargo run -p bench --release --bin chaos`
//! Smoke: `cargo run -p bench --release --bin chaos -- --smoke`

use bench::write_json;
use pdm::metrics::MetricsRegistry;
use pdm::{DiskArray, FaultPlan, PdmConfig, Word};
use pdm_dict::basic::{BasicDict, BasicDictConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::traits::{DICT_DEGRADED_LOOKUPS_TOTAL, DICT_SCRUB_TOTAL};
use pdm_dict::wide::{WideDict, WideDictConfig};
use pdm_dict::{Dict, DictHandle, DictParams, Dictionary, DynamicDict};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const KEY_SPACE: u64 = 1 << 20;
const UNIVERSE: u64 = 1 << 21;

/// `n` distinct deterministic keys below [`KEY_SPACE`].
fn dense_keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % KEY_SPACE)
        .collect()
}

fn sat(key: u64, sigma: usize) -> Vec<Word> {
    (0..sigma as u64).map(|i| key ^ (i << 32)).collect()
}

type BuildFn = fn(capacity: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict>;

struct Front {
    name: &'static str,
    sigma: usize,
    /// The canned plan: which disk dies.
    dead_disk: usize,
    /// Minimum fraction of keys that must still decode exactly while the
    /// disk is dead. Derived from how the front spreads a key: `basic`
    /// strands ~1/8 of keys (8 disks), `dynamic`/`rebuild` ~1/20 of
    /// membership buckets (40 disks), `one_probe_b` recovers everything
    /// through its parity chunk, `wide`/`one_probe_a` spread every key
    /// over enough disks that one loss can strand any of them (floor 0).
    floor_during: f64,
    /// Same floor after replacement + scrub (1.0 only where field-level
    /// redundancy makes the damage fully repairable).
    floor_after: f64,
    build: BuildFn,
}

fn preload(h: &mut dyn Dict, entries: &[(u64, Vec<Word>)]) {
    for (k, s) in entries {
        h.insert(*k, s).unwrap();
    }
}

fn build_basic(capacity: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let d = 8;
    let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
    let mut alloc = DiskAllocator::new(d);
    let cfg = BasicDictConfig::log_load(capacity.max(4), UNIVERSE, d, 1, seed);
    let dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
    let mut h = Box::new(DictHandle::new(dict, disks));
    preload(h.as_mut(), entries);
    h
}

fn build_dynamic(capacity: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let d = 20;
    let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
    let mut alloc = DiskAllocator::new(2 * d);
    let params = DictParams::new(capacity.max(4), UNIVERSE, 2)
        .with_degree(d)
        .with_epsilon(0.5)
        .with_seed(seed);
    let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
    let mut h = Box::new(DictHandle::new(dict, disks));
    preload(h.as_mut(), entries);
    h
}

fn build_one_probe(
    variant: OneProbeVariant,
    entries: &[(u64, Vec<Word>)],
    seed: u64,
) -> Box<dyn Dict> {
    let d = 13;
    let nd = match variant {
        OneProbeVariant::CaseA => 2 * d,
        OneProbeVariant::CaseB => d,
    };
    let mut disks = DiskArray::new(PdmConfig::new(nd, 64), 0);
    let mut alloc = DiskAllocator::new(nd);
    let params = DictParams::new(entries.len().max(4), UNIVERSE, 2)
        .with_degree(d)
        .with_seed(seed);
    let (dict, _) =
        OneProbeStatic::build(&mut disks, &mut alloc, 0, &params, variant, entries).unwrap();
    Box::new(DictHandle::new(dict, disks))
}

fn build_one_probe_b(_cap: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    build_one_probe(OneProbeVariant::CaseB, entries, seed)
}

fn build_one_probe_a(_cap: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    build_one_probe(OneProbeVariant::CaseA, entries, seed)
}

fn build_rebuild(_cap: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let params = DictParams::new(64, UNIVERSE, 1)
        .with_degree(20)
        .with_epsilon(0.5)
        .with_seed(seed);
    let mut h = Box::new(Dictionary::new(params, 64).unwrap());
    preload(h.as_mut(), entries);
    h
}

fn build_wide(capacity: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let d = 16;
    let mut disks = DiskArray::new(PdmConfig::new(d, 128), 0);
    let mut alloc = DiskAllocator::new(d);
    let cfg = WideDictConfig::paper(capacity.max(4), UNIVERSE, d, 2, seed);
    let dict = WideDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
    let mut h = Box::new(DictHandle::new(dict, disks));
    preload(h.as_mut(), entries);
    h
}

fn fronts() -> Vec<Front> {
    vec![
        Front {
            name: "basic",
            sigma: 1,
            dead_disk: 2,
            floor_during: 0.70,
            floor_after: 0.70,
            build: build_basic,
        },
        Front {
            name: "dynamic",
            sigma: 2,
            dead_disk: 3,
            floor_during: 0.85,
            floor_after: 0.85,
            build: build_dynamic,
        },
        Front {
            name: "wide",
            sigma: 16,
            dead_disk: 5,
            floor_during: 0.0,
            floor_after: 0.0,
            build: build_wide,
        },
        Front {
            name: "one_probe_a",
            sigma: 2,
            dead_disk: 4,
            floor_during: 0.0,
            floor_after: 0.0,
            build: build_one_probe_a,
        },
        Front {
            name: "one_probe_b",
            sigma: 2,
            dead_disk: 4,
            floor_during: 1.0,
            floor_after: 1.0,
            build: build_one_probe_b,
        },
        Front {
            name: "rebuild",
            sigma: 1,
            dead_disk: 3,
            floor_during: 0.80,
            floor_after: 0.80,
            build: build_rebuild,
        },
    ]
}

/// Min-of-`reps` wall-clock nanoseconds for a full lookup sweep.
fn sweep_ns(dict: &mut dyn Dict, keys: &[u64], reps: usize) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for &k in keys {
            black_box(dict.lookup(k).satellite);
        }
        best = best.min(start.elapsed().as_nanos());
    }
    best
}

#[derive(Serialize)]
struct Row {
    front: String,
    keys: usize,
    dead_disk: usize,
    exact_during: usize,
    exact_after: usize,
    exact_during_rate: f64,
    exact_after_rate: f64,
    floor_during: f64,
    floor_after: f64,
    degraded_lookups: u64,
    scrub_blocks_scanned: u64,
    scrub_checksum_failures: u64,
    scrub_repaired_blocks: u64,
    scrub_repaired_fields: u64,
    scrub_unrepairable_keys: u64,
    plain_sweep_ns: u128,
    integrity_sweep_ns: u128,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    keys_per_front: usize,
    checksum_read_overhead: f64,
    rows: Vec<Row>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 220 } else { 1024 };
    let reps = if smoke { 3 } else { 5 };
    let keys = dense_keys(n);

    println!(
        "{:<13} {:>5} {:>6} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "front", "keys", "dead", "exact@f", "exact@r", "repaired", "unrepair", "plain_ns", "chksum_ns"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for f in fronts() {
        let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, sat(k, f.sigma))).collect();

        // Checksum overhead: identical twins, fault-free, one sealed.
        let mut plain = (f.build)(n, &entries, 0xC0C5);
        let mut sealed = (f.build)(n, &entries, 0xC0C5);
        sealed.disks_mut().unwrap().enable_integrity();
        // Interleave so neither twin systematically enjoys a warmer cache.
        let mut plain_ns = u128::MAX;
        let mut sealed_ns = u128::MAX;
        for _ in 0..reps {
            plain_ns = plain_ns.min(sweep_ns(plain.as_mut(), &keys, 1));
            sealed_ns = sealed_ns.min(sweep_ns(sealed.as_mut(), &keys, 1));
        }
        drop(plain);

        // The drill proper, on the sealed twin, with metrics attached.
        let registry = Arc::new(MetricsRegistry::new());
        let mut dict = sealed;
        dict.set_metrics(Some(Arc::clone(&registry)));
        dict.disks_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::new().dead_disk(f.dead_disk));

        let mut exact_during = 0usize;
        for (k, s) in &entries {
            match dict.lookup(*k).satellite {
                Some(got) if &got == s => exact_during += 1,
                Some(got) => {
                    failures.push(format!("{}: wrong data for key {k}: {got:?}", f.name));
                }
                None => {}
            }
        }

        dict.disks_mut().unwrap().clear_fault_plan();
        let report = dict.scrub();

        let mut exact_after = 0usize;
        for (k, s) in &entries {
            match dict.lookup(*k).satellite {
                Some(got) if &got == s => exact_after += 1,
                Some(got) => {
                    failures.push(format!(
                        "{}: wrong data for key {k} after scrub: {got:?}",
                        f.name
                    ));
                }
                None => {}
            }
        }

        let snap = registry.snapshot();
        let row = Row {
            front: f.name.into(),
            keys: n,
            dead_disk: f.dead_disk,
            exact_during,
            exact_after,
            exact_during_rate: exact_during as f64 / n as f64,
            exact_after_rate: exact_after as f64 / n as f64,
            floor_during: f.floor_during,
            floor_after: f.floor_after,
            degraded_lookups: snap.counter_sum(DICT_DEGRADED_LOOKUPS_TOTAL, &[]).unwrap_or(0),
            scrub_blocks_scanned: snap
                .counter_sum(DICT_SCRUB_TOTAL, &[("stat", "blocks_scanned")])
                .unwrap_or(report.blocks_scanned),
            scrub_checksum_failures: report.checksum_failures,
            scrub_repaired_blocks: report.repaired_blocks,
            scrub_repaired_fields: report.repaired_fields,
            scrub_unrepairable_keys: report.unrepairable_keys,
            plain_sweep_ns: plain_ns,
            integrity_sweep_ns: sealed_ns,
        };
        println!(
            "{:<13} {:>5} {:>6} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10}",
            row.front,
            row.keys,
            row.dead_disk,
            format!("{:.1}%", 100.0 * row.exact_during_rate),
            format!("{:.1}%", 100.0 * row.exact_after_rate),
            row.scrub_repaired_fields,
            row.scrub_unrepairable_keys,
            row.plain_sweep_ns,
            row.integrity_sweep_ns
        );

        if row.exact_during_rate < f.floor_during {
            failures.push(format!(
                "{}: exact decode rate {:.3} under a dead disk is below the {:.3} floor",
                f.name, row.exact_during_rate, f.floor_during
            ));
        }
        if row.exact_after_rate < f.floor_after {
            failures.push(format!(
                "{}: exact decode rate {:.3} after scrub is below the {:.3} floor",
                f.name, row.exact_after_rate, f.floor_after
            ));
        }
        if exact_after < exact_during {
            failures.push(format!(
                "{}: non-monotone recovery ({exact_during} exact during, {exact_after} after)",
                f.name
            ));
        }
        rows.push(row);
    }

    // Aggregate checksum overhead across all fronts: one slow front in a
    // noisy CI run must not fail the 10% gate on its own.
    let plain_total: u128 = rows.iter().map(|r| r.plain_sweep_ns).sum();
    let sealed_total: u128 = rows.iter().map(|r| r.integrity_sweep_ns).sum();
    let overhead = sealed_total as f64 / plain_total.max(1) as f64 - 1.0;
    println!("\nchecksum read overhead: {:+.2}%", 100.0 * overhead);
    if overhead > 0.10 {
        failures.push(format!(
            "checksummed reads cost {:.1}% over plain reads (budget: 10%)",
            100.0 * overhead
        ));
    }

    let report = Report {
        smoke,
        keys_per_front: n,
        checksum_read_overhead: overhead,
        rows,
    };
    match write_json("BENCH_fault", &report) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_fault.json: {e}");
            std::process::exit(1);
        }
    }

    if failures.is_empty() {
        println!("ACCEPT: all fronts within floors, monotone recovery, overhead <= 10%");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
