//! OBS — workload replay through the observability layer.
//!
//! Drives all six dictionary front-ends through `&mut dyn Dict` with a
//! metrics registry installed, replays a mixed workload (inserts,
//! hit/miss lookups, deletes, batched lookups), and reports what the
//! *exported metrics* say: p50/p99/max parallel I/Os per op class, disk
//! imbalance (max/mean per-disk block counts), cache hit rate, and the
//! wall-clock overhead of recording itself (hooked vs. bare sequential
//! lookup throughput over the same structure).
//!
//! Writes `target/experiments/BENCH_obs.json`. Exits nonzero if the
//! exported OneProbeStatic p99 lookup cost exceeds 1 parallel I/O —
//! Theorem 6's headline, checked from telemetry so CI guards both the
//! structure and the instrumentation that watches it.
//!
//! `--smoke`: small sizes for CI.

use bench::write_json;
use pdm::metrics::{MetricsRegistry, CACHE_EVENTS_TOTAL, DISK_BLOCKS_TOTAL};
use pdm::{DiskArray, PdmConfig, Word};
use pdm_dict::basic::{BasicDict, BasicDictConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::traits::{DICT_BATCH_PARALLEL_IOS, DICT_OP_PARALLEL_IOS};
use pdm_dict::wide::{WideDict, WideDictConfig};
use pdm_dict::{
    Dict, DictHandle, DictParams, Dictionary, DynamicDict, ShardedDictionary,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const KEY_SPACE: u64 = 1 << 20;
const UNIVERSE: u64 = 1 << 21;

/// `n` distinct deterministic keys below [`KEY_SPACE`].
fn dense_keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % KEY_SPACE)
        .collect()
}

fn sat(key: u64, sigma: usize) -> Vec<Word> {
    (0..sigma as u64).map(|i| key ^ (i << 32)).collect()
}

/// Constructor: build a front containing exactly `entries`, sized for
/// `capacity`, deterministic in `seed`.
type BuildFn = fn(capacity: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict>;

struct Front {
    name: &'static str,
    sigma: usize,
    is_static: bool,
    build: BuildFn,
}

fn preload(h: &mut dyn Dict, entries: &[(u64, Vec<Word>)]) {
    for (k, s) in entries {
        h.insert(*k, s).unwrap();
    }
}

fn build_basic(capacity: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let d = 8;
    let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
    let mut alloc = DiskAllocator::new(d);
    let cfg = BasicDictConfig::log_load(capacity.max(4), UNIVERSE, d, 1, seed);
    let dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
    let mut h = Box::new(DictHandle::new(dict, disks));
    preload(h.as_mut(), entries);
    h
}

fn build_dynamic(capacity: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let d = 20;
    let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
    let mut alloc = DiskAllocator::new(2 * d);
    let params = DictParams::new(capacity.max(4), UNIVERSE, 2)
        .with_degree(d)
        .with_epsilon(0.5)
        .with_seed(seed);
    let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
    let mut h = Box::new(DictHandle::new(dict, disks));
    preload(h.as_mut(), entries);
    h
}

fn build_one_probe(_cap: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let d = 13;
    let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
    let mut alloc = DiskAllocator::new(d);
    let params = DictParams::new(entries.len().max(4), UNIVERSE, 2)
        .with_degree(d)
        .with_seed(seed);
    let (dict, _) = OneProbeStatic::build(
        &mut disks,
        &mut alloc,
        0,
        &params,
        OneProbeVariant::CaseB,
        entries,
    )
    .unwrap();
    Box::new(DictHandle::new(dict, disks))
}

fn build_rebuild(_cap: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let params = DictParams::new(64, UNIVERSE, 1)
        .with_degree(20)
        .with_epsilon(0.5)
        .with_seed(seed);
    let mut h = Box::new(Dictionary::new(params, 64).unwrap());
    preload(h.as_mut(), entries);
    h
}

fn build_sharded(_cap: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let params = DictParams::new(64, UNIVERSE, 1)
        .with_degree(16)
        .with_epsilon(1.0)
        .with_seed(seed);
    let mut h = Box::new(ShardedDictionary::new(4, params, 128).unwrap());
    preload(h.as_mut(), entries);
    h
}

fn build_wide(capacity: usize, entries: &[(u64, Vec<Word>)], seed: u64) -> Box<dyn Dict> {
    let d = 16;
    let mut disks = DiskArray::new(PdmConfig::new(d, 128), 0);
    let mut alloc = DiskAllocator::new(d);
    let cfg = WideDictConfig::paper(capacity.max(4), UNIVERSE, d, 2, seed);
    let dict = WideDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
    let mut h = Box::new(DictHandle::new(dict, disks));
    preload(h.as_mut(), entries);
    h
}

fn fronts() -> Vec<Front> {
    vec![
        Front { name: "basic", sigma: 1, is_static: false, build: build_basic },
        Front { name: "dynamic", sigma: 2, is_static: false, build: build_dynamic },
        Front { name: "one_probe", sigma: 2, is_static: true, build: build_one_probe },
        Front { name: "rebuild", sigma: 1, is_static: false, build: build_rebuild },
        Front { name: "sharded", sigma: 1, is_static: false, build: build_sharded },
        Front { name: "wide", sigma: 16, is_static: false, build: build_wide },
    ]
}

#[derive(Serialize, Clone, Copy)]
struct OpClass {
    count: u64,
    mean: f64,
    p50: u64,
    p99: u64,
    max: u64,
}

#[derive(Serialize)]
struct FrontReport {
    front: &'static str,
    keys: usize,
    lookup: Option<OpClass>,
    insert: Option<OpClass>,
    delete: Option<OpClass>,
    batch_lookup: Option<OpClass>,
    disk_imbalance_read: Option<f64>,
    disk_imbalance_write: Option<f64>,
    cache_hit_rate: Option<f64>,
    /// Wall-clock overhead of recording: (hooked − bare) / bare over the
    /// same sequential lookup loop. Negative values are timer noise.
    metrics_overhead_pct: f64,
}

#[derive(Serialize)]
struct Report {
    n: usize,
    smoke: bool,
    fronts: Vec<FrontReport>,
}

fn op_class(
    snap: &pdm::metrics::MetricsSnapshot,
    metric: &str,
    dict: &str,
    op: &str,
) -> Option<OpClass> {
    let h = snap.histogram(metric, &[("dict", dict), ("op", op)])?;
    if h.is_empty() {
        return None;
    }
    Some(OpClass {
        count: h.count,
        mean: h.mean(),
        p50: h.percentile(0.50),
        p99: h.percentile(0.99),
        max: h.max,
    })
}

/// Sequential lookups over `queries`, `passes` times; elapsed seconds.
fn time_lookups(dict: &mut dyn Dict, queries: &[u64], passes: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..passes {
        for &k in queries {
            std::hint::black_box(dict.lookup(k));
        }
    }
    start.elapsed().as_secs_f64()
}

/// Best-of-3 timing of `passes` lookup sweeps.
fn best_of_3(dict: &mut dyn Dict, queries: &[u64], passes: usize) -> f64 {
    (0..3)
        .map(|_| time_lookups(dict, queries, passes))
        .fold(f64::INFINITY, f64::min)
}

/// Grow the pass count until one bare sweep takes at least `min_secs`,
/// so the hooked-vs-bare comparison is out of timer-resolution noise.
fn calibrate_passes(dict: &mut dyn Dict, queries: &[u64], min_secs: f64) -> usize {
    let mut passes = 1;
    while time_lookups(dict, queries, passes) < min_secs && passes < 1 << 16 {
        passes *= 2;
    }
    passes
}

fn run_front(f: &Front, n: usize, min_secs: f64) -> FrontReport {
    let keys = dense_keys(n);
    let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, sat(k, f.sigma))).collect();
    let registry = Arc::new(MetricsRegistry::new());

    // Overhead measurement first, on a bare structure: warm up, time the
    // bare loop, install hooks, time the same loop again.
    let mut dict = if f.is_static {
        (f.build)(n, &entries, 0x0b5)
    } else {
        let mut d = (f.build)(n + n / 2, &[], 0x0b5);
        preload(d.as_mut(), &entries);
        d
    };
    let passes = calibrate_passes(dict.as_mut(), &keys, min_secs);
    let bare = best_of_3(dict.as_mut(), &keys, passes);
    dict.set_metrics(Some(Arc::clone(&registry)));
    let hooked = best_of_3(dict.as_mut(), &keys, passes);
    let overhead_pct = if bare > 0.0 { (hooked - bare) / bare * 100.0 } else { 0.0 };

    // Replay the rest of the mixed workload with hooks installed.
    let misses: Vec<u64> = (0..n as u64).map(|i| KEY_SPACE + 100_000 + i).collect();
    for &k in &misses {
        dict.lookup(k);
    }
    for chunk in keys.chunks(64) {
        dict.lookup_batch(chunk);
    }
    if !f.is_static {
        // Fresh inserts (the preload above ran unhooked), then deletes.
        let fresh: Vec<u64> = (0..(n / 4) as u64).map(|i| KEY_SPACE + 500_000 + i).collect();
        for &k in &fresh {
            dict.insert(k, &sat(k, f.sigma)).unwrap();
        }
        for &k in fresh.iter().take(n / 8) {
            dict.delete(k).unwrap();
        }
        // Batched inserts drive the write-staging executor (cache events,
        // round widths, commit sizes).
        let staged: Vec<(u64, Vec<Word>)> = (0..(n / 4) as u64)
            .map(|i| {
                let k = KEY_SPACE + 700_000 + i;
                (k, sat(k, f.sigma))
            })
            .collect();
        dict.insert_batch(&staged);
    }
    dict.refresh_gauges();

    let snap = registry.snapshot();
    let cache_hits = snap.counter(CACHE_EVENTS_TOTAL, &[("event", "hit")]);
    let cache_misses = snap.counter(CACHE_EVENTS_TOTAL, &[("event", "miss")]);
    let cache_hit_rate = match (cache_hits, cache_misses) {
        (Some(h), Some(m)) if h + m > 0 => Some(h as f64 / (h + m) as f64),
        _ => None,
    };
    FrontReport {
        front: f.name,
        keys: n,
        lookup: op_class(&snap, DICT_OP_PARALLEL_IOS, f.name, "lookup"),
        insert: op_class(&snap, DICT_OP_PARALLEL_IOS, f.name, "insert"),
        delete: op_class(&snap, DICT_OP_PARALLEL_IOS, f.name, "delete"),
        batch_lookup: op_class(&snap, DICT_BATCH_PARALLEL_IOS, f.name, "lookup"),
        disk_imbalance_read: snap.imbalance(DISK_BLOCKS_TOTAL, &[("op", "read")]),
        disk_imbalance_write: snap.imbalance(DISK_BLOCKS_TOTAL, &[("op", "write")]),
        cache_hit_rate,
        metrics_overhead_pct: overhead_pct,
    }
}

fn fmt_class(c: &Option<OpClass>) -> String {
    c.map_or("-".into(), |c| {
        format!("{:.2}/{}/{}", c.mean, c.p99, c.max)
    })
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-".into(), |x| format!("{x:.3}"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, min_secs) = if smoke { (300, 0.02) } else { (2000, 0.25) };

    println!("== OBS — workload replay through the observability layer ==");
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>16} {:>9} {:>9} {:>7} {:>9}",
        "front",
        "lkp mean/p99/max",
        "ins mean/p99/max",
        "del mean/p99/max",
        "blkp mean/p99/max",
        "imb(rd)",
        "imb(wr)",
        "cache",
        "ovh %"
    );

    let mut reports = Vec::new();
    for f in fronts() {
        let r = run_front(&f, n, min_secs);
        println!(
            "{:<10} {:>16} {:>16} {:>16} {:>16} {:>9} {:>9} {:>7} {:>9.2}",
            r.front,
            fmt_class(&r.lookup),
            fmt_class(&r.insert),
            fmt_class(&r.delete),
            fmt_class(&r.batch_lookup),
            fmt_opt(r.disk_imbalance_read),
            fmt_opt(r.disk_imbalance_write),
            fmt_opt(r.cache_hit_rate),
            r.metrics_overhead_pct,
        );
        reports.push(r);
    }

    let one_probe_p99 = reports
        .iter()
        .find(|r| r.front == "one_probe")
        .and_then(|r| r.lookup.as_ref().map(|c| c.p99))
        .unwrap_or(u64::MAX);

    let report = Report { n, smoke, fronts: reports };
    match write_json("BENCH_obs", &report) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_obs.json: {e}");
            std::process::exit(1);
        }
    }

    // Theorem 6 gate, read off the exported telemetry.
    if one_probe_p99 > 1 {
        eprintln!("FAIL: OneProbeStatic p99 lookup = {one_probe_p99} parallel I/Os (Theorem 6 says 1)");
        std::process::exit(1);
    }
    println!("one_probe p99 lookup = {one_probe_p99} parallel I/O (Theorem 6 holds)");
}
