//! BATCH — throughput of the batched lookup/update engine.
//!
//! The paper's bandwidth claim (Section 4.1 discussion) is that with `D`
//! disks and block size `B`, `m` *independent* operations can share
//! parallel I/O rounds: a batch costs the per-disk maximum of unique
//! blocks touched, approaching `⌈m·d/D⌉` — and less when keys share
//! candidate buckets. This binary measures exactly that: parallel I/Os
//! per lookup as a function of batch size, for the batched engine vs the
//! sequential loop, on three front-ends (basic, one-probe static,
//! dynamic).
//!
//! Run: `cargo run -p bench --release --bin batch_throughput`
//! Smoke: `cargo run -p bench --bin batch_throughput -- --smoke`

use bench::workloads::uniform_keys;
use bench::write_json;
use pdm::{DiskArray, PdmConfig};
use pdm_dict::basic::{BasicDict, BasicDictConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::{DictParams, DynamicDict};

#[derive(serde::Serialize)]
struct Row {
    structure: String,
    batch_size: usize,
    lookups: usize,
    seq_ios: u64,
    batch_ios: u64,
    seq_ios_per_lookup: f64,
    batch_ios_per_lookup: f64,
    speedup: f64,
}

fn print_row(r: &Row) {
    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>9} {:>10.3} {:>10.3} {:>8.2}x",
        r.structure,
        r.batch_size,
        r.lookups,
        r.seq_ios,
        r.batch_ios,
        r.seq_ios_per_lookup,
        r.batch_ios_per_lookup,
        r.speedup
    );
}

/// Measure one front-end: sequential vs batched lookups over the same
/// query stream, chunked at `batch_size`. The closure runs one chunk:
/// `run(true, &[k])` sequentially, `run(false, chunk)` batched.
fn measure<F>(structure: &str, queries: &[u64], batch_sizes: &[usize], mut run: F, rows: &mut Vec<Row>)
where
    F: FnMut(bool, &[u64]) -> u64,
{
    for &bs in batch_sizes {
        let mut seq_ios = 0u64;
        for k in queries {
            seq_ios += run(true, std::slice::from_ref(k));
        }
        let mut batch_ios = 0u64;
        for chunk in queries.chunks(bs) {
            batch_ios += run(false, chunk);
        }
        let row = Row {
            structure: structure.into(),
            batch_size: bs,
            lookups: queries.len(),
            seq_ios,
            batch_ios,
            seq_ios_per_lookup: seq_ios as f64 / queries.len() as f64,
            batch_ios_per_lookup: batch_ios as f64 / queries.len() as f64,
            speedup: seq_ios as f64 / batch_ios.max(1) as f64,
        };
        print_row(&row);
        rows.push(row);
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let d_disks = 16; // D: disks in the array (the acceptance config)
    let degree = 16; // d': probes per key; = D so the structure spans all disks
    let (n, lookups): (usize, usize) = if smoke { (256, 256) } else { (1024, 2048) };
    let batch_sizes: &[usize] = if smoke { &[1, 16, 64] } else { &[1, 4, 16, 64, 256] };

    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>9} {:>10} {:>10} {:>9}",
        "structure", "m", "lookups", "seq I/O", "batch I/O", "seq/lkp", "batch/lkp", "speedup"
    );
    let mut rows = Vec::new();

    // Basic dictionary (Section 4.1) in its block-load sizing: v = O(N/B)
    // single-block buckets, so a batch's probes concentrate on few unique
    // blocks per disk — the regime where batching pays the most.
    {
        let mut disks = DiskArray::new(PdmConfig::new(d_disks, 64), 0);
        let mut alloc = DiskAllocator::new(d_disks);
        let cfg = BasicDictConfig::block_load(n, 1 << 40, degree, 1, 64, 0xBA);
        let mut dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
        let keys = uniform_keys(n, 1 << 40, 0x41);
        for &k in &keys {
            dict.insert(&mut disks, k, &[k]).unwrap();
        }
        let queries: Vec<u64> = (0..lookups).map(|i| keys[i * 31 % keys.len()]).collect();
        measure(
            "basic",
            &queries,
            batch_sizes,
            |seq, ks| {
                if seq {
                    dict.lookup(&mut disks, ks[0]).cost.parallel_ios
                } else {
                    dict.lookup_batch(&mut disks, ks).1.parallel_ios
                }
            },
            &mut rows,
        );
    }

    // One-probe static (Theorem 6, case b).
    {
        let d = 13;
        let mut disks = DiskArray::new(PdmConfig::new(d_disks.max(d), 64), 0);
        let mut alloc = DiskAllocator::new(d_disks.max(d));
        let entries: Vec<(u64, Vec<u64>)> = uniform_keys(n, 1 << 30, 0x42)
            .into_iter()
            .map(|k| (k, vec![k]))
            .collect();
        let params = DictParams::new(n, 1 << 30, 1).with_degree(d).with_seed(7);
        let (dict, _) = OneProbeStatic::build(
            &mut disks,
            &mut alloc,
            0,
            &params,
            OneProbeVariant::CaseB,
            &entries,
        )
        .unwrap();
        let queries: Vec<u64> = (0..lookups)
            .map(|i| entries[i * 31 % entries.len()].0)
            .collect();
        measure(
            "one-probe(b)",
            &queries,
            batch_sizes,
            |seq, ks| {
                if seq {
                    dict.lookup(&mut disks, ks[0]).cost.parallel_ios
                } else {
                    dict.lookup_batch(&mut disks, ks).1.parallel_ios
                }
            },
            &mut rows,
        );
    }

    // Dynamic dictionary (Theorem 7): two-phase batched lookups.
    {
        let d = 20;
        let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
        let mut alloc = DiskAllocator::new(2 * d);
        let params = DictParams::new(n, 1 << 30, 1)
            .with_degree(d)
            .with_epsilon(0.5)
            .with_seed(0xD1);
        let mut dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
        let keys = uniform_keys(n, 1 << 30, 0x43);
        for &k in &keys {
            dict.insert(&mut disks, k, &[k]).unwrap();
        }
        let queries: Vec<u64> = (0..lookups).map(|i| keys[i * 31 % keys.len()]).collect();
        measure(
            "dynamic",
            &queries,
            batch_sizes,
            |seq, ks| {
                if seq {
                    dict.lookup(&mut disks, ks[0]).cost.parallel_ios
                } else {
                    dict.lookup_batch(&mut disks, ks).1.parallel_ios
                }
            },
            &mut rows,
        );
    }

    // The acceptance check the harness looks for: at batch size 64 on
    // D = 16 disks, the basic dictionary must spend at least 4x fewer
    // parallel I/Os per lookup than the sequential loop.
    let accept = rows
        .iter()
        .find(|r| r.structure == "basic" && r.batch_size == 64)
        .map(|r| r.speedup);
    match accept {
        Some(s) if s >= 4.0 => println!("\nACCEPT: basic @ m=64 speedup {s:.2}x >= 4x"),
        Some(s) => println!("\nFAIL: basic @ m=64 speedup {s:.2}x < 4x"),
        None => println!("\n(no m=64 row in this run)"),
    }

    if let Ok(p) = write_json("batch_throughput", &rows) {
        println!("wrote {}", p.display());
    }
}
