//! THM7 — Theorem 7: the dynamic dictionary with `1 + ɛ` average-I/O
//! lookups and `2 + ɛ` average-I/O updates.
//!
//! Sweeps the performance parameter ɛ; for each, inserts `n` keys and
//! reports average/worst insert and lookup costs, the exact 1-I/O cost of
//! unsuccessful searches, and the per-level population (which should decay
//! geometrically — the mechanism behind the averages).
//!
//! Run: `cargo run -p bench --release --bin thm7_dynamic`

use bench::measure::DynamicSubject;
use bench::workloads::{entries_for, miss_probes, uniform_keys};
use bench::write_json;
use bench::Subject;
use pdm::CostProfile;

#[derive(serde::Serialize)]
struct Row {
    epsilon: f64,
    degree: usize,
    n: usize,
    insert_avg: f64,
    insert_bound: f64,
    insert_worst: u64,
    levels: usize,
    lookup_avg: f64,
    lookup_bound: f64,
    lookup_worst: u64,
    miss_avg: f64,
    level_population: Vec<usize>,
}

fn main() {
    let n = 1 << 13;
    let sigma = 2;
    println!(
        "{:>6} {:>4} {:>8} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7} | {:>8}  levels",
        "ɛ", "d", "n", "ins avg", "≤ 2+ɛ", "ins wc", "lkp avg", "≤ 1+ɛ", "lkp wc", "miss avg"
    );
    let mut rows = Vec::new();
    // d > 6(1 + 1/ɛ) constrains the sweep: ɛ = 1 -> d ≥ 13; 0.5 -> 19;
    // 0.25 -> 31; 0.125 -> 55.
    for &(eps, d) in &[(1.0, 16), (0.5, 20), (0.25, 32), (0.125, 56)] {
        let keys = uniform_keys(n, 1 << 40, 0x707 + d as u64);
        let entries = entries_for(&keys, sigma);
        let mut subject = DynamicSubject::new(n, sigma, d, 128, eps, 0x707);
        let (_, insert_profile) = subject.build(&entries).expect("inserts succeed");
        let insert_profile = insert_profile.expect("incremental");

        let mut lookups = CostProfile::default();
        for (k, _) in &entries {
            let (found, cost) = subject.lookup(*k);
            assert!(found);
            lookups.record(cost);
        }
        let mut misses = CostProfile::default();
        for k in miss_probes(&keys, 1 << 40, 2000, 0x708) {
            let (found, cost) = subject.lookup(k);
            assert!(!found);
            misses.record(cost);
        }
        let row = Row {
            epsilon: eps,
            degree: d,
            n,
            insert_avg: insert_profile.average(),
            insert_bound: 2.0 + eps,
            insert_worst: insert_profile.worst_parallel_ios,
            levels: subject.level_population().len(),
            lookup_avg: lookups.average(),
            lookup_bound: 1.0 + eps,
            lookup_worst: lookups.worst_parallel_ios,
            miss_avg: misses.average(),
            level_population: subject.level_population(),
        };
        println!(
            "{:>6} {:>4} {:>8} | {:>8.4} {:>8.3} {:>7} | {:>8.4} {:>8.3} {:>7} | {:>8.3}  {:?}",
            row.epsilon,
            row.degree,
            row.n,
            row.insert_avg,
            row.insert_bound,
            row.insert_worst,
            row.lookup_avg,
            row.lookup_bound,
            row.lookup_worst,
            row.miss_avg,
            row.level_population
        );
        rows.push(row);
    }
    println!("\nTheorem 7 holds if: ins avg ≤ 2+ɛ, lkp avg ≤ 1+ɛ, miss avg = 1, worst ≤ levels+1.");
    if let Ok(p) = write_json("thm7_dynamic", &rows) {
        println!("wrote {}", p.display());
    }
}
