//! HASHFAM — cross-family ablation of the expander neighbor function.
//!
//! For every [`FamilyKind`] this measures (a) the full statistical
//! quality battery of `expander::verify::quality_report` across seeds —
//! Lemma 3 greedy max load vs. bound, sampled expansion, unique-neighbor
//! ratio, within-stripe chi-square, pairwise collision rate — and (b)
//! evaluation speed (ns per key for all `d` neighbors, and per edge) at
//! several degrees. The fastest family that passes every quality gate is
//! the one the library should default to; the run **fails (nonzero
//! exit)** if any family violates a quality gate or if the promoted
//! winner disagrees with `FamilyKind::default()`, making the verifier a
//! real CI check rather than a report.
//!
//! Run: `cargo run -p bench --release --bin hashfam` (`-- --smoke` for CI).

use bench::write_json;
use expander::mix::SplitMix64;
use expander::verify::quality_report;
use expander::{FamilyKind, NeighborFamily, NeighborFn};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::Instant;

const UNIVERSE: u64 = 1 << 32;

#[derive(serde::Serialize)]
struct QualityRow {
    family: String,
    seed: u64,
    degree: usize,
    stripe: usize,
    keys: usize,
    max_load: usize,
    lemma3_bound: f64,
    expansion_ratio: f64,
    unique_ratio: f64,
    chi_square: f64,
    chi_square_dof: usize,
    collision_rate: f64,
    collision_expected: f64,
    passes: bool,
    failures: Vec<String>,
}

#[derive(serde::Serialize)]
struct SpeedRow {
    family: String,
    degree: usize,
    ns_per_key: f64,
    ns_per_edge: f64,
}

#[derive(serde::Serialize)]
struct SpeedupRow {
    degree: usize,
    /// `ns_per_key(seeded) / ns_per_key(tabulation)` — the headline.
    tabulation_speedup_vs_seeded: f64,
}

#[derive(serde::Serialize)]
struct Report {
    smoke: bool,
    quality: Vec<QualityRow>,
    speed: Vec<SpeedRow>,
    speedups: Vec<SpeedupRow>,
    /// Fastest family (d = 16 evaluation) among those passing every gate.
    promoted: String,
    default_family: String,
}

/// `n` distinct keys below [`UNIVERSE`], deterministic in `seed`.
fn sample_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut set = BTreeSet::new();
    while set.len() < n {
        set.insert(rng.next_u64() % UNIVERSE);
    }
    set.into_iter().collect()
}

/// Median-of-rounds ns per all-`d`-neighbor evaluation of one key.
fn time_family(kind: FamilyKind, degree: usize, keys: &[u64], rounds: usize) -> f64 {
    let g = kind.build(UNIVERSE, 4096, degree, 0xBEEF);
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        let mut acc = 0usize;
        for &k in keys {
            for y in g.neighbors(k) {
                acc = acc.wrapping_add(y);
            }
        }
        black_box(acc);
        let ns = start.elapsed().as_nanos() as f64 / keys.len() as f64;
        best = best.min(ns);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: &[u64] = if smoke {
        &[0xA11CE, 0xB0B]
    } else {
        &[0xA11CE, 0xB0B, 0xC0FFEE, 0xD15EA5E]
    };
    let n = if smoke { 1024 } else { 4096 };
    let degree = 16;
    // Slack-8 sizing: the unique-neighbor gate (1 - 4ε) needs the
    // per-stripe load factor the paper's defaults give (see verify.rs).
    let stripe = 8 * n;

    println!(
        "{:>11} {:>10} {:>8} {:>9} {:>9} {:>9} {:>8} {:>6}",
        "family", "seed", "max load", "bound", "expand", "unique", "χ²", "gates"
    );
    let mut quality = Vec::new();
    let mut family_passes = Vec::new();
    for kind in FamilyKind::ALL {
        let mut all_pass = true;
        for &seed in seeds {
            let g = kind.build(UNIVERSE, stripe, degree, seed);
            let keys = sample_keys(n, seed ^ 0x5A5A);
            let r = quality_report(&g, kind.name(), seed, &keys, seed ^ 1);
            let failures = r.failures();
            let passes = failures.is_empty();
            all_pass &= passes;
            println!(
                "{:>11} {:>#10x} {:>8} {:>9.2} {:>9.4} {:>9.4} {:>8.1} {:>6}",
                r.family,
                seed,
                r.max_load,
                r.lemma3_bound,
                r.expansion_ratio,
                r.unique_ratio,
                r.chi_square,
                if passes { "ok" } else { "FAIL" }
            );
            for f in &failures {
                eprintln!("  gate violation [{} seed {seed:#x}]: {f}", r.family);
            }
            quality.push(QualityRow {
                family: r.family.clone(),
                seed,
                degree,
                stripe,
                keys: r.keys,
                max_load: r.max_load,
                lemma3_bound: r.lemma3_bound,
                expansion_ratio: r.expansion_ratio,
                unique_ratio: r.unique_ratio,
                chi_square: r.chi_square,
                chi_square_dof: r.chi_square_dof,
                collision_rate: r.collision_rate,
                collision_expected: r.collision_expected,
                passes,
                failures,
            });
        }
        family_passes.push((kind, all_pass));
    }

    let speed_keys = sample_keys(if smoke { 50_000 } else { 200_000 }, 0x5BEED);
    let rounds = if smoke { 3 } else { 5 };
    let mut speed = Vec::new();
    let mut speedups = Vec::new();
    println!("\n{:>11} {:>6} {:>12} {:>12}", "family", "d", "ns/key", "ns/edge");
    for &d in &[4usize, 8, 16] {
        let mut per_key = Vec::new();
        for kind in FamilyKind::ALL {
            let ns = time_family(kind, d, &speed_keys, rounds);
            println!("{:>11} {:>6} {:>12.1} {:>12.2}", kind.name(), d, ns, ns / d as f64);
            per_key.push((kind, ns));
            speed.push(SpeedRow {
                family: kind.name().to_string(),
                degree: d,
                ns_per_key: ns,
                ns_per_edge: ns / d as f64,
            });
        }
        let seeded = per_key.iter().find(|(k, _)| *k == FamilyKind::Seeded).unwrap().1;
        let tab = per_key
            .iter()
            .find(|(k, _)| *k == FamilyKind::Tabulation)
            .unwrap()
            .1;
        speedups.push(SpeedupRow {
            degree: d,
            tabulation_speedup_vs_seeded: seeded / tab,
        });
    }
    for s in &speedups {
        println!(
            "tabulation vs seeded at d = {:>2}: {:.2}x",
            s.degree, s.tabulation_speedup_vs_seeded
        );
    }

    // Promotion: fastest family at d = 16 among full gate passers.
    let promoted = speed
        .iter()
        .filter(|s| s.degree == 16)
        .filter(|s| {
            family_passes
                .iter()
                .any(|(k, ok)| *ok && k.name() == s.family)
        })
        .min_by(|a, b| a.ns_per_key.total_cmp(&b.ns_per_key))
        .map(|s| s.family.clone())
        .unwrap_or_default();
    let default_family = FamilyKind::default().name().to_string();
    println!("\npromoted (fastest passing all gates): {promoted}; library default: {default_family}");

    let report = Report {
        smoke,
        quality,
        speed,
        speedups,
        promoted: promoted.clone(),
        default_family: default_family.clone(),
    };
    if let Ok(p) = write_json("BENCH_hashfam", &report) {
        println!("wrote {}", p.display());
    }

    let gate_failures: Vec<&str> = family_passes
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(k, _)| k.name())
        .collect();
    if !gate_failures.is_empty() {
        eprintln!("quality gates FAILED for: {}", gate_failures.join(", "));
        std::process::exit(1);
    }
    if promoted != default_family {
        eprintln!(
            "default-family drift: fastest passing family is {promoted} but the default is \
             {default_family} — update FamilyKind::default()"
        );
        std::process::exit(2);
    }
}
