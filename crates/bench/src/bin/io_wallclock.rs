//! IO — wall-clock benefit of the parallel disk model on a *physical*
//! backend ([`pdm::FileBackend`]: one file + worker thread per disk,
//! `O_DIRECT` when the filesystem allows it).
//!
//! Everything else in this harness counts parallel I/O *rounds*; this
//! binary closes the loop and shows the rounds are real time. Two
//! experiments, both on the same D-disk file-backed array:
//!
//! 1. **Round issuance** — one round of `k·D` block reads issued to all
//!    `D` per-disk queues before any completion is joined, vs the same
//!    blocks issued disk-by-disk (join each disk before the next). The
//!    per-disk queues overlap the device waits; serial issuance cannot.
//!    Gate (direct-I/O mode): parallel ≥ 2× faster.
//! 2. **Batch round reduction** — `m` scattered single-block reads
//!    issued one call at a time (`m` rounds) vs one batched call
//!    (`⌈m/D⌉` rounds when the blocks spread evenly). The round counter
//!    says the batch is ~D× cheaper; the wall clock must agree that the
//!    saving is real throughput, not accounting. Gate (direct-I/O
//!    mode): batched ≥ 1.5× faster.
//!
//! If the experiment directory's filesystem rejects `O_DIRECT` (e.g.
//! tmpfs), the bench falls back to buffered files with fsync-on-write —
//! the overlap there is syncs rather than reads and is much weaker, so
//! the gates relax to ≥ 1.1× (still "parallel must beat serial").
//!
//! Run: `cargo run -p bench --release --bin io_wallclock`
//! Smoke: `cargo run -p bench --release --bin io_wallclock -- --smoke`
//! Writes `target/experiments/BENCH_io.json` either way.

use pdm::{BlockAddr, FileBackend, FileBackendOptions, StorageBackend, Word};
use std::path::PathBuf;
use std::time::Instant;

/// 16 KiB blocks: B = 2048 words of 8 bytes. Large enough that a block
/// read is device time rather than syscall time, and 4096-aligned as
/// `O_DIRECT` demands.
const B: usize = 2048;
const D: usize = 4;

#[derive(serde::Serialize)]
struct Report {
    mode: String,
    disks: usize,
    block_words: usize,
    block_bytes: usize,
    blocks_per_disk: usize,
    rounds: usize,
    blocks_per_disk_per_round: usize,
    parallel_round_ms: f64,
    serial_round_ms: f64,
    parallel_vs_serial: f64,
    parallel_gate: f64,
    batch_ops: usize,
    sequential_ms: f64,
    batched_ms: f64,
    batch_wallclock_speedup: f64,
    batch_round_reduction: f64,
    batch_gate: f64,
}

fn bench_dir() -> PathBuf {
    PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("experiments")
        .join("io_wallclock_disks")
}

/// A deterministic scatter of block indices (splitmix64) so neither
/// issuance order sees sequential device addresses.
fn scatter(count: usize, blocks: usize, mut seed: u64) -> Vec<usize> {
    (0..count)
        .map(|_| {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as usize % blocks
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let blocks_per_disk: usize = if smoke { 512 } else { 2048 };
    let rounds: usize = if smoke { 96 } else { 384 };
    let per_disk: usize = 4; // blocks per disk per round
    let batch_ops: usize = if smoke { 192 } else { 768 };

    let dir = bench_dir();
    let _ = std::fs::remove_dir_all(&dir);

    // Prefer O_DIRECT (device-true reads); fall back to buffered +
    // fsync-on-write where the filesystem refuses it.
    let (mut backend, mode) =
        match FileBackend::create(&dir, D, B, blocks_per_disk, FileBackendOptions::default().direct_io(true)) {
            Ok(b) => (b, "direct".to_string()),
            Err(e) => {
                eprintln!("O_DIRECT unavailable ({e}); falling back to buffered+fsync");
                let _ = std::fs::remove_dir_all(&dir);
                let b = FileBackend::create(
                    &dir,
                    D,
                    B,
                    blocks_per_disk,
                    FileBackendOptions::default().sync_on_write(true),
                )
                .expect("buffered file backend");
                (b, "buffered-fsync".to_string())
            }
        };
    let (parallel_gate, batch_gate) = if mode == "direct" { (2.0, 1.5) } else { (1.1, 1.1) };

    // Seed every block with nonzero data (and, in fallback mode, pay the
    // sync cost up front so the read timings below stay read-only).
    let payload: Vec<Word> = (0..B as u64).collect();
    for d in 0..D {
        for blk in 0..blocks_per_disk {
            backend.poke(BlockAddr::new(d, blk), &payload);
        }
    }
    backend.sync();

    // Experiment 1: one round = `per_disk` blocks on EVERY disk.
    // Parallel: one submission (all queues loaded before any join).
    // Serial: D submissions, each confined to one disk.
    let mut round_addrs: Vec<Vec<BlockAddr>> = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let picks = scatter(per_disk * D, blocks_per_disk, 0xA11C_E000 + r as u64);
        round_addrs.push(
            picks
                .iter()
                .enumerate()
                .map(|(i, &blk)| BlockAddr::new(i % D, blk))
                .collect(),
        );
    }

    // Warm the worker threads out of the measurement.
    let _ = backend.submit_reads(&round_addrs[0]);

    // Best of three trials each way (see the batch experiment below for
    // why): the gate compares two wall-clock passes on a shared host.
    let mut parallel_round_ms = f64::INFINITY;
    let mut serial_round_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for addrs in &round_addrs {
            let done = backend.submit_reads(addrs);
            assert_eq!(done.reads.len(), per_disk * D);
        }
        parallel_round_ms = parallel_round_ms.min(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        for addrs in &round_addrs {
            for d in 0..D {
                let one: Vec<BlockAddr> =
                    addrs.iter().filter(|a| a.disk == d).copied().collect();
                let done = backend.submit_reads(&one);
                assert_eq!(done.reads.len(), per_disk);
            }
        }
        serial_round_ms = serial_round_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let parallel_vs_serial = serial_round_ms / parallel_round_ms.max(1e-9);

    // Experiment 2: m scattered blocks, one call each (m rounds) vs one
    // batched call. The batch spreads over the queues, so its rounds —
    // and its wall clock — shrink by ~D.
    let picks = scatter(batch_ops, blocks_per_disk, 0xBA7C_4000);
    let addrs: Vec<BlockAddr> = picks
        .iter()
        .enumerate()
        .map(|(i, &blk)| BlockAddr::new(i % D, blk))
        .collect();

    // Best of three trials each: a single pass over a few hundred ops is
    // at the mercy of scheduler noise on a busy host, and the gate is a
    // ratio of two such passes.
    let mut sequential_ms = f64::INFINITY;
    let mut batched_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for a in &addrs {
            let done = backend.submit_reads(std::slice::from_ref(a));
            assert_eq!(done.reads.len(), 1);
        }
        sequential_ms = sequential_ms.min(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        let done = backend.submit_reads(&addrs);
        assert_eq!(done.reads.len(), batch_ops);
        batched_ms = batched_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let batch_wallclock_speedup = sequential_ms / batched_ms.max(1e-9);
    // Rounds: one per call sequentially; the batch is one submission
    // whose per-disk queues drain concurrently — per-disk max ≈ m/D.
    let per_disk_max = (0..D)
        .map(|d| addrs.iter().filter(|a| a.disk == d).count())
        .max()
        .unwrap_or(1);
    let batch_round_reduction = batch_ops as f64 / per_disk_max as f64;

    let report = Report {
        mode: mode.clone(),
        disks: D,
        block_words: B,
        block_bytes: B * 8,
        blocks_per_disk,
        rounds,
        blocks_per_disk_per_round: per_disk,
        parallel_round_ms,
        serial_round_ms,
        parallel_vs_serial,
        parallel_gate,
        batch_ops,
        sequential_ms,
        batched_ms,
        batch_wallclock_speedup,
        batch_round_reduction,
        batch_gate,
    };

    println!("mode: {mode}  (D = {D}, B = {B} words = {} KiB blocks)", B * 8 / 1024);
    println!(
        "round issuance   : parallel {parallel_round_ms:>9.2} ms   serial {serial_round_ms:>9.2} ms   speedup {parallel_vs_serial:.2}x (gate ≥ {parallel_gate:.1}x)"
    );
    println!(
        "batch reduction  : batched  {batched_ms:>9.2} ms   1-by-1 {sequential_ms:>9.2} ms   speedup {batch_wallclock_speedup:.2}x (gate ≥ {batch_gate:.1}x, rounds saved {batch_round_reduction:.1}x)"
    );

    let path = bench::write_json("BENCH_io", &report).expect("write BENCH_io.json");
    println!("wrote {}", path.display());

    drop(backend);
    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if parallel_vs_serial < parallel_gate {
        eprintln!(
            "GATE FAILED: parallel round issuance is only {parallel_vs_serial:.2}x serial (gate ≥ {parallel_gate:.1}x)"
        );
        failed = true;
    }
    if batch_wallclock_speedup < batch_gate {
        eprintln!(
            "GATE FAILED: batched reads save only {batch_wallclock_speedup:.2}x wall clock (gate ≥ {batch_gate:.1}x)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
