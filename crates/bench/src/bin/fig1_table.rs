//! FIG1 — regenerate Figure 1: old and new results for linear space
//! dictionaries with constant time per operation.
//!
//! Measured on the simulated PDM. Expected shape (paper's claims):
//! * one-probe structures and cuckoo: successful lookups = exactly 1 I/O;
//! * §4.1 basic: lookups 1 I/O, updates 2 I/Os, **worst case**;
//! * §4.3 dynamic: lookups ≤ 1+ɛ, updates ≤ 2+ɛ *on average*, misses 1;
//! * hashing + striping: 1 / 2 I/Os w.h.p.;
//! * dghp-style: O(1) average, visible worst-case tail;
//! * cuckoo: 1-I/O lookups, insert tail from eviction walks;
//! * B-tree: lookups = height ≈ log_{BD} n ≫ 1.
//!
//! Run: `cargo run -p bench --release --bin fig1_table`

use bench::measure::{
    BTreeSubject, BasicSubject, CuckooSubject, DghpSubject, DynamicSubject, FolkloreSubject,
    OneProbeSubject, StripedSubject, Subject, WideSubject,
};
use bench::workloads::{entries_for, miss_probes, uniform_keys};
use bench::{evaluate, print_table, write_json};
use pdm_dict::one_probe::OneProbeVariant;

fn main() {
    let sigma = 2;
    let block_words = 128;
    let mut all = Vec::new();
    for &n in &[1 << 12, 1 << 14] {
        let keys = uniform_keys(n, 1 << 40, 0xF161);
        let entries = entries_for(&keys, sigma);
        let misses = miss_probes(&keys, 1 << 40, 2000, 0xF162);
        let deletions = &keys[..n / 8];

        let mut subjects: Vec<Box<dyn Subject>> = vec![
            Box::new(BasicSubject::new(n, sigma, 20, block_words, 1)),
            Box::new(OneProbeSubject::new(
                n,
                sigma,
                13,
                block_words,
                OneProbeVariant::CaseA,
                2,
            )),
            Box::new(OneProbeSubject::new(
                n,
                sigma,
                13,
                block_words,
                OneProbeVariant::CaseB,
                3,
            )),
            Box::new(DynamicSubject::new(n, sigma, 20, block_words, 0.5, 4)),
            Box::new(StripedSubject::new(n, sigma, 16, block_words, 5)),
            Box::new(CuckooSubject::new(n, sigma, 16, block_words, 6)),
            Box::new(DghpSubject::new(n, sigma, 16, block_words, 7)),
            Box::new(FolkloreSubject::new(n, sigma, 16, block_words, 4, 8)),
            Box::new(BTreeSubject::new(sigma, 16, block_words)),
        ];
        let mut reports = Vec::new();
        for s in &mut subjects {
            match evaluate(s.as_mut(), &entries, &misses, deletions) {
                Ok(r) => reports.push(r),
                Err(e) => eprintln!("{}: FAILED: {e}", s.name()),
            }
        }
        // The wide-bandwidth §4.1 variant carries a k·chunk-word satellite
        // (O(BD/log n), like the striped-hashing row's bandwidth claim), so
        // it gets its own (same-key, wider-record) build.
        let mut wide = WideSubject::new(n, 2, 20, block_words, 9);
        let wide_entries = entries_for(&keys, wide.satellite_words());
        match evaluate(&mut wide, &wide_entries, &misses, deletions) {
            Ok(r) => reports.push(r),
            Err(e) => eprintln!("wide: FAILED: {e}"),
        }
        print_table(
            &format!("Figure 1 (n = {n}, σ = {sigma} words, B = {block_words})"),
            &reports,
        );
        all.push((n, reports));
    }
    if let Ok(p) = write_json("fig1_table", &all) {
        println!("\nwrote {}", p.display());
    }
}
