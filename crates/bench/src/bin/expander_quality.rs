//! SEC5 — the semi-explicit expander construction (Corollary 1,
//! Lemma 11, Theorem 12).
//!
//! Sweeps the memory exponent β and the universe/capacity ratio and
//! reports, per construction: stage count (Theorem 12: O(1)), composed
//! degree (polylog target), right-part size vs `N·d`, internal memory vs
//! the `O(N^β/ε^c)` budget, and the *measured* sampled expansion of the
//! composed graph vs the ε target. Also validates Lemma 10's error
//! composition on a direct two-factor telescope product.
//!
//! Run: `cargo run -p bench --release --bin expander_quality`

use bench::write_json;
use expander::semi_explicit::{SemiExplicitConfig, SemiExplicitExpander};
use expander::verify::worst_expansion_sampled;
use expander::{NeighborFn, SeededExpander, TelescopeExpander};

#[derive(serde::Serialize)]
struct Row {
    universe_log2: u32,
    capacity: usize,
    beta: f64,
    epsilon: f64,
    stages: usize,
    degree: usize,
    right_size: usize,
    nd: usize,
    memory_words: u64,
    memory_budget_words: u64,
    measured_worst_ratio: f64,
    target_ratio: f64,
}

fn main() {
    println!(
        "{:>5} {:>8} {:>5} {:>5} {:>3} {:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "log u", "N", "β", "ε", "k", "degree", "v", "N·d", "mem(w)", "budget", "measured", "target"
    );
    let mut rows = Vec::new();
    for &(log_u, cap) in &[(24u32, 1 << 9), (32, 1 << 10), (40, 1 << 10)] {
        for &beta in &[0.3, 0.5, 0.8] {
            let eps = 0.25;
            let cfg = SemiExplicitConfig {
                universe: 1 << log_u,
                capacity: cap,
                beta,
                epsilon: eps,
                seed: 0x5EC5,
                stage_degree_cap: 12,
            };
            let g = match SemiExplicitExpander::build(cfg) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("log u = {log_u}, β = {beta}: {e}");
                    continue;
                }
            };
            let r = g.report().clone();
            let pop: Vec<u64> = (0..(cap as u64 * 8))
                .map(|i| expander::mix::mix64(i) % (1 << log_u))
                .collect();
            let sizes = [cap / 16, cap / 4, cap].map(|s| s.max(1));
            let w = worst_expansion_sampled(&g, &pop, &sizes, 12, 3);
            let row = Row {
                universe_log2: log_u,
                capacity: cap,
                beta,
                epsilon: eps,
                stages: g.num_stages(),
                degree: r.degree,
                right_size: r.right_size,
                nd: cap * r.degree,
                memory_words: r.memory_words,
                memory_budget_words: r.memory_budget_words,
                measured_worst_ratio: w.ratio,
                target_ratio: 1.0 - eps,
            };
            println!(
                "{:>5} {:>8} {:>5} {:>5} {:>3} {:>6} {:>10} {:>10} {:>9} {:>9} {:>9.3} {:>7.3}",
                row.universe_log2,
                row.capacity,
                row.beta,
                row.epsilon,
                row.stages,
                row.degree,
                row.right_size,
                row.nd,
                row.memory_words,
                row.memory_budget_words,
                row.measured_worst_ratio,
                row.target_ratio
            );
            rows.push(row);
        }
    }

    // Lemma 10 spot-check: composed loss vs product bound, measured.
    println!("\n-- Lemma 10 (telescope product) error composition --");
    let g1 = SeededExpander::new(1 << 20, 2048, 6, 21);
    let g2 = SeededExpander::new(6 * 2048, 512, 4, 22);
    let pop1: Vec<u64> = (0..4096u64).collect();
    let e1 = 1.0 - worst_expansion_sampled(&g1, &pop1, &[8, 64], 20, 1).ratio;
    let pop2: Vec<u64> = (0..(6 * 2048u64)).collect();
    let e2 = 1.0 - worst_expansion_sampled(&g2, &pop2, &[8, 64], 20, 2).ratio;
    let t = TelescopeExpander::new(g1, g2);
    let et = 1.0 - worst_expansion_sampled(&t, &pop1, &[4, 16], 20, 3).ratio;
    let bound = 1.0 - (1.0 - e1) * (1.0 - e2);
    println!(
        "ε₁ = {e1:.4}, ε₂ = {e2:.4}, composed measured = {et:.4}, Lemma 10 bound = {bound:.4} \
         (degree {} -> {})",
        6 * 4,
        t.degree()
    );

    println!("\nSection 5 holds if: k = O(1), measured ≥ target (sampled), memory ≲ budget.");
    if let Ok(p) = write_json("expander_quality", &rows) {
        println!("wrote {}", p.display());
    }
}
