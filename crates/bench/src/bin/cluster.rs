//! Cluster-tier chaos bench: the PR-level robustness claims as
//! regenerable numbers.
//!
//! Drill: `k = 2` replication over 4 single-process nodes, writer
//! threads hammering the [`ClusterRouter`] while one node is killed
//! mid-traffic, then the epoch bump + journaled re-replication. The
//! report gates
//!
//! * **durability** — zero acked writes lost, audited in the degraded
//!   cluster and again after repair;
//! * **availability** — the fraction of writes acked while a quarter of
//!   the cluster was dying stays high (quorum writes keep serving);
//! * **bounded movement** — the epoch bump moves at most `1/N + slack`
//!   of replica slots (the cluster analogue of Lemma 3).
//!
//! Smoke: `cargo run -p bench --release --bin cluster -- --smoke`

use bench::write_json;
use expander::mix::mix64;
use pdm_cluster::{ClusterConfig, ClusterMap, ClusterNode, ClusterRouter, NodeConfig, RetryPolicy, RouterConfig};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const NODES: usize = 4;
const VICTIM: usize = 1;
const MOVEMENT_SLACK: f64 = 0.10;

#[derive(Serialize)]
struct Report {
    smoke: bool,
    nodes: usize,
    replication: usize,
    shards: u32,
    writes_attempted: u64,
    writes_acked: u64,
    /// Acked writes that failed their exact read-back in the degraded
    /// cluster (gated to zero).
    acked_lost_degraded: u64,
    /// Acked writes that failed their exact read-back after repair
    /// (gated to zero).
    acked_lost_after_repair: u64,
    /// Fraction of writes acked while the kill was in flight.
    write_availability: f64,
    /// Replica slots moved by the epoch bump over all replica slots.
    movement_fraction: f64,
    /// The gate: `1/N + slack`.
    movement_bound: f64,
    shards_re_replicated: usize,
    re_replication_failures: usize,
    transport_failures_absorbed: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (shards, keys_per_writer) = if smoke { (16u32, 200u64) } else { (32u32, 1500u64) };
    const WRITERS: u64 = 3;

    let cfg = ClusterConfig {
        shards,
        replication: 2,
        shard_capacity: if smoke { 512 } else { 1024 },
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let map = ClusterMap::build(cfg, &weights);
    let mut nodes: Vec<Option<ClusterNode>> = (0..NODES)
        .map(|n| {
            Some(
                ClusterNode::start("127.0.0.1:0", cfg, &map.shards_on(n), NodeConfig::default())
                    .expect("node start"),
            )
        })
        .collect();
    let addrs: Vec<_> = nodes.iter().map(|n| n.as_ref().unwrap().local_addr()).collect();
    let router = ClusterRouter::new(
        cfg,
        &addrs,
        &weights,
        RouterConfig {
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(20),
            },
            breaker_threshold: 2,
            // Short on purpose: durability must come from the sticky
            // suspect latch, not from keeping the breaker open.
            breaker_cooldown: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            request_deadline: Duration::from_secs(30),
            write_quorum: 1,
            read_cache: None,
        },
    );

    // Writers hammer the router; the victim dies mid-stream.
    let acked: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let attempted = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let router = &router;
            let acked = &acked;
            let attempted = &attempted;
            s.spawn(move || {
                for i in 0..keys_per_writer {
                    let key =
                        (mix64(0xC1A0_5EED ^ (t * keys_per_writer + i)) % (1 << 19)) | (t << 19);
                    attempted.fetch_add(1, Ordering::Relaxed);
                    if router.insert(key, &[mix64(key)]).is_ok() {
                        acked.lock().unwrap().push(key);
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(if smoke { 80 } else { 300 }));
        nodes[VICTIM].take().unwrap().kill();
    });
    let acked = acked.into_inner().unwrap();
    let attempted = attempted.into_inner();

    let audit = |label: &str| -> u64 {
        let mut lost = 0;
        for &key in &acked {
            match router.lookup(key) {
                Ok(Some(sat)) if sat == vec![mix64(key)] => {}
                other => {
                    eprintln!("{label}: acked key {key} answered {other:?}");
                    lost += 1;
                }
            }
        }
        lost
    };
    let acked_lost_degraded = audit("degraded");

    let report_down = router.fail_node(VICTIM).expect("fail_node");
    let movement_fraction = report_down
        .delta
        .movement_fraction(cfg.shards, cfg.replication);
    let acked_lost_after_repair = audit("post-repair");

    let report = Report {
        smoke,
        nodes: NODES,
        replication: cfg.replication,
        shards,
        writes_attempted: attempted,
        writes_acked: acked.len() as u64,
        acked_lost_degraded,
        acked_lost_after_repair,
        write_availability: acked.len() as f64 / attempted.max(1) as f64,
        movement_fraction,
        movement_bound: 1.0 / NODES as f64 + MOVEMENT_SLACK,
        shards_re_replicated: report_down.replicated.len(),
        re_replication_failures: report_down.failed.len(),
        transport_failures_absorbed: router.stats().transport_failures,
    };

    let mut failures: Vec<String> = Vec::new();
    if report.acked_lost_degraded > 0 {
        failures.push(format!(
            "{} acked writes unreadable in the degraded cluster",
            report.acked_lost_degraded
        ));
    }
    if report.acked_lost_after_repair > 0 {
        failures.push(format!(
            "{} acked writes unreadable after repair",
            report.acked_lost_after_repair
        ));
    }
    if report.movement_fraction > report.movement_bound {
        failures.push(format!(
            "epoch bump moved {:.3} of replica slots, bound {:.3}",
            report.movement_fraction, report.movement_bound
        ));
    }
    if report.re_replication_failures > 0 {
        failures.push(format!(
            "{} shards failed to re-replicate: {:?}",
            report.re_replication_failures, report_down.failed
        ));
    }
    if report.write_availability < 0.95 {
        failures.push(format!(
            "write availability {:.3} below 0.95 with a single node dying",
            report.write_availability
        ));
    }

    match write_json("BENCH_cluster", &report) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_cluster.json: {e}");
            std::process::exit(1);
        }
    }

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }

    if failures.is_empty() {
        println!(
            "ACCEPT: zero acked writes lost through a mid-traffic node kill, epoch bump moved \
             {:.3} ≤ {:.3} of replica slots, {} shards re-replicated",
            report.movement_fraction, report.movement_bound, report.shards_re_replicated
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
