//! SEC41 — Section 4.1 claims for the basic dictionary.
//!
//! * `B = Ω(log N)` regime: buckets fit one block, lookups exactly 1 I/O
//!   and updates exactly 2 I/Os, worst case;
//! * `v = O(N/B)` sizing: max bucket load stays below `B`'s slot count;
//! * small-`B` regime: the MicroDict (atomic-heap substitute) keeps
//!   operations O(1) I/Os where naive buckets would pay `log N / B`;
//! * observed max load vs the `Θ(log N)` target.
//!
//! Run: `cargo run -p bench --release --bin basic_dict`

use bench::workloads::uniform_keys;
use bench::write_json;
use pdm::{DiskArray, PdmConfig};
use pdm_dict::basic::{BasicDict, BasicDictConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::micro::MicroDict;

#[derive(serde::Serialize)]
struct Row {
    config: String,
    n: usize,
    buckets: usize,
    blocks_per_bucket: usize,
    avg_load: f64,
    max_load: usize,
    log2_n: u32,
    lookup_worst: u64,
    insert_worst: u64,
}

fn main() {
    let d = 16;
    let mut rows = Vec::new();
    println!(
        "{:<22} {:>8} {:>7} {:>4} {:>9} {:>8} {:>7} {:>7} {:>7}",
        "config", "n", "v", "b/bk", "avg load", "max load", "log2 n", "lkp wc", "ins wc"
    );
    for &n in &[1 << 12, 1 << 14, 1 << 16] {
        for (name, cfg, block_words) in [
            (
                "log-load, B=64",
                BasicDictConfig::log_load(n, 1 << 40, d, 1, 0xB5),
                64usize,
            ),
            (
                "block-load, B=64",
                BasicDictConfig::block_load(n, 1 << 40, d, 1, 64, 0xB6),
                64usize,
            ),
        ] {
            let mut disks = DiskArray::new(PdmConfig::new(d, block_words), 0);
            let mut alloc = DiskAllocator::new(d);
            let mut dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
            let keys = uniform_keys(n, 1 << 40, 0x41 + n as u64);
            let mut ins_worst = 0;
            for &k in &keys {
                ins_worst = ins_worst.max(
                    dict.insert(&mut disks, k, &[k])
                        .expect("no overflow")
                        .parallel_ios,
                );
            }
            let mut lkp_worst = 0;
            for &k in &keys[..1024.min(n)] {
                let out = dict.lookup(&mut disks, k);
                assert!(out.found());
                lkp_worst = lkp_worst.max(out.cost.parallel_ios);
            }
            let row = Row {
                config: name.into(),
                n,
                buckets: dict.buckets(),
                blocks_per_bucket: dict.blocks_per_bucket(),
                avg_load: n as f64 / dict.buckets() as f64,
                max_load: dict.max_load_peek(&disks),
                log2_n: usize::BITS - n.leading_zeros(),
                lookup_worst: lkp_worst,
                insert_worst: ins_worst,
            };
            println!(
                "{:<22} {:>8} {:>7} {:>4} {:>9.2} {:>8} {:>7} {:>7} {:>7}",
                row.config,
                row.n,
                row.buckets,
                row.blocks_per_bucket,
                row.avg_load,
                row.max_load,
                row.log2_n,
                row.lookup_worst,
                row.insert_worst
            );
            rows.push(row);
        }
    }

    // Small-B regime: B = 8 words, far below log2(n) slots.
    println!("\n-- small-B regime (B = 8 words): MicroDict (atomic-heap substitute) --");
    let mut disks = DiskArray::new(PdmConfig::new(2, 8), 0);
    let mut alloc = DiskAllocator::new(2);
    let mut micro = MicroDict::create(&mut disks, &mut alloc, 0, 4096, 1, 0xA7).unwrap();
    let keys = uniform_keys(micro.capacity(), 1 << 40, 0x41F);
    let mut ins_worst = 0;
    let mut ok = 0;
    for &k in &keys {
        if let Ok(c) = micro.insert(&mut disks, k, &[k]) {
            ins_worst = ins_worst.max(c.parallel_ios);
            ok += 1;
        }
    }
    let mut lkp_worst = 0;
    for &k in &keys[..1024] {
        lkp_worst = lkp_worst.max(micro.lookup(&mut disks, k).cost.parallel_ios);
    }
    println!(
        "inserted {ok}/{} keys; lookup worst = {lkp_worst} I/O, insert worst = {ins_worst} I/Os \
         (constant despite B ≪ log n)",
        keys.len()
    );

    println!("\nSection 4.1 holds if: 1-block configs have lkp wc = 1, ins wc = 2, and max load ≈ log2 n.");
    if let Ok(p) = write_json("basic_dict", &rows) {
        println!("wrote {}", p.display());
    }
}
