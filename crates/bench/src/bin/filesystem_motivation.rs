//! SEC12 — the Section 1.2 motivation: dictionary-backed file system vs
//! B-tree.
//!
//! Runs the same Zipf-weighted random-block-read trace through both and
//! reports average/worst I/Os per read. Expected shape: the dictionary
//! answers in 1–2 parallel I/Os regardless of data size; the B-tree pays
//! its height (the "3 disk accesses" of the introduction), a ~2–3×
//! slowdown on random reads.
//!
//! Run: `cargo run -p bench --release --bin filesystem_motivation`

use baselines::PdmBTree;
use bench::workloads::{fs_trace, satellite_for, FsOp};
use bench::write_json;
use pdm::CostProfile;
use pdm_dict::PdmFileSystem;

#[derive(serde::Serialize)]
struct Row {
    system: &'static str,
    files: u32,
    blocks_per_file: u32,
    reads: usize,
    read_avg: f64,
    read_worst: u64,
    write_avg: f64,
}

fn main() {
    let files = 256u32;
    let blocks_per_file = 16u32;
    let reads = 20_000usize;
    let payload = 8usize; // words per file block payload
    let trace = fs_trace(files, blocks_per_file, reads, 0xF5F5);

    // Dictionary-backed file system.
    let mut fs = PdmFileSystem::new((files * blocks_per_file) as usize, payload, 64, 0xF5)
        .expect("fs params valid");
    let mut fs_reads = CostProfile::default();
    let mut fs_writes = CostProfile::default();
    for op in &trace {
        match *op {
            FsOp::Write(f, b) => {
                let key = (u64::from(f) << 32) | u64::from(b);
                let c = fs.write_block(f, b, &satellite_for(key, payload)).unwrap();
                fs_writes.record(c);
            }
            FsOp::Read(f, b) => {
                let out = fs.read_block(f, b);
                assert!(out.found(), "file {f} block {b} missing");
                fs_reads.record(out.cost);
            }
        }
    }

    // B-tree file system: same key packing.
    let mut bt = PdmBTree::new(payload, 16, 64);
    let mut bt_reads = CostProfile::default();
    let mut bt_writes = CostProfile::default();
    for op in &trace {
        match *op {
            FsOp::Write(f, b) => {
                let key = (u64::from(f) << 32) | u64::from(b);
                let c = bt.insert(key, &satellite_for(key, payload)).unwrap();
                bt_writes.record(c);
            }
            FsOp::Read(f, b) => {
                let key = (u64::from(f) << 32) | u64::from(b);
                let (found, cost) = bt.lookup(key);
                assert!(found.is_some());
                bt_reads.record(cost);
            }
        }
    }

    let rows = vec![
        Row {
            system: "dictionary fs (this paper)",
            files,
            blocks_per_file,
            reads,
            read_avg: fs_reads.average(),
            read_worst: fs_reads.worst_parallel_ios,
            write_avg: fs_writes.average(),
        },
        Row {
            system: "B-tree fs (incumbent)",
            files,
            blocks_per_file,
            reads,
            read_avg: bt_reads.average(),
            read_worst: bt_reads.worst_parallel_ios,
            write_avg: bt_writes.average(),
        },
    ];
    println!(
        "{:<28} {:>9} {:>9} {:>9}",
        "system", "read avg", "read wc", "write avg"
    );
    for r in &rows {
        println!(
            "{:<28} {:>9.3} {:>9} {:>9.3}",
            r.system, r.read_avg, r.read_worst, r.write_avg
        );
    }
    println!(
        "\nB-tree height = {}; the dictionary answers random reads in ~1 I/O — the paper's \
         'one disk read instead of 3'.",
        bt.height()
    );
    if let Ok(p) = write_json("filesystem_motivation", &rows) {
        println!("wrote {}", p.display());
    }
}
