//! SERVE — the concurrent serving engine: coalescing gain, admission
//! control under overload, and the crash drill.
//!
//! Three experiments against two-shard engines:
//!
//! 1. **Coalescing vs one-op-per-lock.** 32 concurrent clients pipeline
//!    a skewed serving workload (a seeded Zipf(θ = 1.8) stream putting
//!    ~90% of requests on a 16-key hot set — the shape real request
//!    streams have) through the engine; per-shard
//!    workers coalesce queued requests into `lookup_batch` calls whose
//!    planner reads each *unique* block once per window and shares
//!    parallel rounds across keys, so every repeat of a hot key inside a
//!    window is free. The baseline replays the same stream one op at a
//!    time against twin dictionaries — one-op-per-lock serving, which
//!    pays a full parallel round for every request, hot or not. Both
//!    sides are counted in the deterministic PDM cost model, so the
//!    headline gate (≥ 3× fewer parallel rounds per op) is immune to CI
//!    timer noise.
//! 2. **Overload.** A fresh engine with a small admission bound is
//!    offered ~2× its queue capacity in flight. Excess submissions must
//!    be rejected with typed `Overloaded` backpressure (the bound makes
//!    queue growth structurally impossible), and the p99 latency of the
//!    *admitted* operations must stay within 2× of the uncontended p99
//!    (both floored at 1ms — see [`P99_FLOOR_US`]).
//! 3. **Crash drill.** A journaled shard is armed with a crash point
//!    (`FaultPlan::crash_after`: all later physical writes silently
//!    dropped); concurrent clients insert until the crash fires, the
//!    engine disconnects everything unacknowledged, and the image is
//!    reopened from disk alone. Gate: **zero acked-but-lost writes**.
//!    A graceful-shutdown twin checks the drained image recovers with
//!    nothing to replay.
//!
//! Writes `target/experiments/BENCH_serve.json`; exits nonzero on any
//! gate failure.
//!
//! Run: `cargo run -p bench --release --bin serve`
//! Smoke: `cargo run -p bench --release --bin serve -- --smoke`

use bench::workloads::ZipfStream;
use bench::write_json;
use expander::mix::mix64;
use pdm::{DiskArray, FaultPlan, PdmConfig, Word};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::{Dict, DictHandle, DictParams, DynamicDict};
use pdm_server::{DictClient, EngineConfig, Op, ServeEngine, ServeError};
use serde::Serialize;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const UNIVERSE: u64 = 1 << 21;
const SHARDS: usize = 2;
const ROUTE_SEED: u64 = 0x5EED_CAFE;
const CLIENTS: usize = 32;
const JOURNAL_ROWS: usize = 4;
/// Latency gates compare p99s floored at this value. The disk layer is
/// an in-RAM simulator, so absolute service times are microseconds and
/// the uncontended p99 is dominated by thread-wakeup jitter; comparing
/// sub-millisecond p99s measures the host scheduler, not the engine.
/// The gate exists to catch queueing collapse — an unbounded queue under
/// 2× overload pushes the tail to tens of milliseconds, far above this
/// floor — and the raw microsecond values are still reported.
const P99_FLOOR_US: u64 = 1_000;

fn params(capacity: usize, seed: u64, journal: bool) -> DictParams {
    let p = DictParams::new(capacity, UNIVERSE, 2)
        .with_degree(20)
        .with_epsilon(0.5)
        .with_seed(seed);
    if journal {
        p.with_journal(JOURNAL_ROWS)
    } else {
        p
    }
}

fn build_shard(capacity: usize, seed: u64, journal: bool) -> Box<dyn Dict + Send> {
    let mut disks = DiskArray::new(PdmConfig::new(40, 64), 0);
    let mut alloc = DiskAllocator::new(40);
    let dict =
        DynamicDict::create(&mut disks, &mut alloc, 0, params(capacity, seed, journal)).unwrap();
    Box::new(DictHandle::new(dict, disks))
}

/// The engine's key route, replicated for the baseline and preloads.
fn shard_of(key: u64) -> usize {
    (mix64(ROUTE_SEED ^ key) % SHARDS as u64) as usize
}

fn sat(key: u64) -> Vec<Word> {
    vec![key, key ^ (1 << 32)]
}

/// `n` distinct deterministic keys.
fn dense_keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % (1 << 20))
        .collect()
}

/// Exponent of the Zipf(θ) serving stream (the shared
/// [`ZipfStream`] generator): θ = 1.8 concentrates ~90% of requests on
/// a hot set of a few dozen keys over this corpus size — the shape the
/// old hand-rolled 90%/16-key sampler approximated.
const ZIPF_THETA: f64 = 1.8;

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

#[derive(Serialize)]
struct LatencyRow {
    ops: usize,
    throughput_ops_s: f64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn latency_row(mut samples_us: Vec<u64>, wall: Duration) -> LatencyRow {
    samples_us.sort_unstable();
    LatencyRow {
        ops: samples_us.len(),
        throughput_ops_s: samples_us.len() as f64 / wall.as_secs_f64(),
        p50_us: percentile(&samples_us, 0.50),
        p99_us: percentile(&samples_us, 0.99),
        max_us: percentile(&samples_us, 1.0),
    }
}

#[derive(Serialize)]
struct CoalescingReport {
    clients: usize,
    lookups: usize,
    zipf_theta: f64,
    /// Analytic fraction of draws in the 16 hottest keys.
    hot16_mass: f64,
    mean_batch: f64,
    rounds_per_op_coalesced: f64,
    rounds_per_op_single: f64,
    speedup: f64,
    /// Client-observed latency while pipelining 128 deep (queueing
    /// included) — not the uncontended service latency.
    pipelined_latency: LatencyRow,
}

#[derive(Serialize)]
struct OverloadReport {
    queue_bound: usize,
    offered_in_flight: usize,
    attempted: u64,
    admitted: u64,
    rejected: u64,
    reject_rate: f64,
    admitted_p99_us: u64,
    uncontended_p99_us: u64,
    p99_ratio_floored: f64,
}

#[derive(Serialize)]
struct CrashReport {
    crash_after_writes: u64,
    acked: usize,
    disconnected: usize,
    acked_lost: usize,
    in_doubt_present: usize,
    recovered_len: usize,
    graceful_replayable_intents: usize,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    shards: usize,
    coalescing: CoalescingReport,
    /// Sync (one-in-flight-per-client) latency on a lightly loaded
    /// engine — the denominator for the overload tail-latency gate.
    uncontended: LatencyRow,
    overload: OverloadReport,
    crash: CrashReport,
}

/// Experiment 1: 32 pipelining clients through the engine vs the same
/// lookups served one at a time.
fn coalescing(keys: &[u64], per_client: usize, failures: &mut Vec<String>) -> CoalescingReport {
    // Preload the shards directly (off the engine's books), then serve.
    let mut shards: Vec<Box<dyn Dict + Send>> =
        (0..SHARDS).map(|s| build_shard(keys.len() + 64, 0xA11CE + s as u64, false)).collect();
    for &k in keys {
        shards[shard_of(k)].insert(k, &sat(k)).unwrap();
    }
    let engine = ServeEngine::new(
        shards,
        EngineConfig::default()
            .with_route_seed(ROUTE_SEED)
            .with_queue_bound(8192)
            .with_max_coalesce(128)
            .with_deadline(Duration::from_secs(120)),
    );
    let client = engine.client();

    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..CLIENTS as u64 {
            let client = client.clone();
            let samples = &samples;
            let keys = &keys;
            s.spawn(move || {
                let mut local = Vec::with_capacity(per_client);
                let mut pending = Vec::with_capacity(128);
                let mut stream = ZipfStream::new(keys, ZIPF_THETA, 0xC0A1).with_draws(mix64(c));
                for i in 0..per_client {
                    let key = stream.next_key();
                    let at = Instant::now();
                    let p = client.submit(Op::Lookup(key)).unwrap();
                    pending.push((at, p, key));
                    // Pipeline in windows: keep the shard queues deep so
                    // workers drain full coalescing windows.
                    if pending.len() >= 128 || i + 1 == per_client {
                        for (at, p, key) in pending.drain(..) {
                            match p.wait() {
                                Ok(pdm_server::Reply::Lookup(Some(_))) => {
                                    local.push(at.elapsed().as_micros() as u64);
                                }
                                other => panic!("lookup({key}) answered {other:?}"),
                            }
                        }
                    }
                }
                samples.lock().unwrap().append(&mut local);
            });
        }
    });
    let wall = start.elapsed();
    let stats = engine.stats();
    drop(engine.shutdown());

    // Baseline: identical twin shards, the same skewed stream, one op at
    // a time — the per-op parallel cost one-op-per-lock serving pays.
    let mut twins: Vec<Box<dyn Dict + Send>> =
        (0..SHARDS).map(|s| build_shard(keys.len() + 64, 0xA11CE + s as u64, false)).collect();
    for &k in keys {
        twins[shard_of(k)].insert(k, &sat(k)).unwrap();
    }
    let mut single_ios = 0u64;
    let mut single_ops = 0u64;
    let mut stream = ZipfStream::new(keys, ZIPF_THETA, 0xC0A1).with_draws(0xBA5E);
    for _ in 0..stats.exec_ops.min(20_000) {
        let key = stream.next_key();
        let out = twins[shard_of(key)].lookup(key);
        assert!(out.satellite.is_some());
        single_ios += out.cost.parallel_ios;
        single_ops += 1;
    }

    let row = CoalescingReport {
        clients: CLIENTS,
        lookups: stats.exec_ops as usize,
        zipf_theta: ZIPF_THETA,
        hot16_mass: ZipfStream::new(keys, ZIPF_THETA, 0).head_mass(16),
        mean_batch: stats.mean_batch(),
        rounds_per_op_coalesced: stats.ios_per_op(),
        rounds_per_op_single: single_ios as f64 / single_ops as f64,
        speedup: (single_ios as f64 / single_ops as f64) / stats.ios_per_op().max(1e-9),
        pipelined_latency: latency_row(samples.into_inner().unwrap(), wall),
    };
    println!(
        "coalescing: {} lookups from {} clients (Zipf θ={:.1}, hot-16 mass {:.0}%) — \
         {:.1} ops per batched call, \
         {:.3} rounds/op vs {:.3} one-op-per-lock ({:.1}× fewer), {:.0} ops/s, \
         p50 {}µs p99 {}µs",
        row.lookups,
        row.clients,
        row.zipf_theta,
        100.0 * row.hot16_mass,
        row.mean_batch,
        row.rounds_per_op_coalesced,
        row.rounds_per_op_single,
        row.speedup,
        row.pipelined_latency.throughput_ops_s,
        row.pipelined_latency.p50_us,
        row.pipelined_latency.p99_us
    );
    if row.speedup < 3.0 {
        failures.push(format!(
            "coalesced serving saves only {:.2}× parallel rounds per op (gate: ≥ 3×)",
            row.speedup
        ));
    }
    row
}

/// True uncontended serving latency: a handful of sync clients, one op
/// in flight each, against a lightly loaded engine. This is the
/// denominator for the overload tail-latency gate.
fn uncontended(keys: &[u64]) -> LatencyRow {
    let mut shards: Vec<Box<dyn Dict + Send>> =
        (0..SHARDS).map(|s| build_shard(keys.len() + 64, 0xCA1+ s as u64, false)).collect();
    for &k in keys {
        shards[shard_of(k)].insert(k, &sat(k)).unwrap();
    }
    let engine = ServeEngine::new(
        shards,
        EngineConfig::default()
            .with_route_seed(ROUTE_SEED)
            .with_deadline(Duration::from_secs(120)),
    );
    let client = engine.client();

    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..4u64 {
            let client = client.clone();
            let samples = &samples;
            let keys = &keys;
            s.spawn(move || {
                let mut local = Vec::with_capacity(500);
                let mut stream = ZipfStream::new(keys, ZIPF_THETA, 0x57A7).with_draws(mix64(c));
                for _ in 0..500 {
                    let key = stream.next_key();
                    let at = Instant::now();
                    assert!(client.lookup(key).unwrap().is_some());
                    local.push(at.elapsed().as_micros() as u64);
                }
                samples.lock().unwrap().append(&mut local);
            });
        }
    });
    let wall = start.elapsed();
    drop(engine.shutdown());
    let row = latency_row(samples.into_inner().unwrap(), wall);
    println!(
        "uncontended: 4 sync clients — p50 {}µs p99 {}µs max {}µs",
        row.p50_us, row.p99_us, row.max_us
    );
    row
}

/// Experiment 2: typed backpressure at ~2× capacity, and tail latency of
/// what *is* admitted.
fn overload(
    keys: &[u64],
    uncontended_p99_us: u64,
    failures: &mut Vec<String>,
) -> OverloadReport {
    const BOUND: usize = 16;
    // Offered in-flight ≈ 2 × the engine's total queue capacity.
    let offered = 2 * BOUND * SHARDS;
    let drivers = 8;
    let window = offered / drivers;
    let attempts_per_driver = keys.len().max(512);

    let mut shards: Vec<Box<dyn Dict + Send>> =
        (0..SHARDS).map(|s| build_shard(keys.len() + 64, 0xF00D + s as u64, false)).collect();
    for &k in keys {
        shards[shard_of(k)].insert(k, &sat(k)).unwrap();
    }
    let engine = ServeEngine::new(
        shards,
        EngineConfig::default()
            .with_route_seed(ROUTE_SEED)
            .with_queue_bound(BOUND)
            .with_max_coalesce(BOUND)
            .with_deadline(Duration::from_secs(120)),
    );
    let client = engine.client();

    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let attempted = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..drivers as u64 {
            let client = client.clone();
            let (samples, attempted) = (&samples, &attempted);
            let keys = &keys;
            s.spawn(move || {
                let mut local = Vec::new();
                let mut pending = Vec::with_capacity(window);
                let mut state = mix64(0x0DD ^ c);
                for i in 0..attempts_per_driver {
                    state = mix64(state.wrapping_add(1));
                    let key = keys[(state as usize) % keys.len()];
                    attempted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let at = Instant::now();
                    match client.submit(Op::Lookup(key)) {
                        Ok(p) => pending.push((at, p)),
                        Err(ServeError::Overloaded { .. }) => {} // typed backpressure
                        Err(other) => panic!("submit: {other}"),
                    }
                    if pending.len() >= window || i + 1 == attempts_per_driver {
                        for (at, p) in pending.drain(..) {
                            p.wait().unwrap();
                            local.push(at.elapsed().as_micros() as u64);
                        }
                    }
                }
                samples.lock().unwrap().append(&mut local);
            });
        }
    });
    let stats = engine.stats();
    drop(engine.shutdown());

    let mut samples = samples.into_inner().unwrap();
    samples.sort_unstable();
    let admitted_p99 = percentile(&samples, 0.99);
    let ratio = admitted_p99.max(P99_FLOOR_US) as f64 / uncontended_p99_us.max(P99_FLOOR_US) as f64;
    let row = OverloadReport {
        queue_bound: BOUND,
        offered_in_flight: offered,
        attempted: attempted.into_inner(),
        admitted: stats.submitted,
        rejected: stats.rejected_overloaded,
        reject_rate: stats.rejected_overloaded as f64
            / (stats.submitted + stats.rejected_overloaded).max(1) as f64,
        admitted_p99_us: admitted_p99,
        uncontended_p99_us,
        p99_ratio_floored: ratio,
    };
    println!(
        "overload: offered {} in flight against bound {}×{} — {} admitted, {} rejected \
         ({:.1}% typed backpressure), admitted p99 {}µs vs uncontended {}µs ({:.2}× floored)",
        row.offered_in_flight,
        BOUND,
        SHARDS,
        row.admitted,
        row.rejected,
        100.0 * row.reject_rate,
        row.admitted_p99_us,
        row.uncontended_p99_us,
        row.p99_ratio_floored
    );
    if row.rejected == 0 {
        failures.push("2× overload produced zero Overloaded rejections".into());
    }
    if stats.rejected_timedout + stats.disconnected > 0 {
        failures.push(format!(
            "overload produced {} timeouts / {} disconnects — only Overloaded is acceptable",
            stats.rejected_timedout, stats.disconnected
        ));
    }
    if row.p99_ratio_floored > 2.0 {
        failures.push(format!(
            "admitted p99 under overload is {:.2}× the uncontended p99 (gate: ≤ 2×)",
            row.p99_ratio_floored
        ));
    }
    row
}

/// Experiment 3: crash drill + graceful-shutdown recovery.
fn crash_drill(inserts: usize, failures: &mut Vec<String>) -> CrashReport {
    let capacity = inserts + 64;
    let seed = 0xC4A5;
    // A journaled insert costs tens of physical writes; this budget lets
    // a few dozen inserts commit and ack, then kills the rest mid-load.
    let crash_at = 800 + (inserts as u64 % 211);

    let mut dict = build_shard(capacity, seed, true);
    dict.disks_mut()
        .unwrap()
        .set_fault_plan(FaultPlan::new().crash_after(crash_at));
    let engine = ServeEngine::new(
        vec![dict],
        EngineConfig::default()
            .with_route_seed(ROUTE_SEED)
            // Small windows: several insert batches commit (and ack)
            // before the crash point, so the durability claim is
            // exercised on a meaningful set of acked writes.
            .with_max_coalesce(8)
            .with_deadline(Duration::from_secs(120)),
    );
    let client: DictClient = engine.client();

    let acked: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let in_doubt: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let client = client.clone();
            let (acked, in_doubt) = (&acked, &in_doubt);
            let per_thread = inserts as u64 / 4;
            s.spawn(move || {
                for i in 0..per_thread {
                    let key = t * per_thread + i;
                    match client.insert(key, &sat(key)) {
                        Ok(()) => acked.lock().unwrap().push(key),
                        Err(ServeError::Disconnected) => in_doubt.lock().unwrap().push(key),
                        Err(other) => panic!("insert({key}): {other}"),
                    }
                }
            });
        }
    });
    let acked = acked.into_inner().unwrap();
    let in_doubt = in_doubt.into_inner().unwrap();
    if !engine.crash_observed() {
        failures.push("crash point never fired during the drill".into());
    }

    // Reboot from the image alone.
    let mut shards = engine.shutdown();
    let image = {
        let disks = shards[0].disks_mut().unwrap();
        disks.clear_fault_plan();
        disks.clone()
    };
    drop(shards);
    let mut recovered = reopen(capacity, seed, image);

    let mut acked_lost = 0;
    for &key in &acked {
        if recovered.lookup(key).satellite.as_deref() != Some(&sat(key)[..]) {
            acked_lost += 1;
        }
    }
    let in_doubt_present = in_doubt
        .iter()
        .filter(|&&key| recovered.lookup(key).satellite.is_some())
        .count();
    if acked_lost > 0 {
        failures.push(format!(
            "{acked_lost} ACKED writes lost after the crash drill (gate: zero)"
        ));
    }
    if recovered.len() != acked.len() + in_doubt_present {
        failures.push(format!(
            "recovered counters ({}) disagree with recovered contents ({})",
            recovered.len(),
            acked.len() + in_doubt_present
        ));
    }

    // Graceful twin: serve, shut down (drain + checkpoint), reopen —
    // recovery must find a truncated ring and every ack present.
    let dict = build_shard(capacity, seed ^ 1, true);
    let engine = ServeEngine::new(vec![dict], EngineConfig::default());
    let client = engine.client();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let client = client.clone();
            let per_thread = (inserts as u64 / 4).min(64);
            s.spawn(move || {
                for i in 0..per_thread {
                    let key = t * per_thread + i;
                    client.insert(key, &sat(key)).unwrap();
                }
            });
        }
    });
    let shards = engine.shutdown();
    let expect = shards[0].len();
    let image = shards[0].disks().unwrap().clone();
    drop(shards);
    let mut reopened = reopen(capacity, seed ^ 1, image);
    let report = reopened.recover();
    let graceful_replayable = report.replayed.len() + report.stalled as usize;
    if graceful_replayable > 0 {
        failures.push(format!(
            "graceful shutdown left {graceful_replayable} replayable journal intents"
        ));
    }
    if reopened.len() != expect {
        failures.push(format!(
            "graceful image lost records ({} vs {expect})",
            reopened.len()
        ));
    }

    let row = CrashReport {
        crash_after_writes: crash_at,
        acked: acked.len(),
        disconnected: in_doubt.len(),
        acked_lost,
        in_doubt_present,
        recovered_len: recovered.len(),
        graceful_replayable_intents: graceful_replayable,
    };
    println!(
        "crash drill: crash after {} writes — {} acked (all durable: {}), \
         {} disconnected ({} of them present after recovery), graceful twin replayed {}",
        row.crash_after_writes,
        row.acked,
        if row.acked_lost == 0 { "yes" } else { "NO" },
        row.disconnected,
        row.in_doubt_present,
        row.graceful_replayable_intents
    );
    row
}

/// Reopen a journaled shard from its (possibly crashed) disk image.
fn reopen(capacity: usize, seed: u64, mut disks: DiskArray) -> Box<dyn Dict + Send> {
    let mut alloc = DiskAllocator::new(disks.disks());
    let region = pdm::JournalRegion {
        first_block: 0,
        rows: JOURNAL_ROWS,
    };
    let (dict, _) =
        DynamicDict::reopen(&mut disks, &mut alloc, 0, params(capacity, seed, true), region)
            .unwrap();
    Box::new(DictHandle::new(dict, disks))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_keys, per_client) = if smoke { (1024, 256) } else { (4096, 1024) };
    let keys = dense_keys(n_keys);
    let mut failures: Vec<String> = Vec::new();

    let coalescing = coalescing(&keys, per_client, &mut failures);
    let uncontended = uncontended(&keys);
    let overload = overload(&keys, uncontended.p99_us, &mut failures);
    let crash = crash_drill(if smoke { 256 } else { 512 }, &mut failures);

    let report = Report {
        smoke,
        shards: SHARDS,
        coalescing,
        uncontended,
        overload,
        crash,
    };
    match write_json("BENCH_serve", &report) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_serve.json: {e}");
            std::process::exit(1);
        }
    }

    if failures.is_empty() {
        println!(
            "ACCEPT: coalescing ≥ 3× fewer rounds/op than one-op-per-lock, overload rejects \
             typed with bounded tail latency, zero acked-but-lost writes in the crash drill"
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
