//! CACHE — the hot-key cache tier above the dictionary.
//!
//! Three experiments:
//!
//! 1. **Hot Zipf serving.** A two-shard engine serves a seeded
//!    Zipf(θ = 2.2) lookup stream (~90% of requests on the 4 hottest
//!    keys) twice: once with the per-shard cache tier at a 256-block
//!    byte budget, once without. A first (unmeasured) pass warms the
//!    tier; the steady-state pass is then read out of the
//!    `serve_lookup_centi_ios` histogram — cache hits observe 0,
//!    executed lookups their window-amortized parallel-I/O cost × 100.
//!    Gate: **p99 < 0.3 parallel I/Os per lookup** with the cache on
//!    (Theorem 6 alone cannot go below 1 per *executed* lookup; only
//!    answering hot repeats from RAM can).
//! 2. **Negative caching.** A `CachedDict` over a one-probe dictionary
//!    is probed with absent keys. The clean one-probe miss is a
//!    certified absence (case (b): no identifier-tagged field carries
//!    the key), so repeats are answered from the negative cache. Gate:
//!    once warmed, repeat misses cost **0 parallel I/Os**.
//! 3. **Sketch overhead.** Admission listens to a TinyLFU frequency
//!    sketch that records every probe. Gate: one `record` costs ≤ 5%
//!    of a cache-off uniform lookup — the sketch must be effectively
//!    free next to real dictionary work.
//!
//! Writes `target/experiments/BENCH_cache.json`; exits nonzero on any
//! gate failure.
//!
//! Run: `cargo run -p bench --release --bin cache`
//! Smoke: `cargo run -p bench --release --bin cache -- --smoke`

use bench::workloads::ZipfStream;
use bench::write_json;
use expander::mix::mix64;
use pdm::metrics::{HistogramSnapshot, MetricsRegistry};
use pdm::{DiskArray, PdmConfig, Word};
use pdm_cache::{CacheConfig, CachedDict, FrequencySketch};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::{Dict, DictHandle, DictParams, DynamicDict};
use pdm_server::{EngineConfig, Op, ServeEngine, SERVE_LOOKUP_CENTI_IOS};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const UNIVERSE: u64 = 1 << 21;
const SHARDS: usize = 2;
const ROUTE_SEED: u64 = 0x5EED_CAFE;
const CLIENTS: usize = 32;
/// Exponent of the hot-key stream: Zipf(θ = 2.2) puts ~90% of draws on
/// the 4 hottest keys (and ~99% on the hottest ~64) — the "90%-hot"
/// shape of the headline gate, with a tail thin enough that steady-state
/// misses stay well under 1% of operations.
const ZIPF_THETA: f64 = 2.2;
/// Cache byte budget of the headline experiment, in dictionary blocks.
const BUDGET_BLOCKS: usize = 256;
/// Words per block of the disk geometry below.
const BLOCK_WORDS: usize = 64;
/// The p99 gate, in centi-I/Os per lookup (30 ⇔ 0.3 parallel I/Os).
const P99_GATE_CENTI_IOS: u64 = 30;
/// Seed of the Zipf rank order (which keys are hot). Shared by every
/// client and by the warmup and steady-state passes — only the draw
/// sequences differ.
const RANK_SEED: u64 = 0xD0_11AB;

fn build_shard(capacity: usize, seed: u64) -> Box<dyn Dict + Send> {
    let mut disks = DiskArray::new(PdmConfig::new(40, BLOCK_WORDS), 0);
    let mut alloc = DiskAllocator::new(40);
    let params = DictParams::new(capacity, UNIVERSE, 2)
        .with_degree(20)
        .with_epsilon(0.5)
        .with_seed(seed);
    let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
    Box::new(DictHandle::new(dict, disks))
}

fn shard_of(key: u64) -> usize {
    (mix64(ROUTE_SEED ^ key) % SHARDS as u64) as usize
}

fn sat(key: u64) -> Vec<Word> {
    vec![key, key ^ (1 << 32)]
}

fn dense_keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % (1 << 20))
        .collect()
}

/// Drive `per_client` Zipf lookups from each of [`CLIENTS`] clients
/// through `engine` on a **rolling** pipeline (a constant-depth window
/// per client, no burst barriers): only misses reach the shard queues,
/// so the queues stay deep enough for the rare executed lookups to
/// coalesce into shared parallel rounds — exactly how a saturated
/// server behaves.
fn drive(
    engine: &ServeEngine,
    keys: &[u64],
    per_client: usize,
    seed: u64,
) -> pdm_server::EngineStats {
    const DEPTH: usize = 128;
    let client = engine.client();
    std::thread::scope(|s| {
        for c in 0..CLIENTS as u64 {
            let client = client.clone();
            let keys = &keys;
            s.spawn(move || {
                // One shared rank order (which keys are hot), one draw
                // sequence per client and pass.
                let mut stream =
                    ZipfStream::new(keys, ZIPF_THETA, RANK_SEED).with_draws(mix64(seed ^ c));
                let mut pending = std::collections::VecDeque::with_capacity(DEPTH);
                let settle = |(key, p): (u64, pdm_server::Pending)| match p.wait() {
                    Ok(pdm_server::Reply::Lookup(Some(_))) => {}
                    other => panic!("lookup({key}) answered {other:?}"),
                };
                for _ in 0..per_client {
                    let key = stream.next_key();
                    pending.push_back((key, client.submit(Op::Lookup(key)).unwrap()));
                    if pending.len() >= DEPTH {
                        settle(pending.pop_front().unwrap());
                    }
                }
                for entry in pending {
                    settle(entry);
                }
            });
        }
    });
    engine.stats()
}

#[derive(Serialize)]
struct HotZipfReport {
    warm_lookups: u64,
    lookups: u64,
    zipf_theta: f64,
    budget_blocks: usize,
    cache_hits: u64,
    hit_rate: f64,
    evicted: u64,
    ios_per_op_cached: f64,
    ios_per_op_uncached: f64,
    io_savings: f64,
    p99_centi_ios: u64,
    p50_centi_ios: u64,
}

/// Experiment 1: the headline p99 curve — cache on vs off on the same
/// skewed stream.
///
/// Two passes drive the cached engine: the first warms the tier exactly
/// the way production traffic would (the admission sketch sees the hot
/// keys twice and promotes them), the second is the steady state the
/// gate is about. The p99 is read from the **histogram delta** between
/// the two snapshots, so warmup fills are priced into `warm_lookups`
/// but not into the steady-state percentile.
fn hot_zipf(keys: &[u64], per_client: usize, failures: &mut Vec<String>) -> HotZipfReport {
    let preload = |salt: u64| {
        let mut shards: Vec<Box<dyn Dict + Send>> = (0..SHARDS)
            .map(|s| build_shard(keys.len() + 64, salt + s as u64))
            .collect();
        for &k in keys {
            shards[shard_of(k)].insert(k, &sat(k)).unwrap();
        }
        shards
    };
    let engine_cfg = EngineConfig::default()
        .with_route_seed(ROUTE_SEED)
        .with_queue_bound(8192)
        .with_max_coalesce(128);

    // Cache ON, with the registry watching the per-op I/O histogram.
    let registry = Arc::new(MetricsRegistry::new());
    let engine = ServeEngine::with_metrics(
        preload(0xCA0),
        engine_cfg.with_cache(CacheConfig::default().with_budget_blocks(BUDGET_BLOCKS, BLOCK_WORDS)),
        Some(Arc::clone(&registry)),
    );
    drive(&engine, keys, per_client, 0xD01);
    let warm_stats = engine.stats();
    let warm_hist = registry
        .snapshot()
        .histogram(SERVE_LOOKUP_CENTI_IOS, &[])
        .cloned()
        .expect("lookup I/O histogram");

    // Steady state: a fresh stream seed (new draw order, same law).
    let total_stats = drive(&engine, keys, per_client, 0xD02);
    let counters = engine.cache_counters().expect("cache enabled");
    drop(engine.shutdown());
    let snap = registry.snapshot();
    let hist = snap
        .histogram(SERVE_LOOKUP_CENTI_IOS, &[])
        .expect("lookup I/O histogram");
    let steady = HistogramSnapshot {
        buckets: hist
            .buckets
            .iter()
            .zip(&warm_hist.buckets)
            .map(|(total, warm)| total - warm)
            .collect(),
        count: hist.count - warm_hist.count,
        sum: hist.sum - warm_hist.sum,
        max: hist.max,
    };
    let (p50, p99) = (steady.percentile(0.50), steady.percentile(0.99));
    let acked = total_stats.acked - warm_stats.acked;
    let hits = total_stats.cache_hits - warm_stats.cache_hits;
    let ios = total_stats.parallel_ios - warm_stats.parallel_ios;

    // Cache OFF twin on the steady-state stream.
    let engine = ServeEngine::new(preload(0xCA0), engine_cfg);
    let plain_stats = drive(&engine, keys, per_client, 0xD02);
    drop(engine.shutdown());

    let row = HotZipfReport {
        warm_lookups: warm_stats.acked,
        lookups: acked,
        zipf_theta: ZIPF_THETA,
        budget_blocks: BUDGET_BLOCKS,
        cache_hits: hits,
        hit_rate: hits as f64 / acked.max(1) as f64,
        evicted: counters.evicted,
        ios_per_op_cached: ios as f64 / acked.max(1) as f64,
        ios_per_op_uncached: plain_stats.ios_per_acked_op(),
        io_savings: plain_stats.ios_per_acked_op() * acked.max(1) as f64 / (ios.max(1) as f64),
        p99_centi_ios: p99,
        p50_centi_ios: p50,
    };
    println!(
        "hot zipf: {} steady-state lookups after {} warmup (θ={:.1}) at a \
         {}-block budget — {:.1}% cache hits ({} evictions), {:.4} I/Os per op \
         vs {:.4} uncached ({:.1}× fewer), per-op p50 {:.2} p99 {:.2} I/Os",
        row.lookups,
        row.warm_lookups,
        row.zipf_theta,
        row.budget_blocks,
        100.0 * row.hit_rate,
        row.evicted,
        row.ios_per_op_cached,
        row.ios_per_op_uncached,
        row.io_savings,
        row.p50_centi_ios as f64 / 100.0,
        row.p99_centi_ios as f64 / 100.0,
    );
    if row.p99_centi_ios >= P99_GATE_CENTI_IOS {
        failures.push(format!(
            "p99 lookup cost with the cache on is {:.2} parallel I/Os (gate: < {:.2})",
            row.p99_centi_ios as f64 / 100.0,
            P99_GATE_CENTI_IOS as f64 / 100.0
        ));
    }
    row
}

#[derive(Serialize)]
struct NegativeReport {
    absent_keys: usize,
    warm_ios: u64,
    repeat_ios: u64,
    negative_hits: u64,
}

/// Experiment 2: repeat misses for keys proven absent cost 0 I/Os.
fn negative(n_absent: usize, failures: &mut Vec<String>) -> NegativeReport {
    let mut dict = CachedDict::new(build_shard(512, 0xAB5E), CacheConfig::default());
    for key in 0..64u64 {
        dict.insert(key * 3, &sat(key * 3)).unwrap();
    }
    // Absent by construction: the resident keys are multiples of 3.
    let absent: Vec<u64> = (0..n_absent as u64).map(|i| i * 3 + 1).collect();

    // Warm: two probes per key feed the admission sketch, the second
    // fill sticks (promote on observed count, not first touch).
    let mut warm_ios = 0;
    for _ in 0..2 {
        for &key in &absent {
            let out = dict.lookup(key);
            assert!(out.satellite.is_none(), "key {key} must be absent");
            warm_ios += out.cost.parallel_ios;
        }
    }
    // Repeats: every one must be a negative hit at zero I/O cost.
    let mut repeat_ios = 0;
    for &key in &absent {
        let out = dict.lookup(key);
        assert!(out.satellite.is_none());
        repeat_ios += out.cost.parallel_ios;
    }
    let counters = dict.cache_counters();

    let row = NegativeReport {
        absent_keys: absent.len(),
        warm_ios,
        repeat_ios,
        negative_hits: counters.negative_hits,
    };
    println!(
        "negative: {} absent keys — {} I/Os to warm, {} I/Os for the repeat pass \
         ({} negative hits)",
        row.absent_keys, row.warm_ios, row.repeat_ios, row.negative_hits
    );
    if row.repeat_ios != 0 {
        failures.push(format!(
            "negatively cached misses cost {} parallel I/Os (gate: exactly 0)",
            row.repeat_ios
        ));
    }
    if row.negative_hits < row.absent_keys as u64 {
        failures.push(format!(
            "only {} of {} repeat misses were served by the negative cache",
            row.negative_hits, row.absent_keys
        ));
    }
    row
}

#[derive(Serialize)]
struct SketchReport {
    records: u64,
    ns_per_record: f64,
    ns_per_uncached_lookup: f64,
    overhead_pct: f64,
}

/// Experiment 3: sketch recording next to real dictionary work.
fn sketch_overhead(keys: &[u64], failures: &mut Vec<String>) -> SketchReport {
    // Cache-off uniform lookups: the denominator.
    let mut dict = build_shard(keys.len() + 64, 0x5EE7);
    for &k in keys {
        dict.insert(k, &sat(k)).unwrap();
    }
    let rounds = 8;
    let at = Instant::now();
    for _ in 0..rounds as u64 {
        for &k in keys {
            assert!(dict.lookup(k).satellite.is_some());
        }
    }
    let ns_lookup = at.elapsed().as_nanos() as f64 / (rounds * keys.len()) as f64;

    // Sketch records, same key mix.
    let mut sketch = FrequencySketch::new(8192, 0xBEEF);
    let records: u64 = 4_000_000;
    let mut state = 0xF00u64;
    let at = Instant::now();
    for _ in 0..records {
        state = mix64(state.wrapping_add(1));
        sketch.record(state);
    }
    let ns_record = at.elapsed().as_nanos() as f64 / records as f64;

    let row = SketchReport {
        records,
        ns_per_record: ns_record,
        ns_per_uncached_lookup: ns_lookup,
        overhead_pct: 100.0 * ns_record / ns_lookup,
    };
    println!(
        "sketch: {:.1} ns per record vs {:.0} ns per uncached uniform lookup \
         ({:.2}% recording overhead)",
        row.ns_per_record, row.ns_per_uncached_lookup, row.overhead_pct
    );
    if row.overhead_pct > 5.0 {
        failures.push(format!(
            "sketch recording costs {:.2}% of an uncached lookup (gate: ≤ 5%)",
            row.overhead_pct
        ));
    }
    row
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    hot_zipf: HotZipfReport,
    negative: NegativeReport,
    sketch: SketchReport,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_keys, per_client, n_absent) = if smoke {
        (2048, 512, 128)
    } else {
        (4096, 2048, 512)
    };
    let keys = dense_keys(n_keys);
    let mut failures: Vec<String> = Vec::new();

    let hot_zipf = hot_zipf(&keys, per_client, &mut failures);
    let negative = negative(n_absent, &mut failures);
    let sketch = sketch_overhead(&keys, &mut failures);

    let report = Report {
        smoke,
        hot_zipf,
        negative,
        sketch,
    };
    match write_json("BENCH_cache", &report) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_cache.json: {e}");
            std::process::exit(1);
        }
    }

    if failures.is_empty() {
        println!(
            "ACCEPT: p99 < 0.3 parallel I/Os per lookup under 90%-hot Zipf at a \
             256-block budget, negatively cached misses cost 0 I/Os, sketch \
             recording ≤ 5% of an uncached lookup"
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
