//! ABL3 — the Section 6 open problem, mapped: recursive `k = Ω(d)`
//! load balancing for full bandwidth.
//!
//! The paper: "apply the load balancing scheme with k = Ω(d), recursively,
//! for some constant number of levels before relying on a brute-force
//! approach. However, this makes the time for updates non-constant. It
//! would be interesting if this construction could be improved."
//!
//! This experiment sweeps the per-bucket capacity (space) against the
//! level population profile and the implied average update cost, at the
//! full-bandwidth setting `k = d/2`. The question the paper leaves open
//! is whether the level-2+ tail can be removed; the measurement shows how
//! fast it decays with space.
//!
//! Run: `cargo run -p bench --release --bin ablation_recursive`

use bench::workloads::uniform_keys;
use bench::write_json;
use loadbalance::RecursiveBalancer;

#[derive(serde::Serialize)]
struct Row {
    d: usize,
    k: usize,
    capacity: u32,
    space_slots_per_item: f64,
    level_population: Vec<usize>,
    overflow: usize,
    avg_update_cost: f64,
    max_load_l0: u32,
}

fn main() {
    let n = 1 << 14;
    let d = 16;
    let k = d / 2; // full-bandwidth target of §6
    let buckets = 4096;
    println!(
        "{:>3} {:>3} {:>4} {:>11} {:>10} {:>9} {:>8}  levels",
        "d", "k", "cap", "slots/item", "overflow", "upd cost", "max l0"
    );
    let mut rows = Vec::new();
    for &capacity in &[24u32, 32, 40, 48, 64, 96] {
        let mut b = RecursiveBalancer::new(1 << 40, buckets, d, k, capacity, 4, 0.25, 0xAB3);
        for x in uniform_keys(n, 1 << 40, 0xAB4) {
            b.insert(x);
        }
        let row = Row {
            d,
            k,
            capacity,
            space_slots_per_item: (buckets as f64 * f64::from(capacity)) / (n * k) as f64,
            level_population: b.level_population().to_vec(),
            overflow: b.overflow_len(),
            avg_update_cost: b.average_update_cost(),
            max_load_l0: b.max_load(0),
        };
        println!(
            "{:>3} {:>3} {:>4} {:>11.2} {:>10} {:>9.4} {:>8}  {:?}",
            row.d,
            row.k,
            row.capacity,
            row.space_slots_per_item,
            row.overflow,
            row.avg_update_cost,
            row.max_load_l0,
            row.level_population
        );
        rows.push(row);
    }
    println!(
        "\nShape: at k = d/2 the average update cost approaches the ideal 2.0 as per-bucket \
         capacity grows past ~1.5× the average load, and the deep-level tail decays \
         geometrically — quantifying how close the §6 idea already is, and that its cost is \
         space, not time, until capacity gets tight."
    );
    if let Ok(p) = write_json("ablation_recursive", &rows) {
        println!("wrote {}", p.display());
    }
}
