//! Network-chaos bench: the partition-tolerance claims as regenerable,
//! gated numbers, driven through the deterministic fault proxy
//! (`pdm_server::netfault`).
//!
//! Four phases, four gates:
//!
//! * **minority partition** — zero writes acknowledged below
//!   `write_quorum` while a replica sits behind the partition;
//! * **partition + heal** — zero acked writes lost across a
//!   partition-then-heal cycle, and the epoch fence refuses a
//!   stale-epoch client (the split-brain guard);
//! * **heartbeat detection** — the proactive failure detector latches a
//!   partitioned node within three probe intervals, with zero client
//!   transport failures;
//! * **deterministic replay** — the whole flaky-link drill
//!   (`NetFaultPlan::random(seed, ..)`) replays bit-identically: two
//!   fresh runs produce equal per-op outcomes, equal `RouterStats`, and
//!   byte-identical final shard images.
//!
//! Smoke: `cargo run -p bench --release --bin netchaos -- --smoke`

use bench::write_json;
use expander::mix::mix64;
use pdm_cluster::{
    ClusterConfig, ClusterMap, ClusterNode, ClusterRouter, HeartbeatConfig, Heartbeater,
    NodeConfig, RetryPolicy, RouterConfig, RouterStats,
};
use pdm_server::protocol::{WireRequest, WireResponse};
use pdm_server::{ChaosNet, NetFaultPlan, Op, ServeError, TcpClient};
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fixed bench seed: the replay gate is about two runs of the *same*
/// seed, not about seed rotation (the test suite rotates).
const SEED: u64 = 0x000C_4A05_EED0_0901;

#[derive(Serialize)]
struct Report {
    smoke: bool,
    seed: u64,
    // Minority partition.
    minority_writes_attempted: u64,
    /// Gate: writes acked while a routed replica sat behind the
    /// partition and quorum was unreachable. Must be zero.
    minority_writes_acked_below_quorum: u64,
    majority_writes_acked: u64,
    // Partition + heal.
    partition_acked_writes: u64,
    /// Gate: acked writes unreadable after heal + repair. Must be zero.
    acked_lost_after_heal: u64,
    /// Gate: a client routing under the pre-repair epoch is refused
    /// with `StaleEpoch`.
    stale_epoch_fenced: bool,
    // Heartbeat detection.
    heartbeat_interval_ms: u64,
    detection_latency_ms: u64,
    /// Gate: detection within three probe intervals.
    detection_bound_ms: u64,
    /// Gate: zero — detection is proactive, so no client request ever
    /// paid for the dark node.
    client_transport_failures_at_detection: u64,
    // Deterministic replay.
    replay_runs: u64,
    /// Gate: identical outcomes, stats, and images across the runs.
    replay_deterministic: bool,
    replay_transport_failures: u64,
    replay_writes_acked: u64,
}

fn start_cluster(cfg: ClusterConfig, weights: &[u32]) -> (Vec<ClusterNode>, Vec<SocketAddr>) {
    let map = ClusterMap::build(cfg, weights);
    let nodes: Vec<ClusterNode> = (0..weights.len())
        .map(|n| {
            ClusterNode::start("127.0.0.1:0", cfg, &map.shards_on(n), NodeConfig::default())
                .expect("node start")
        })
        .collect();
    let addrs = nodes.iter().map(ClusterNode::local_addr).collect();
    (nodes, addrs)
}

fn pull_image(addr: SocketAddr, shard: u32) -> Vec<u8> {
    let mut client = TcpClient::connect(addr).expect("connect for export");
    let mut image = Vec::new();
    let mut chunk = 0u32;
    loop {
        match client
            .request(&WireRequest::MigrateExport { shard, chunk })
            .expect("export request")
        {
            WireResponse::ExportChunk {
                total,
                chunk: got,
                bytes,
            } => {
                assert_eq!(got, chunk);
                image.extend_from_slice(&bytes);
                chunk += 1;
                if chunk == total {
                    return image;
                }
            }
            other => panic!("export answered {other:?}"),
        }
    }
}

/// Minority partition under `write_quorum = k`: count any ack for a
/// shard with a replica behind the partition (the gate), while
/// majority-side shards keep acking.
fn minority_phase(smoke: bool) -> (u64, u64, u64) {
    const NODES: usize = 4;
    const DARK: usize = 3;
    let per_class = if smoke { 24 } else { 60 };

    let cfg = ClusterConfig {
        shards: 16,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let chaos = ChaosNet::start(NetFaultPlan::new(), &addrs).expect("chaos start");
    let router = ClusterRouter::new(
        cfg,
        &chaos.addrs(),
        &weights,
        RouterConfig {
            retry: RetryPolicy::none(),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            request_deadline: Duration::from_millis(250),
            write_quorum: 2,
            read_cache: None,
        },
    );

    let map = router.map_snapshot();
    let majority: Vec<usize> = (0..NODES).filter(|&n| n != DARK).collect();
    let mut majority_keys = Vec::new();
    let mut minority_keys = Vec::new();
    for i in 0..8000u64 {
        let key = mix64(SEED ^ i) % (1 << 21);
        if map.replicas(cfg.shard_of(key)).contains(&DARK) {
            if minority_keys.len() < per_class {
                minority_keys.push(key);
            }
        } else if majority_keys.len() < per_class {
            majority_keys.push(key);
        }
        if majority_keys.len() == per_class && minority_keys.len() == per_class {
            break;
        }
    }

    chaos.partition(&[&majority, &[DARK]]);
    let mut majority_acked = 0u64;
    for &key in &majority_keys {
        if router.insert(key, &[mix64(key)]).is_ok() {
            majority_acked += 1;
        }
    }
    let mut below_quorum_acks = 0u64;
    for &key in &minority_keys {
        if router.insert(key, &[mix64(key)]).is_ok() {
            below_quorum_acks += 1;
        }
    }

    chaos.shutdown();
    for node in nodes {
        node.shutdown();
    }
    (
        (majority_keys.len() + minority_keys.len()) as u64,
        below_quorum_acks,
        majority_acked,
    )
}

/// Partition one node away, write through the hole, heal, repair, audit
/// every ack, and probe the epoch fence with a stale client.
fn heal_phase(smoke: bool) -> (u64, u64, bool) {
    const NODES: usize = 3;
    const DARK: usize = 2;
    let writes = if smoke { 150u64 } else { 400 };

    let cfg = ClusterConfig {
        shards: 8,
        replication: 2,
        shard_capacity: 1024,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let chaos = ChaosNet::start(NetFaultPlan::new(), &addrs).expect("chaos start");
    let router = ClusterRouter::new(
        cfg,
        &chaos.addrs(),
        &weights,
        RouterConfig {
            retry: RetryPolicy::none(),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            request_deadline: Duration::from_millis(250),
            write_quorum: 1,
            read_cache: None,
        },
    );

    let mut acked = Vec::new();
    for i in 0..writes {
        let key = mix64(SEED ^ 0x11 ^ i) % (1 << 21);
        if router.insert(key, &[mix64(key)]).is_ok() {
            acked.push(key);
        }
    }
    chaos.partition(&[&[0, 1], &[DARK]]);
    for i in writes..2 * writes {
        let key = mix64(SEED ^ 0x11 ^ i) % (1 << 21);
        if router.insert(key, &[mix64(key)]).is_ok() {
            acked.push(key);
        }
    }
    chaos.heal();
    let reports = router.repair().expect("repair");
    for r in &reports {
        assert!(r.failed.is_empty(), "repair failures: {:?}", r.failed);
    }

    let mut lost = 0u64;
    for &key in &acked {
        match router.lookup(key) {
            Ok(Some(sat)) if sat == vec![mix64(key)] => {}
            other => {
                eprintln!("post-heal: acked key {key} answered {other:?}");
                lost += 1;
            }
        }
    }

    // The split-brain guard: a client that slept through the repair's
    // epoch bump must be refused.
    let map = router.map_snapshot();
    let shard = map.shards_on(0)[0];
    let mut stale = TcpClient::connect(addrs[0]).expect("stale client");
    let fenced = matches!(
        stale.request(&WireRequest::ShardOp {
            shard,
            epoch: 0,
            op: Op::Lookup(0),
        }),
        Ok(WireResponse::Err(ServeError::StaleEpoch { .. }))
    );

    chaos.shutdown();
    for node in nodes {
        node.shutdown();
    }
    (acked.len() as u64, lost, fenced)
}

/// Cut a node off with no client traffic running; the heartbeater must
/// latch it within three probe intervals, leaving the router's
/// transport-failure counter untouched.
fn heartbeat_phase() -> (u64, u64, u64, u64) {
    const NODES: usize = 3;
    const DARK: usize = 2;
    const INTERVAL: Duration = Duration::from_millis(200);

    let cfg = ClusterConfig {
        shards: 8,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let chaos = ChaosNet::start(NetFaultPlan::new(), &addrs).expect("chaos start");
    let router = Arc::new(ClusterRouter::new(
        cfg,
        &chaos.addrs(),
        &weights,
        RouterConfig::default(),
    ));
    let heartbeater = Heartbeater::start(
        Arc::clone(&router),
        HeartbeatConfig {
            interval: INTERVAL,
            probe_timeout: Duration::from_millis(60),
            suspect_after: 2,
            auto_repair: false,
        },
    );

    std::thread::sleep(INTERVAL);
    chaos.partition(&[&[0, 1], &[DARK]]);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !router.node_suspect(DARK) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    heartbeater.stop();

    let stats = router.stats();
    let latency = if router.node_suspect(DARK) {
        stats.detection_latency_ms_max
    } else {
        u64::MAX // never detected: fails the gate loudly
    };
    chaos.shutdown();
    for node in nodes {
        node.shutdown();
    }
    (
        latency,
        3 * INTERVAL.as_millis() as u64,
        stats.transport_failures,
        INTERVAL.as_millis() as u64,
    )
}

struct ReplayRun {
    outcomes: Vec<String>,
    stats: RouterStats,
    images: Vec<(usize, u32, Vec<u8>)>,
}

/// One flaky-link run from the seeded plan: single-threaded traffic,
/// wall-clock-free breaker (zero cooldown), disarmed audit.
fn replay_run(keys: u64) -> ReplayRun {
    const NODES: usize = 3;

    let cfg = ClusterConfig {
        shards: 12,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let plan = NetFaultPlan::random(SEED, NODES, 8, 9);
    let chaos = ChaosNet::start(plan, &addrs).expect("chaos start");
    let router = ClusterRouter::new(
        cfg,
        &chaos.addrs(),
        &weights,
        RouterConfig {
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(1),
            },
            breaker_threshold: 2,
            breaker_cooldown: Duration::ZERO,
            connect_timeout: Duration::from_secs(1),
            request_deadline: Duration::from_millis(250),
            write_quorum: 2,
            read_cache: None,
        },
    );

    let mut outcomes = Vec::new();
    for i in 0..keys {
        let key = mix64(SEED ^ 0x22 ^ i) % (1 << 21);
        outcomes.push(format!("{:?}", router.insert(key, &[mix64(key)])));
        outcomes.push(format!("{:?}", router.lookup(key).map(|_| ())));
    }

    chaos.disarm();
    let map = router.map_snapshot();
    let images: Vec<(usize, u32, Vec<u8>)> = (0..NODES)
        .flat_map(|n| {
            map.shards_on(n)
                .into_iter()
                .map(move |s| (n, s))
                .collect::<Vec<_>>()
        })
        .map(|(n, s)| (n, s, pull_image(addrs[n], s)))
        .collect();

    let stats = router.stats();
    chaos.shutdown();
    for node in nodes {
        node.shutdown();
    }
    ReplayRun {
        outcomes,
        stats,
        images,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let (minority_attempted, below_quorum, majority_acked) = minority_phase(smoke);
    let (partition_acked, lost, fenced) = heal_phase(smoke);
    let (latency_ms, bound_ms, transport_failures, interval_ms) = heartbeat_phase();
    let replay_keys = if smoke { 40 } else { 80 };
    let first = replay_run(replay_keys);
    let second = replay_run(replay_keys);
    let deterministic = first.outcomes == second.outcomes
        && first.stats == second.stats
        && first.images == second.images;

    let report = Report {
        smoke,
        seed: SEED,
        minority_writes_attempted: minority_attempted,
        minority_writes_acked_below_quorum: below_quorum,
        majority_writes_acked: majority_acked,
        partition_acked_writes: partition_acked,
        acked_lost_after_heal: lost,
        stale_epoch_fenced: fenced,
        heartbeat_interval_ms: interval_ms,
        detection_latency_ms: latency_ms,
        detection_bound_ms: bound_ms,
        client_transport_failures_at_detection: transport_failures,
        replay_runs: 2,
        replay_deterministic: deterministic,
        replay_transport_failures: first.stats.transport_failures,
        replay_writes_acked: first.stats.writes_acked,
    };

    let mut failures: Vec<String> = Vec::new();
    if report.minority_writes_acked_below_quorum > 0 {
        failures.push(format!(
            "{} writes acked below write_quorum from a minority partition",
            report.minority_writes_acked_below_quorum
        ));
    }
    if report.majority_writes_acked == 0 {
        failures.push("no majority-side write acked during the partition".into());
    }
    if report.acked_lost_after_heal > 0 {
        failures.push(format!(
            "{} acked writes unreadable after partition + heal",
            report.acked_lost_after_heal
        ));
    }
    if !report.stale_epoch_fenced {
        failures.push("stale-epoch client was not fenced after the repair".into());
    }
    if report.detection_latency_ms > report.detection_bound_ms {
        failures.push(format!(
            "heartbeat detection took {} ms, bound is {} ms (three intervals)",
            report.detection_latency_ms, report.detection_bound_ms
        ));
    }
    if report.client_transport_failures_at_detection > 0 {
        failures.push(format!(
            "{} client transport failures before detection — it was not proactive",
            report.client_transport_failures_at_detection
        ));
    }
    if !report.replay_deterministic {
        failures.push("flaky-link drill did not replay deterministically from its seed".into());
    }

    match write_json("BENCH_netchaos", &report) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_netchaos.json: {e}");
            std::process::exit(1);
        }
    }

    if failures.is_empty() {
        println!(
            "ACCEPT: zero below-quorum acks in the minority partition, zero acked writes lost \
             across heal, stale epochs fenced, heartbeat detection in {} ms ≤ {} ms, and the \
             flaky-link drill replayed deterministically over {} runs",
            report.detection_latency_ms, report.detection_bound_ms, report.replay_runs
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
