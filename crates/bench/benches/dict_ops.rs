//! Wall-clock microbenchmarks of per-operation dictionary costs.
//!
//! The paper's cost model is parallel I/Os (measured by the experiment
//! binaries); these benches measure the *simulator* wall-clock per
//! operation for each structure, which tracks the number of blocks
//! touched and the CPU-side decoding work.

use bench::measure::{
    BTreeSubject, BasicSubject, CuckooSubject, DghpSubject, DynamicSubject, FolkloreSubject,
    OneProbeSubject, StripedSubject, Subject,
};
use bench::workloads::{entries_for, uniform_keys};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const N: usize = 4096;
const SIGMA: usize = 2;
const BLOCK: usize = 128;

fn subjects() -> Vec<Box<dyn Subject>> {
    vec![
        Box::new(BasicSubject::new(N, SIGMA, 20, BLOCK, 1)),
        Box::new(OneProbeSubject::new(
            N,
            SIGMA,
            13,
            BLOCK,
            pdm_dict::one_probe::OneProbeVariant::CaseA,
            2,
        )),
        Box::new(OneProbeSubject::new(
            N,
            SIGMA,
            13,
            BLOCK,
            pdm_dict::one_probe::OneProbeVariant::CaseB,
            3,
        )),
        Box::new(DynamicSubject::new(N, SIGMA, 20, BLOCK, 0.5, 4)),
        Box::new(StripedSubject::new(N, SIGMA, 16, BLOCK, 5)),
        Box::new(CuckooSubject::new(N, SIGMA, 16, BLOCK, 6)),
        Box::new(DghpSubject::new(N, SIGMA, 16, BLOCK, 7)),
        Box::new(FolkloreSubject::new(N, SIGMA, 16, BLOCK, 4, 8)),
        Box::new(BTreeSubject::new(SIGMA, 16, BLOCK)),
    ]
}

fn bench_lookups(c: &mut Criterion) {
    let keys = uniform_keys(N, 1 << 40, 0xBE);
    let entries = entries_for(&keys, SIGMA);
    let mut group = c.benchmark_group("lookup");
    for mut subject in subjects() {
        subject.build(&entries).expect("build");
        let name = subject.name();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let k = keys[i % keys.len()];
                i += 1;
                black_box(subject.lookup(black_box(k)))
            });
        });
    }
    group.finish();
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_4k_keys");
    group.sample_size(10);
    let keys = uniform_keys(N, 1 << 40, 0xBF);
    let entries = entries_for(&keys, SIGMA);
    // Incremental subjects only; construction cost of static ones is
    // covered by `bench_static_build`.
    group.bench_function("basic", |b| {
        b.iter(|| {
            let mut s = BasicSubject::new(N, SIGMA, 20, BLOCK, 1);
            black_box(s.build(&entries).unwrap())
        });
    });
    group.bench_function("dynamic", |b| {
        b.iter(|| {
            let mut s = DynamicSubject::new(N, SIGMA, 20, BLOCK, 0.5, 4);
            black_box(s.build(&entries).unwrap())
        });
    });
    group.bench_function("striped_hash", |b| {
        b.iter(|| {
            let mut s = StripedSubject::new(N, SIGMA, 16, BLOCK, 5);
            black_box(s.build(&entries).unwrap())
        });
    });
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut s = BTreeSubject::new(SIGMA, 16, BLOCK);
            black_box(s.build(&entries).unwrap())
        });
    });
    group.finish();
}

fn bench_static_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_probe_build");
    group.sample_size(10);
    let keys = uniform_keys(N, 1 << 40, 0xC0);
    let entries = entries_for(&keys, SIGMA);
    for (label, variant) in [
        ("case_a", pdm_dict::one_probe::OneProbeVariant::CaseA),
        ("case_b", pdm_dict::one_probe::OneProbeVariant::CaseB),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut s = OneProbeSubject::new(N, SIGMA, 13, BLOCK, variant, 2);
                black_box(s.build(&entries).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookups, bench_inserts, bench_static_build);
criterion_main!(benches);
