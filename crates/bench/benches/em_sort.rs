//! Wall-clock benchmarks of the external mergesort — the yardstick of
//! Theorem 6's construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm::{external_sort, DiskArray, KeyedRecord, PdmConfig, RecordFile, RecordLayout};
use std::hint::black_box;

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("external_sort");
    group.sample_size(10);
    for n in [1usize << 10, 1 << 13] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let cfg = PdmConfig::new(8, 64).with_mem_words(4096);
                let mut disks = DiskArray::new(cfg, 0);
                let mut f = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(1), n);
                let recs: Vec<KeyedRecord> = (0..n as u64)
                    .map(|i| KeyedRecord::new(i.wrapping_mul(0x9E37_79B9) % 1_000_003, vec![i]))
                    .collect();
                f.write_all(&mut disks, &recs);
                black_box(external_sort(&mut disks, &f).cost.parallel_ios)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
