//! Wall-clock benchmarks of neighbor-function evaluation: the seeded
//! expander (what the dictionaries call on every operation) vs the
//! telescoped semi-explicit construction (whose degree is the paper's
//! polylog price for explicitness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::semi_explicit::{SemiExplicitConfig, SemiExplicitExpander};
use expander::{NeighborFn, SeededExpander};
use std::hint::black_box;

fn bench_neighbors(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbors_eval");
    for d in [13usize, 21, 64] {
        let g = SeededExpander::new(1 << 40, 1 << 16, d, 5);
        group.bench_with_input(BenchmarkId::new("seeded", d), &d, |b, _| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(0x9E37_79B9);
                black_box(g.neighbors(black_box(x % (1 << 40))))
            });
        });
    }
    let semi = SemiExplicitExpander::build(SemiExplicitConfig {
        universe: 1 << 24,
        capacity: 1 << 9,
        beta: 0.5,
        epsilon: 0.25,
        seed: 3,
        stage_degree_cap: 12,
    })
    .expect("build");
    group.bench_function(BenchmarkId::new("semi_explicit", semi.degree()), |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(semi.neighbors(black_box(x % (1 << 24))))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_neighbors);
criterion_main!(benches);
