//! Wall-clock benchmarks of the Section 3 load balancing schemes.

use bench::workloads::uniform_keys;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::SeededExpander;
use loadbalance::baselines::{random_d_choice, single_choice};
use loadbalance::GreedyBalancer;
use std::hint::black_box;

fn bench_insert_throughput(c: &mut Criterion) {
    let universe = 1u64 << 40;
    let n = 1 << 14;
    let v = 1024;
    let keys = uniform_keys(n, universe, 0x1B);
    let mut group = c.benchmark_group("balance_16k_keys");
    group.sample_size(20);
    for d in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("greedy_expander", d), &d, |b, &d| {
            b.iter(|| {
                let g = SeededExpander::new(universe, v / d, d, 7);
                let mut lb = GreedyBalancer::new(&g, 1);
                for &x in &keys {
                    lb.insert(x);
                }
                black_box(lb.max_load())
            });
        });
    }
    group.bench_function("single_choice", |b| {
        b.iter(|| {
            let mut lb = single_choice(universe, v, 9);
            for &x in &keys {
                lb.insert(x);
            }
            black_box(lb.max_load())
        });
    });
    group.bench_function("random_two_choice", |b| {
        b.iter(|| {
            let mut lb = random_d_choice(universe, v, 2, 11);
            for &x in &keys {
                lb.insert(x);
            }
            black_box(lb.max_load())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_insert_throughput);
criterion_main!(benches);
