//! # `loadbalance` — deterministic d-choice load balancing (Section 3)
//!
//! The paper's first tool: place items on-line into buckets using a fixed
//! unbalanced bipartite expander instead of random hash choices. Each left
//! vertex (key) carries `k` items; the greedy strategy assigns the items
//! one by one, "putting each item in a bucket that currently has the
//! fewest items assigned, breaking ties arbitrarily". Lemma 3 bounds the
//! maximum load by
//!
//! ```text
//!   kn / ((1-δ)·v)  +  log_{(1-ε)d/k} v
//! ```
//!
//! — the deterministic analogue of the `O(log log n)` deviation of
//! randomized balanced allocations (Azar–Broder–Karlin–Upfal; the
//! heavily-loaded case by Berenbrink–Czumaj–Steger–Vöcking, both cited by
//! the paper as the `k = 1, d = 2` special case).
//!
//! [`GreedyBalancer`] implements the scheme over any
//! [`expander::NeighborFn`]; [`baselines`] supplies the single-choice and
//! random-`d`-choice comparators used by the LEM3 experiment; and
//! [`analysis`] summarizes load vectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baselines;
pub mod greedy;
pub mod recursive;
pub mod weighted;

pub use analysis::LoadStats;
pub use greedy::{GreedyBalancer, TieBreak};
pub use recursive::{Placement, RecursiveBalancer};
pub use weighted::{choose_replicas, place_all, rendezvous_rank, WeightedNode};

// The Lemma 3 bound calculators live next to the other parameter
// arithmetic; re-export them here so load-balancing callers have one stop.
pub use expander::params::{lemma3_bound, lemma3_bound_refined};
