//! The Section 6 open-problem scheme: recursive `k = Ω(d)` balancing.
//!
//! "It is plausible that full bandwidth can be achieved with lookup in
//! 1 I/O, while still supporting efficient updates. One idea that we have
//! considered is to apply the load balancing scheme with k = Ω(d),
//! recursively, for some constant number of levels before relying on a
//! brute-force approach. However, this makes the time for updates
//! non-constant."
//!
//! [`RecursiveBalancer`] realizes the idea so the ABL3 experiment can map
//! where it stands: each level is a greedy `k`-item placement with a hard
//! per-bucket *capacity*; a key whose `k` items cannot all fit under the
//! capacity at level `j` spills to level `j+1` (a fresh, geometrically
//! smaller expander); after the last level an overflow list catches the
//! rest (the "brute-force approach"). A key placed at level `j` costs
//! `j` probes to update and — because a reader must check all levels it
//! might be on — the *population profile* across levels is exactly the
//! update-cost distribution the paper worries about.

use expander::NeighborFn;
use expander::SeededExpander;

/// Outcome of one insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Placed at this level (0-based), in these buckets (level-local).
    Level(usize, Vec<usize>),
    /// Fell through every level into the brute-force overflow list.
    Overflow,
}

/// The recursive spilling balancer.
#[derive(Debug)]
pub struct RecursiveBalancer {
    levels: Vec<LevelState>,
    items_per_key: usize,
    capacity: u32,
    overflow: Vec<u64>,
    level_population: Vec<usize>,
}

#[derive(Debug)]
struct LevelState {
    graph: SeededExpander,
    loads: Vec<u32>,
}

impl RecursiveBalancer {
    /// `levels` levels over universe `u`; level 0 has `buckets` buckets
    /// (a multiple of `degree`), each subsequent level `shrink`× smaller;
    /// every bucket holds at most `capacity` items; each key places
    /// `items_per_key = k` items.
    ///
    /// # Panics
    /// Panics on degenerate parameters (`k = 0`, `k > d·capacity`,
    /// `buckets` not a positive multiple of `degree`).
    #[must_use]
    #[allow(clippy::too_many_arguments)] // a parameter-sweep constructor
    pub fn new(
        universe: u64,
        buckets: usize,
        degree: usize,
        items_per_key: usize,
        capacity: u32,
        levels: usize,
        shrink: f64,
        seed: u64,
    ) -> Self {
        assert!(items_per_key >= 1, "k must be positive");
        assert!(
            items_per_key as u64 <= degree as u64 * u64::from(capacity),
            "k items can never fit under the capacity"
        );
        assert!(
            buckets > 0 && buckets.is_multiple_of(degree),
            "buckets must be a positive multiple of d"
        );
        assert!(levels >= 1, "need at least one level");
        assert!(shrink > 0.0 && shrink < 1.0, "levels must shrink");
        let mut states = Vec::with_capacity(levels);
        let mut v = buckets;
        for i in 0..levels {
            let stripe = (v / degree).max(1);
            states.push(LevelState {
                graph: SeededExpander::new(universe, stripe, degree, seed.wrapping_add(i as u64)),
                loads: vec![0; stripe * degree],
            });
            v = (((v as f64) * shrink).ceil() as usize)
                .div_ceil(degree)
                .max(1)
                * degree;
        }
        RecursiveBalancer {
            levels: states,
            items_per_key,
            capacity,
            overflow: Vec::new(),
            level_population: vec![0; levels],
        }
    }

    /// Items each key places, `k`.
    #[must_use]
    pub fn items_per_key(&self) -> usize {
        self.items_per_key
    }

    /// Number of levels before the brute-force list.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Keys placed per level.
    #[must_use]
    pub fn level_population(&self) -> &[usize] {
        &self.level_population
    }

    /// Keys in the brute-force overflow list.
    #[must_use]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Maximum bucket load at a level.
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn max_load(&self, level: usize) -> u32 {
        self.levels[level].loads.iter().copied().max().unwrap_or(0)
    }

    /// Insert key `x`: first-fit over the levels. Returns where the key
    /// landed; the update cost in parallel I/Os is `level + 2` (one read
    /// per level probed, one write), or `levels + O(1)` for overflow.
    pub fn insert(&mut self, x: u64) -> Placement {
        for (level, st) in self.levels.iter_mut().enumerate() {
            let neighbors = st.graph.neighbors(x);
            // Feasibility: the k items fit under the capacity iff the
            // neighbors' residual capacities sum to ≥ k.
            let free: u64 = neighbors
                .iter()
                .map(|&y| u64::from(self.capacity.saturating_sub(st.loads[y])))
                .sum();
            if free < self.items_per_key as u64 {
                continue; // spill to the next level
            }
            // Greedy placement (Section 3 scheme) restricted to buckets
            // with residual capacity.
            let mut chosen = Vec::with_capacity(self.items_per_key);
            for _ in 0..self.items_per_key {
                let best = neighbors
                    .iter()
                    .copied()
                    .filter(|&y| st.loads[y] < self.capacity)
                    .min_by_key(|&y| (st.loads[y], y))
                    .expect("feasibility checked");
                st.loads[best] += 1;
                chosen.push(best);
            }
            self.level_population[level] += 1;
            return Placement::Level(level, chosen);
        }
        self.overflow.push(x);
        Placement::Overflow
    }

    /// The average update cost in parallel I/Os implied by the current
    /// population profile (`level + 2` per key, `levels + 2` for
    /// overflow) — the §6 "non-constant" quantity.
    #[must_use]
    pub fn average_update_cost(&self) -> f64 {
        let placed: usize = self.level_population.iter().sum();
        let total = placed + self.overflow.len();
        if total == 0 {
            return 0.0;
        }
        let mut cost = 0.0;
        for (level, &count) in self.level_population.iter().enumerate() {
            cost += (level as f64 + 2.0) * count as f64;
        }
        cost += (self.levels.len() as f64 + 2.0) * self.overflow.len() as f64;
        cost / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balancer(n_buckets: usize, k: usize, cap: u32) -> RecursiveBalancer {
        RecursiveBalancer::new(1 << 30, n_buckets, 16, k, cap, 4, 0.25, 0x6A)
    }

    #[test]
    fn generous_capacity_keeps_everything_on_level_one() {
        let mut b = balancer(1024, 8, 64);
        for x in 0..1000u64 {
            let p = b.insert(x * 37);
            assert!(
                matches!(p, Placement::Level(0, _)),
                "key {x} spilled: {p:?}"
            );
        }
        assert_eq!(b.level_population()[0], 1000);
        assert_eq!(b.overflow_len(), 0);
        assert!((b.average_update_cost() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn placements_respect_capacity() {
        let mut b = balancer(64, 8, 4);
        for x in 0..200u64 {
            b.insert(x);
        }
        for level in 0..b.num_levels() {
            assert!(b.max_load(level) <= 4, "level {level} exceeded capacity");
        }
    }

    #[test]
    fn starved_levels_spill_geometrically() {
        // 64 buckets × cap 4 = 256 item slots at level 0; 8 items/key
        // means ~32 keys saturate it, the rest cascade.
        let mut b = balancer(64, 8, 4);
        for x in 0..200u64 {
            b.insert(x * 101);
        }
        let pop = b.level_population();
        assert!(pop[0] > 0);
        assert!(
            pop[1] < pop[0] || b.overflow_len() > 0,
            "expected decay or overflow: {pop:?} + {} overflow",
            b.overflow_len()
        );
        // Every key is accounted for.
        let placed: usize = pop.iter().sum();
        assert_eq!(placed + b.overflow_len(), 200);
        assert!(b.average_update_cost() > 2.0, "spilling must cost extra");
    }

    #[test]
    fn chosen_buckets_are_neighbors() {
        let mut b = balancer(256, 5, 8);
        for x in [3u64, 99, 4096] {
            if let Placement::Level(level, chosen) = b.insert(x) {
                let st_graph = SeededExpander::new(1 << 30, 256 / 16, 16, 0x6A + level as u64);
                let neighbors = st_graph.neighbors(x);
                for y in chosen {
                    assert!(neighbors.contains(&y), "bucket {y} not a neighbor");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "never fit")]
    fn impossible_k_rejected() {
        let _ = RecursiveBalancer::new(1 << 20, 64, 4, 64, 2, 2, 0.5, 0);
    }

    #[test]
    fn full_bandwidth_k_half_d_works_at_modest_load() {
        // The §6 target regime: k = d/2 (half-stripe bandwidth per key).
        let d = 16;
        let mut b = RecursiveBalancer::new(1 << 30, 2048, d, d / 2, 8, 3, 0.25, 7);
        for x in 0..1500u64 {
            b.insert(x * 3 + 1);
        }
        let frac_l0 = b.level_population()[0] as f64 / 1500.0;
        assert!(frac_l0 > 0.95, "level-0 fraction {frac_l0}");
        assert!(b.average_update_cost() < 2.2);
    }
}
