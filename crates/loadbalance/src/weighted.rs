//! Deterministic d-choice placement over **weighted** nodes — the
//! Section 3 balancer lifted from "items into buckets" to "shards onto
//! storage nodes".
//!
//! The cluster tier asks a slightly different question than
//! [`GreedyBalancer`](crate::GreedyBalancer): place each of `S` shards
//! on `k` **distinct** nodes out of `N`, where nodes have integer
//! capacity weights, such that
//!
//! * placement is a pure function of `(seed, shard, weights)` — any
//!   party with the cluster config computes the same map, so there is
//!   no central directory to consult (the paper's guiding discipline);
//! * load is balanced in proportion to weight, with the greedy
//!   least-loaded choice among each shard's `d` candidates keeping the
//!   deviation small exactly as Lemma 3 bounds it for `d`-choice
//!   placement;
//! * the candidate list of a shard is a *ranking* of all nodes, so when
//!   a node dies its shards fail over to the next-ranked candidates and
//!   nothing else moves (bounded movement).
//!
//! Candidates come from **integer rendezvous hashing**: node `i` with
//! weight `w_i` scores a shard by the maximum of `w_i` mixed values
//! (one per "virtual instance" of the node), and nodes are ranked by
//! descending score. The max-of-`w` form makes a node's share of
//! top-ranks proportional to its weight without any floating-point
//! (`-w/ln u`) scoring, whose platform-dependent rounding would break
//! cross-machine determinism.

use expander::mix::mix64;

/// A storage node as the placement function sees it: an opaque stable
/// id (hashed into every score, so renumbering nodes reshuffles
/// nothing) and an integer capacity weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedNode {
    /// Stable node identity; must be unique within one placement.
    pub id: u64,
    /// Relative capacity, ≥ 1. A weight-2 node receives ~2× the shards
    /// of a weight-1 node.
    pub weight: u32,
}

impl WeightedNode {
    /// A node with the given id and weight.
    ///
    /// # Panics
    /// Panics if `weight == 0` — a zero-weight node can never win a
    /// rank and would silently shrink the candidate pool.
    #[must_use]
    pub fn new(id: u64, weight: u32) -> Self {
        assert!(weight >= 1, "node weight must be at least 1");
        WeightedNode { id, weight }
    }
}

/// Rendezvous score of one node for one shard: the maximum over the
/// node's `weight` virtual instances of a mixed 64-bit value. Pure
/// integer arithmetic — identical on every platform.
#[must_use]
pub fn node_score(seed: u64, shard: u64, node: WeightedNode) -> u64 {
    (0..u64::from(node.weight))
        .map(|virt| mix64(seed ^ mix64(shard ^ mix64(node.id ^ (virt << 32)))))
        .max()
        .expect("weight >= 1")
}

/// Rank all nodes for `shard` by descending rendezvous score (ties —
/// astronomically unlikely with 64-bit scores — break by id for a total
/// order). `ranking[0]` is the shard's first-choice node; a failed
/// node's replicas fail over down this list.
#[must_use]
pub fn rendezvous_rank(seed: u64, shard: u64, nodes: &[WeightedNode]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by_key(|&i| {
        let n = nodes[i];
        (std::cmp::Reverse(node_score(seed, shard, n)), n.id)
    });
    order
}

/// Greedily pick `k` **distinct** nodes for one shard from its top-`d`
/// rendezvous candidates: each replica goes to the eligible candidate
/// with the least load *per unit weight* (Section 3's greedy rule,
/// normalized so a weight-`w` node absorbs `w×` the replicas before it
/// counts as equally full), ties breaking by rendezvous rank. `loads`
/// is indexed like `nodes` and is updated in place, so calling this
/// shard-by-shard reproduces the on-line greedy placement.
///
/// `eligible` masks nodes that may receive replicas (down nodes are
/// ineligible). Returns `None` when fewer than `k` eligible candidates
/// exist among the top `d` — the caller must widen `d` or accept
/// degraded replication.
///
/// # Panics
/// Panics if `k == 0`, `k > d`, or the slice lengths disagree.
pub fn choose_replicas(
    seed: u64,
    shard: u64,
    nodes: &[WeightedNode],
    eligible: &[bool],
    loads: &mut [u64],
    k: usize,
    d: usize,
) -> Option<Vec<usize>> {
    assert!(k >= 1, "placement needs at least one replica");
    assert!(k <= d, "k = {k} replicas exceed d = {d} candidates");
    assert_eq!(nodes.len(), eligible.len());
    assert_eq!(nodes.len(), loads.len());
    let ranking = rendezvous_rank(seed, shard, nodes);
    let candidates: Vec<usize> = ranking
        .into_iter()
        .filter(|&i| eligible[i])
        .take(d)
        .collect();
    if candidates.len() < k {
        return None;
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for _ in 0..k {
        // Least load per unit weight among candidates not yet chosen,
        // by exact cross-multiplication (no float division); ties break
        // by rendezvous rank (`min_by` keeps the first minimum and
        // candidates is already rank-ordered).
        let best = candidates
            .iter()
            .copied()
            .filter(|i| !chosen.contains(i))
            .min_by(|&a, &b| {
                let wa = u128::from(nodes[a].weight);
                let wb = u128::from(nodes[b].weight);
                (u128::from(loads[a]) * wb).cmp(&(u128::from(loads[b]) * wa))
            })?;
        loads[best] += 1;
        chosen.push(best);
    }
    Some(chosen)
}

/// Build a full placement: for each shard in `0..shards`, its `k`
/// distinct replica nodes. A pure function of its arguments — every
/// caller computes the identical map.
///
/// # Panics
/// Panics if any shard cannot get `k` distinct nodes among its top-`d`
/// candidates (i.e. fewer than `k` nodes exist), or on the
/// [`choose_replicas`] parameter violations.
#[must_use]
pub fn place_all(
    seed: u64,
    shards: u32,
    nodes: &[WeightedNode],
    k: usize,
    d: usize,
) -> Vec<Vec<usize>> {
    let eligible = vec![true; nodes.len()];
    let mut loads = vec![0u64; nodes.len()];
    (0..shards)
        .map(|s| {
            choose_replicas(seed, u64::from(s), nodes, &eligible, &mut loads, k, d)
                .unwrap_or_else(|| {
                    panic!("shard {s}: fewer than {k} eligible nodes among top {d}")
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<WeightedNode> {
        (0..n as u64).map(|id| WeightedNode::new(id, 1)).collect()
    }

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let nodes = uniform(5);
        let a = place_all(42, 64, &nodes, 2, 4);
        let b = place_all(42, 64, &nodes, 2, 4);
        assert_eq!(a, b);
        for replicas in &a {
            assert_eq!(replicas.len(), 2);
            assert_ne!(replicas[0], replicas[1], "replicas must be distinct nodes");
        }
    }

    #[test]
    fn seed_changes_the_map() {
        let nodes = uniform(5);
        assert_ne!(
            place_all(1, 64, &nodes, 2, 4),
            place_all(2, 64, &nodes, 2, 4)
        );
    }

    #[test]
    fn load_is_balanced_on_uniform_weights() {
        let nodes = uniform(4);
        let map = place_all(7, 128, &nodes, 2, 4);
        let mut loads = [0u64; 4];
        for replicas in &map {
            for &n in replicas {
                loads[n] += 1;
            }
        }
        // 256 replicas over 4 nodes: greedy d-choice with d = N keeps
        // everyone at exactly the mean.
        assert_eq!(loads, [64; 4]);
    }

    #[test]
    fn weight_scales_the_share_of_first_choices() {
        // Rendezvous ranks (pre-greedy) should favor the heavy node
        // roughly in proportion to weight.
        let nodes = vec![
            WeightedNode::new(0, 3),
            WeightedNode::new(1, 1),
            WeightedNode::new(2, 1),
        ];
        let shards = 4000u64;
        let heavy_first = (0..shards)
            .filter(|&s| rendezvous_rank(9, s, &nodes)[0] == 0)
            .count() as f64;
        let share = heavy_first / shards as f64;
        // Expected 3/5 = 0.6; allow generous slack for a hash test.
        assert!((0.5..0.7).contains(&share), "heavy share {share}");
    }

    #[test]
    fn weighted_greedy_splits_load_proportionally() {
        // weight 3 : 1 : 1 : 1 over 240 replica slots → expect shares
        // near 120 : 40 : 40 : 40.
        let nodes = vec![
            WeightedNode::new(0, 3),
            WeightedNode::new(1, 1),
            WeightedNode::new(2, 1),
            WeightedNode::new(3, 1),
        ];
        let map = place_all(11, 120, &nodes, 2, 4);
        let mut loads = [0u64; 4];
        for replicas in &map {
            for &n in replicas {
                loads[n] += 1;
            }
        }
        assert!(
            (100..=140).contains(&loads[0]),
            "heavy node load {loads:?} not ~3× a light node's"
        );
        for &l in &loads[1..] {
            assert!((28..=52).contains(&l), "light node loads {loads:?}");
        }
    }

    #[test]
    fn removing_a_node_moves_only_its_replicas() {
        // The failover property the cluster map relies on: keep every
        // replica not on the dead node, re-place only the lost ones.
        let nodes = uniform(6);
        let k = 2;
        let map = place_all(3, 90, &nodes, k, 4);
        let dead = 2usize;
        let mut eligible = vec![true; nodes.len()];
        eligible[dead] = false;
        let mut loads = vec![0u64; nodes.len()];
        for replicas in &map {
            for &n in replicas {
                if n != dead {
                    loads[n] += 1;
                }
            }
        }
        let mut moved = 0usize;
        for (s, replicas) in map.iter().enumerate() {
            if replicas.contains(&dead) {
                moved += 1;
                // The lost replica re-places on an eligible candidate
                // distinct from the survivor.
                let survivor: Vec<usize> =
                    replicas.iter().copied().filter(|&n| n != dead).collect();
                let mut elig = eligible.clone();
                for &n in &survivor {
                    elig[n] = false;
                }
                let repl = choose_replicas(3, s as u64, &nodes, &elig, &mut loads, 1, 4)
                    .expect("enough nodes");
                assert_ne!(repl[0], dead);
                assert!(!survivor.contains(&repl[0]));
            }
        }
        // Expected replicas on the dead node ≈ shards·k/N = 30; only
        // those shards move.
        let total_replicas = 90 * k;
        assert!(
            moved * nodes.len() <= total_replicas * 2,
            "movement {moved} far above the 1/N share"
        );
    }

    #[test]
    fn too_few_nodes_is_a_typed_refusal() {
        let nodes = uniform(2);
        let mut loads = vec![0u64; 2];
        let eligible = vec![true, false];
        assert_eq!(
            choose_replicas(1, 0, &nodes, &eligible, &mut loads, 2, 3),
            None
        );
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_weight_refused() {
        let _ = WeightedNode::new(1, 0);
    }
}
