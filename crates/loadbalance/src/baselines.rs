//! Baseline allocation strategies for the LEM3 experiment.
//!
//! * **Single choice** — every key hashes to one bucket (`d = 1`); the
//!   classic balls-into-bins maximum of `Θ(log n / log log n)` above
//!   average in the lightly loaded case.
//! * **Random `d`-choice** — the Azar–Broder–Karlin–Upfal scheme; the
//!   paper's Section 3 notes its own scheme generalizes the `k = 1`,
//!   random-degree-2 case, whose max deviation is `O(log log n)` w.h.p.
//!
//! Both are expressed as [`GreedyBalancer`] instances over
//! [`SeededExpander`] graphs (a fixed random graph *is* the random-choice
//! scheme, with the randomness fixed up front), so all three strategies
//! differ only in the graph handed to the identical greedy code.

use crate::greedy::GreedyBalancer;
use expander::SeededExpander;

/// Single-choice allocation: `d = 1` over a pseudorandom graph.
#[must_use]
pub fn single_choice(universe: u64, buckets: usize, seed: u64) -> GreedyBalancer<SeededExpander> {
    let g = SeededExpander::new(universe, buckets, 1, seed);
    GreedyBalancer::new(g, 1)
}

/// Random `d`-choice allocation (greedy over a degree-`d` random graph).
///
/// # Panics
/// Panics if `buckets` is not divisible by `d` (the underlying graph is
/// striped into `d` equal parts).
#[must_use]
pub fn random_d_choice(
    universe: u64,
    buckets: usize,
    d: usize,
    seed: u64,
) -> GreedyBalancer<SeededExpander> {
    assert!(
        buckets.is_multiple_of(d),
        "buckets must be divisible by d for striping"
    );
    let g = SeededExpander::new(universe, buckets / d, d, seed);
    GreedyBalancer::new(g, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_choice_has_heavier_max_than_two_choice() {
        // The power of two choices: at equal load, d = 2 greedy placement
        // has a strictly smaller maximum than single-choice, by a clear
        // margin at this scale.
        let buckets = 1024;
        let n = 16 * 1024;
        let mut one = single_choice(1 << 40, buckets, 1);
        let mut two = random_d_choice(1 << 40, buckets, 2, 2);
        for x in 0..n as u64 {
            let key = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 40);
            one.insert(key);
            two.insert(key);
        }
        assert!(
            two.max_load() < one.max_load(),
            "two-choice max {} not below single-choice max {}",
            two.max_load(),
            one.max_load()
        );
    }

    #[test]
    fn single_choice_is_degree_one() {
        let lb = single_choice(1 << 20, 64, 0);
        assert_eq!(expander::NeighborFn::degree(lb.graph()), 1);
        assert_eq!(expander::NeighborFn::right_size(lb.graph()), 64);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_buckets_rejected() {
        let _ = random_d_choice(1 << 20, 63, 2, 0);
    }
}
