//! Load-vector summaries for the experiments.

/// Summary statistics of a bucket-load vector.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Number of buckets.
    pub buckets: usize,
    /// Total items.
    pub total: u64,
    /// Maximum load.
    pub max: u32,
    /// Minimum load.
    pub min: u32,
    /// Mean load.
    pub mean: f64,
    /// Population standard deviation of the loads.
    pub stddev: f64,
    /// `histogram[l]` = number of buckets with load exactly `l`.
    pub histogram: Vec<usize>,
}

impl LoadStats {
    /// Summarize a load vector.
    ///
    /// # Panics
    /// Panics on an empty vector.
    #[must_use]
    pub fn of(loads: &[u32]) -> Self {
        assert!(!loads.is_empty(), "no buckets to summarize");
        let total: u64 = loads.iter().map(|&l| u64::from(l)).sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().min().unwrap_or(0);
        let mean = total as f64 / loads.len() as f64;
        let var = loads
            .iter()
            .map(|&l| {
                let d = f64::from(l) - mean;
                d * d
            })
            .sum::<f64>()
            / loads.len() as f64;
        let mut histogram = vec![0usize; max as usize + 1];
        for &l in loads {
            histogram[l as usize] += 1;
        }
        LoadStats {
            buckets: loads.len(),
            total,
            max,
            min,
            mean,
            stddev: var.sqrt(),
            histogram,
        }
    }

    /// Deviation of the maximum above the mean — the quantity the
    /// balanced-allocations literature bounds.
    #[must_use]
    pub fn max_deviation(&self) -> f64 {
        f64::from(self.max) - self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_simple_vector() {
        let s = LoadStats::of(&[0, 1, 2, 1]);
        assert_eq!(s.buckets, 4);
        assert_eq!(s.total, 4);
        assert_eq!(s.max, 2);
        assert_eq!(s.min, 0);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert_eq!(s.histogram, vec![1, 2, 1]);
        assert!((s.max_deviation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_of_uniform_is_zero() {
        let s = LoadStats::of(&[3, 3, 3]);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    #[should_panic(expected = "no buckets")]
    fn empty_vector_panics() {
        let _ = LoadStats::of(&[]);
    }
}
