//! The Section 3 greedy placement scheme.

use expander::NeighborFn;

/// How ties between equally-loaded candidate buckets are broken. The paper
/// allows "breaking ties arbitrarily"; a fixed policy keeps runs
/// reproducible, and the LEM3 experiment compares the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Prefer the lowest right-vertex index (for striped graphs: the
    /// lowest stripe, i.e. disk 0 fills first among ties).
    #[default]
    LowestIndex,
    /// Prefer the highest right-vertex index.
    HighestIndex,
}

/// On-line greedy `k`-item `d`-choice balancer over a fixed expander.
///
/// ```
/// use expander::SeededExpander;
/// use loadbalance::GreedyBalancer;
///
/// let g = SeededExpander::new(1 << 20, 64, 8, 7); // v = 512 buckets
/// let mut lb = GreedyBalancer::new(&g, 1);
/// for x in 0..1000 {
///     lb.insert(x);
/// }
/// assert_eq!(lb.total_items(), 1000);
/// assert!(lb.max_load() >= 2); // 1000 items in 512 buckets
/// ```
#[derive(Debug, Clone)]
pub struct GreedyBalancer<G> {
    graph: G,
    loads: Vec<u32>,
    items_per_key: usize,
    tie: TieBreak,
    inserted_keys: usize,
}

impl<G: NeighborFn> GreedyBalancer<G> {
    /// New balancer placing `k` items per inserted key.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > d` (the scheme requires `d > k` for its
    /// guarantee; equality is allowed here but Lemma 3 then gives no bound).
    #[must_use]
    pub fn new(graph: G, items_per_key: usize) -> Self {
        Self::with_tie_break(graph, items_per_key, TieBreak::default())
    }

    /// New balancer with an explicit tie-break policy.
    #[must_use]
    pub fn with_tie_break(graph: G, items_per_key: usize, tie: TieBreak) -> Self {
        assert!(items_per_key >= 1, "each key must carry at least one item");
        assert!(
            items_per_key <= graph.degree(),
            "k = {items_per_key} items exceed d = {} choices",
            graph.degree()
        );
        let v = graph.right_size();
        GreedyBalancer {
            graph,
            loads: vec![0; v],
            items_per_key,
            tie,
            inserted_keys: 0,
        }
    }

    /// Insert key `x`: place its `k` items one by one, each into the
    /// currently least-loaded neighboring bucket. Returns the chosen bucket
    /// for each item (multiple items may share a bucket, as the paper's
    /// scheme allows).
    pub fn insert(&mut self, x: u64) -> Vec<usize> {
        let neighbors = self.graph.neighbors(x);
        let mut chosen = Vec::with_capacity(self.items_per_key);
        for _ in 0..self.items_per_key {
            let mut best = neighbors[0];
            for &y in &neighbors[1..] {
                let better = match self.loads[y].cmp(&self.loads[best]) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => match self.tie {
                        TieBreak::LowestIndex => y < best,
                        TieBreak::HighestIndex => y > best,
                    },
                };
                if better {
                    best = y;
                }
            }
            self.loads[best] += 1;
            chosen.push(best);
        }
        self.inserted_keys += 1;
        chosen
    }

    /// Current load vector (one entry per right vertex).
    #[must_use]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Largest bucket load.
    #[must_use]
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Total items placed.
    #[must_use]
    pub fn total_items(&self) -> usize {
        self.inserted_keys * self.items_per_key
    }

    /// Keys inserted so far.
    #[must_use]
    pub fn keys_inserted(&self) -> usize {
        self.inserted_keys
    }

    /// Items per key, `k`.
    #[must_use]
    pub fn items_per_key(&self) -> usize {
        self.items_per_key
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// Average load `k·n / v`.
    #[must_use]
    pub fn average_load(&self) -> f64 {
        self.total_items() as f64 / self.loads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expander::graph::TableGraph;
    use expander::SeededExpander;

    #[test]
    fn picks_least_loaded_bucket() {
        // One key with neighbors {0, 2}; preload bucket 0.
        let g = TableGraph::new(4, vec![vec![0, 2], vec![0, 2]], true);
        let mut lb = GreedyBalancer::new(&g, 1);
        assert_eq!(lb.insert(0), vec![0]); // tie -> lowest index
        assert_eq!(lb.insert(1), vec![2]); // bucket 0 now has load 1
        assert_eq!(lb.loads(), &[1, 0, 1, 0]);
    }

    #[test]
    fn tie_break_policies_differ() {
        let g = TableGraph::new(4, vec![vec![1, 2]], true);
        let mut low = GreedyBalancer::with_tie_break(&g, 1, TieBreak::LowestIndex);
        let mut high = GreedyBalancer::with_tie_break(&g, 1, TieBreak::HighestIndex);
        assert_eq!(low.insert(0), vec![1]);
        assert_eq!(high.insert(0), vec![2]);
    }

    #[test]
    fn k_items_spread_over_choices() {
        let g = TableGraph::new(6, vec![vec![0, 2, 4]], true);
        let mut lb = GreedyBalancer::new(&g, 3);
        let chosen = lb.insert(0);
        // Three items, three empty choices: one each.
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 4]);
        assert_eq!(lb.total_items(), 3);
    }

    #[test]
    fn multiple_items_may_share_a_bucket() {
        // d = 2 neighbors but k = 2 items; second insert forces sharing.
        let g = TableGraph::new(4, vec![vec![0, 2]], true);
        let mut lb = GreedyBalancer::new(&g, 2);
        lb.insert(0);
        assert_eq!(lb.loads(), &[1, 0, 1, 0]);
        lb.insert(0);
        assert_eq!(lb.loads(), &[2, 0, 2, 0]);
    }

    #[test]
    fn max_load_tracks_lemma3_shape() {
        // n keys into v buckets with d choices: max load should sit near
        // the average, far below the single-choice ~log n / log log n.
        let d = 8;
        let v = 512;
        let n = 8192u64; // average load 16
        let g = SeededExpander::new(1 << 30, v / d, d, 3);
        let mut lb = GreedyBalancer::new(&g, 1);
        for x in 0..n {
            lb.insert(x * 2654435761 % (1 << 30));
        }
        let avg = lb.average_load();
        let max = lb.max_load() as f64;
        assert!(
            max <= avg + 8.0,
            "greedy max load {max} too far above average {avg}"
        );
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn k_above_d_rejected() {
        let g = SeededExpander::new(16, 4, 2, 0);
        let _ = GreedyBalancer::new(&g, 3);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_k_rejected() {
        let g = SeededExpander::new(16, 4, 2, 0);
        let _ = GreedyBalancer::new(&g, 0);
    }

    #[test]
    fn deterministic_runs() {
        let g = SeededExpander::new(1 << 20, 32, 4, 9);
        let mut a = GreedyBalancer::new(&g, 2);
        let mut b = GreedyBalancer::new(&g, 2);
        for x in 0..500 {
            assert_eq!(a.insert(x), b.insert(x));
        }
        assert_eq!(a.loads(), b.loads());
    }
}
