//! Property-based tests of the load balancing schemes.

use expander::{NeighborFn, SeededExpander};
use loadbalance::{GreedyBalancer, LoadStats, Placement, RecursiveBalancer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: total load always equals k times the keys inserted,
    /// and every placement is a neighbor of its key.
    #[test]
    fn greedy_conserves_and_respects_graph(
        d in 2usize..12,
        k_frac in 1usize..4,
        stripe in 4usize..64,
        n in 1usize..300,
        seed in any::<u64>(),
    ) {
        let k = (d * k_frac / 4).max(1).min(d);
        let g = SeededExpander::new(1 << 30, stripe, d, seed);
        let mut lb = GreedyBalancer::new(&g, k);
        for i in 0..n as u64 {
            let x = i.wrapping_mul(0x9E37_79B9) % (1 << 30);
            let chosen = lb.insert(x);
            let neighbors = g.neighbors(x);
            for y in chosen {
                prop_assert!(neighbors.contains(&y), "non-neighbor bucket");
            }
        }
        let stats = LoadStats::of(lb.loads());
        prop_assert_eq!(stats.total, (n * k) as u64);
    }

    /// Greedy never does worse than the trivial bound: max ≤ k·n (one key
    /// can only stack k items in a bucket if all its choices coincide) and
    /// max ≥ ceil(k·n / v).
    #[test]
    fn greedy_max_within_trivial_envelope(
        d in 2usize..10,
        stripe in 2usize..32,
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let g = SeededExpander::new(1 << 20, stripe, d, seed);
        let mut lb = GreedyBalancer::new(&g, 1);
        for i in 0..n as u64 {
            lb.insert(i % (1 << 20));
        }
        let v = g.right_size();
        let max = lb.max_load() as usize;
        prop_assert!(max >= n.div_ceil(v));
        prop_assert!(max <= n);
    }

    /// The recursive balancer accounts for every key exactly once and
    /// never exceeds the capacity anywhere.
    #[test]
    fn recursive_accounts_for_all_keys(
        n in 1usize..400,
        cap in 2u32..16,
        seed in any::<u64>(),
    ) {
        let d = 8;
        let k = 4;
        let mut b = RecursiveBalancer::new(1 << 30, 64, d, k, cap, 3, 0.5, seed);
        let mut placed = 0usize;
        for i in 0..n as u64 {
            match b.insert(i.wrapping_mul(0x2545_F491) % (1 << 30)) {
                Placement::Level(level, chosen) => {
                    prop_assert!(level < b.num_levels());
                    prop_assert_eq!(chosen.len(), k);
                    placed += 1;
                }
                Placement::Overflow => {}
            }
        }
        let pop_sum: usize = b.level_population().iter().sum();
        prop_assert_eq!(pop_sum, placed);
        prop_assert_eq!(placed + b.overflow_len(), n);
        for level in 0..b.num_levels() {
            prop_assert!(b.max_load(level) <= cap, "capacity violated");
        }
    }

    /// Update cost is monotone in scarcity: halving the capacity can only
    /// raise (or keep) the implied average update cost.
    #[test]
    fn recursive_cost_monotone_in_capacity(seed in any::<u64>()) {
        let run = |cap: u32| {
            let mut b = RecursiveBalancer::new(1 << 30, 128, 8, 4, cap, 4, 0.5, seed);
            for i in 0..500u64 {
                b.insert(i.wrapping_mul(0x9E37_79B9) % (1 << 30));
            }
            b.average_update_cost()
        };
        prop_assert!(run(8) >= run(16) - 1e-9);
    }
}
