//! Minimal vendored subset of `serde`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of serde it actually uses: a [`Serialize`] trait that
//! renders values into an owned [`Value`] tree (consumed by the vendored
//! `serde_json::to_string_pretty`), plus the derive macro re-export.
//!
//! This is intentionally not the real serde data model — no serializer
//! abstraction, no deserialization — just enough to write benchmark
//! reports as JSON.

pub use serde_derive::Serialize;

/// An owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// A number, stored pre-formatted so integers keep full precision.
    Number(String),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

fn float_value(v: f64) -> Value {
    if !v.is_finite() {
        // serde_json refuses non-finite floats; `null` is its lossy
        // stand-in and good enough for report output.
        return Value::Null;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        Value::Number(format!("{v:.1}"))
    } else {
        Value::Number(format!("{v}"))
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(self.to_string())
            }
        })*
    };
}
impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        float_value(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        float_value(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_keep_full_precision() {
        let v = u64::MAX.to_value();
        assert_eq!(v, Value::Number(u64::MAX.to_string()));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(2.0f64.to_value(), Value::Number("2.0".into()));
        assert_eq!(0.5f64.to_value(), Value::Number("0.5".into()));
        assert_eq!(f64::NAN.to_value(), Value::Null);
    }

    #[test]
    fn options_and_vecs_nest() {
        let v = vec![Some(1u32), None].to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::Number("1".into()), Value::Null])
        );
    }
}
