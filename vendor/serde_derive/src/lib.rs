//! Minimal vendored replacement for the `serde_derive` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the few external crates it uses. This derive supports exactly the shape
//! the workspace serializes: non-generic structs with named fields. The
//! generated impl targets the vendored `serde::Serialize` trait, which
//! renders to the `serde::Value` tree consumed by `serde_json`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();

    // Skip attributes and visibility, find `struct <Name> { ... }`.
    let mut name = None;
    let mut body = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                let _ = iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde_derive stub: expected struct name, got {other:?}"),
                }
                for rest in iter.by_ref() {
                    if let TokenTree::Group(g) = &rest {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                    if let TokenTree::Punct(p) = &rest {
                        if p.as_char() == '<' {
                            panic!("serde_derive stub: generic structs are not supported");
                        }
                    }
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("serde_derive stub: no `struct` item found");
    let body = body.expect("serde_derive stub: only named-field structs are supported");

    let fields = field_names(body);
    let mut out = String::new();
    out.push_str(&format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        serde::Value::Object(vec![\n"
    ));
    for f in &fields {
        out.push_str(&format!(
            "            (\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),\n"
        ));
    }
    out.push_str("        ])\n    }\n}\n");
    out.parse().expect("serde_derive stub: generated impl must parse")
}

/// Extract field identifiers from a named-field struct body.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) before the field.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                    let _ = iter.next(); // the [...] group
                }
                _ => break,
            }
        }
        // Optional visibility: `pub` or `pub(...)`.
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                let _ = iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = iter.next();
                    }
                }
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        }
        // Skip `: Type` up to the next top-level comma. Token trees do not
        // nest generics, so track angle-bracket depth explicitly.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}
