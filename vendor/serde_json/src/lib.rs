//! Minimal vendored subset of `serde_json`.
//!
//! Provides [`to_string`] and [`to_string_pretty`] over the vendored
//! `serde::Value` tree, matching serde_json's output format (2-space
//! indent, `"key": value` with a space after the colon) so existing
//! report-format assertions keep passing.

use serde::{Serialize, Value};

/// Serialization error (the vendored tree rendering is infallible, but
/// the signature matches the real crate).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

/// Render `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = Value::Array(vec![Value::Object(vec![
            ("name".to_string(), Value::String("test".to_string())),
            ("n".to_string(), Value::Number("3".to_string())),
        ])]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "[\n  {\n    \"name\": \"test\",\n    \"n\": 3\n  }\n]"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string(&Value::String("a\"b\\c\nd".to_string())).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers_are_inline() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Array(vec![])),
            ("o".to_string(), Value::Object(vec![])),
        ]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [],\n  \"o\": {}\n}"
        );
    }
}
