//! Minimal vendored replacement for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API slice its property tests use: the `proptest!` macro with
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`/`prop_oneof!`, `any`, integer-range / tuple / `Just` /
//! mapped strategies, `collection::{vec, hash_set}`, and
//! `sample::subsequence`, plus the explicit `TestRunner` / `new_tree` /
//! `ValueTree` path.
//!
//! Semantics differ from real proptest in one deliberate way: cases are
//! generated from a fixed-seed splitmix64 stream (fully deterministic,
//! no persistence files) and failing cases are reported without
//! shrinking. For a reproduction codebase, deterministic replay matters
//! more than minimal counterexamples.
//!
//! The flip side of the fixed seed is that every run explores the
//! *identical* case set — the property suites are a reproducible corpus,
//! not an ongoing search for new inputs. Set `PROPTEST_SEED=<u64>`
//! (decimal or `0x`-hex) to drive the stream from a different seed and
//! explore a fresh corpus; a failure then reports under a seed that
//! replays it exactly. To restore the real `proptest` (shrinking,
//! persistence, a per-run RNG), see the dependency notes in the
//! workspace `Cargo.toml`.

/// Test-case driving: runner, config, and case-level errors.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases, other settings default.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is discarded, not failed.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejection (the case is discarded).
        #[must_use]
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Fixed seed: every run generates the same case stream, so failures
    /// replay without persistence files.
    const SEED: u64 = 0x5EED_0F0A_11CA_5E00;

    /// The seed driving [`TestRunner::new`]: `PROPTEST_SEED` (decimal or
    /// `0x`-hex) when set, else the fixed default — so CI can vary the
    /// explored corpus while plain runs stay fully deterministic.
    ///
    /// # Panics
    /// Panics when `PROPTEST_SEED` is set but not a valid `u64`, rather
    /// than silently falling back to the default corpus.
    fn seed_from_env() -> u64 {
        let Ok(raw) = std::env::var("PROPTEST_SEED") else {
            return SEED;
        };
        let s = raw.trim();
        let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        match parsed {
            Ok(seed) => seed,
            Err(_) => panic!("PROPTEST_SEED must be a u64 (decimal or 0x-hex), got {s:?}"),
        }
    }

    /// Deterministic random source feeding strategy generation.
    #[derive(Debug)]
    pub struct TestRunner {
        state: u64,
        seed: u64,
    }

    impl TestRunner {
        /// Runner for `config` (deterministic; the config only sets the
        /// case count, which the `proptest!` macro reads directly). The
        /// stream seed comes from the `PROPTEST_SEED` environment
        /// variable when set (decimal or `0x`-hex), else a fixed default.
        #[must_use]
        pub fn new(_config: &ProptestConfig) -> Self {
            let seed = seed_from_env();
            TestRunner { state: seed, seed }
        }

        /// Runner with a fixed seed, for explicit `new_tree` use.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRunner {
                state: SEED,
                seed: SEED,
            }
        }

        /// The seed this runner's stream started from (reported on
        /// failure so any corpus replays exactly).
        #[must_use]
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

/// Strategies: composable generators of test values.
pub mod strategy {
    use crate::test_runner::TestRunner;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Apply `f` to every generated value.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate one value wrapped in a [`ValueTree`] (no shrinking).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<SampleTree<Self::Value>, String>
        where
            Self: Sized,
            Self::Value: Clone,
        {
            Ok(SampleTree(self.generate(runner)))
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |runner| self.generate(runner)))
        }
    }

    /// A generated value holder (real proptest shrinks through this; the
    /// vendored version holds a single sample).
    pub trait ValueTree {
        /// The type of the held value.
        type Value;

        /// The current (only) value.
        fn current(&self) -> Self::Value;
    }

    /// The single-sample [`ValueTree`] produced by [`Strategy::new_tree`].
    #[derive(Debug)]
    pub struct SampleTree<V: Clone>(pub(crate) V);

    impl<V: Clone> ValueTree for SampleTree<V> {
        type Value = V;

        fn current(&self) -> V {
            self.0.clone()
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRunner) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            (self.0)(runner)
        }
    }

    /// Weighted choice among boxed strategies (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` pairs.
        ///
        /// # Panics
        /// Panics if `options` is empty or all weights are zero.
        #[must_use]
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut r = runner.below(total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if r < w {
                    return s.generate(runner);
                }
                r -= w;
            }
            unreachable!("weighted draw out of range")
        }
    }

    /// Strategy mapping values through a function (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + runner.below(span) as $t
                }
            })*
        };
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            // 53 mantissa bits of uniformity is plenty for test inputs.
            let unit = (runner.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.next_u64() as $t
                }
            })*
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    /// Strategy for the full range of `T` (see [`any`]).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// Strategy generating any value of type `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + runner.below(span) as usize;
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }

    /// Strategy for `HashSet<S::Value>` with target size from a range.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + runner.below(span) as usize;
            let mut out = HashSet::with_capacity(target);
            // Duplicates from a narrow element domain may keep the set
            // below target; cap the attempts so generation always halts.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 16 {
                out.insert(self.element.generate(runner));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` with `size` distinct elements drawn from `element`
    /// (best-effort when the element domain is small).
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        HashSetStrategy { element, size }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy yielding `count`-element subsequences (see [`subsequence`]).
    pub struct SubsequenceStrategy<T: Clone> {
        values: Vec<T>,
        count: usize,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<T> {
            // Partial Fisher–Yates over the index set, then restore
            // source order: a subsequence preserves relative order.
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..self.count {
                let j = i + runner.below((idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut chosen = idx[..self.count].to_vec();
            chosen.sort_unstable();
            chosen.iter().map(|&i| self.values[i].clone()).collect()
        }
    }

    /// Strategy choosing a random subsequence of exactly `count` elements
    /// of `values`, in their original relative order.
    ///
    /// # Panics
    /// Panics if `count > values.len()`.
    pub fn subsequence<T: Clone>(values: Vec<T>, count: usize) -> SubsequenceStrategy<T> {
        assert!(
            count <= values.len(),
            "subsequence of {count} from {} elements",
            values.len()
        );
        SubsequenceStrategy { values, count }
    }
}

/// The usual imports for writing property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Discard the current case (does not count as a failure) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted (or unweighted) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property-test functions.
///
/// Supported form (matching real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0u64..100, y in any::<u64>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(&config);
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(10).saturating_add(100);
                while passed < config.cases {
                    assert!(
                        attempts < max_attempts,
                        "proptest: too many rejected cases ({attempts} attempts, {passed} passed)"
                    );
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed after {passed} passing cases \
                                 (replay with PROPTEST_SEED={:#x}): {msg}",
                                runner.seed(),
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;
    use crate::test_runner::TestRunner;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 5usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..9).contains(&y));
        }

        /// Mapping and tuples compose.
        #[test]
        fn map_and_tuple(pair in (0u32..10, any::<u64>()).prop_map(|(a, b)| (a + 1, b))) {
            prop_assert!(pair.0 >= 1 && pair.0 <= 10);
        }

        /// Assume discards without failing.
        #[test]
        fn assume_filters(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x = {}", x);
        }

        /// oneof draws from every arm eventually.
        #[test]
        fn oneof_draws(v in prop_oneof![2 => 0u64..5, 1 => 10u64..15]) {
            prop_assert!(v < 5 || (10..15).contains(&v));
        }
    }

    #[test]
    fn collections_and_subsequence() {
        let mut runner = TestRunner::deterministic();
        let v = crate::collection::vec(0u64..100, 5..10).generate(&mut runner);
        assert!(v.len() >= 5 && v.len() < 10);
        let s = crate::collection::hash_set(0u64..1000, 3..5).generate(&mut runner);
        assert!(s.len() >= 3 && s.len() < 5);
        let sub_strategy = crate::sample::subsequence((0..20usize).collect::<Vec<_>>(), 7);
        let tree = sub_strategy.new_tree(&mut runner).expect("tree");
        let sub = ValueTree::current(&tree);
        assert_eq!(sub.len(), 7);
        assert!(sub.windows(2).all(|w| w[0] < w[1]), "order preserved");
    }

    #[test]
    fn deterministic_runner_replays() {
        let mut a = TestRunner::deterministic();
        let mut b = TestRunner::deterministic();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn env_seed_changes_the_stream() {
        // Every property in this workspace must hold for any seed, so a
        // concurrently running proptest! test observing the temporary
        // seed is harmless.
        let cfg = ProptestConfig::default();
        let default_first = TestRunner::new(&cfg).next_u64();
        std::env::set_var("PROPTEST_SEED", "12345");
        let decimal_first = TestRunner::new(&cfg).next_u64();
        std::env::set_var("PROPTEST_SEED", "0x3039"); // 12345
        let hex_first = TestRunner::new(&cfg).next_u64();
        std::env::remove_var("PROPTEST_SEED");
        let restored_first = TestRunner::new(&cfg).next_u64();
        assert_eq!(decimal_first, hex_first, "decimal and hex parse alike");
        assert_ne!(default_first, decimal_first, "seed must change the stream");
        assert_eq!(default_first, restored_first, "default seed restored");
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn hopeless_assume_halts() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u64..10) {
                prop_assume!(x > 100);
            }
        }
        inner();
    }
}
