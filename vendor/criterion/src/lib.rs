//! Minimal vendored replacement for the `criterion` bench harness.
//!
//! The build environment has no registry access, so this crate provides
//! the API slice the workspace benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, `Bencher::iter` —
//! with a fixed-iteration timing loop instead of statistical sampling.
//! Benches run, print one median-ish line per case, and exit; there is
//! no HTML report or outlier analysis.

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark case.
const ITERS: u32 = 30;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a single benchmark case outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_case(None, &id.into_benchmark_id(), f);
    }
}

/// A named collection of benchmark cases.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness uses a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one case in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_case(Some(&self.name), &id.into_benchmark_id(), f);
        self
    }

    /// Run one case parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_case(Some(&self.name), &id.into_benchmark_id(), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_case<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &BenchmarkId, mut f: F) {
    let mut b = Bencher { elapsed_ns: 0, iters: 0 };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.iters > 0 {
        let per = b.elapsed_ns / u128::from(b.iters);
        println!("bench {label}: {per} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Per-case timing handle passed to the bench closure.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += ITERS;
    }
}

/// Identifier for one benchmark case.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversion into [`BenchmarkId`] for the id argument of bench methods.
pub trait IntoBenchmarkId {
    /// Convert to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            text: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { text: self }
    }
}

/// Define a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running each bench group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_cases() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(10);
            g.bench_function("case", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
                b.iter(|| ran += n)
            });
            g.finish();
        }
        assert!(ran > 0);
    }
}
