//! Integration tests for the serving engine (`pdm-server`): concurrent
//! clients against a sequential oracle, graceful-shutdown durability,
//! and the crash drill — the engine-level proof of "every acked write
//! survives recovery".
//!
//! Randomization follows the suite convention: deterministic by default,
//! `PROPTEST_SEED=<u64>` rotates the corpus (CI sets it per run).

mod harness;

use expander::FamilyKind;
use harness::{frontend, frontend_with, sat, Frontend};
use pdm::FaultPlan;
use pdm_server::{DictClient, EngineConfig, ServeEngine, ServeError};
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;
use std::time::Duration;

/// Seed for the randomized streams, rotated in CI like the proptest
/// corpora.
fn suite_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_0501)
}

fn mix(x: u64) -> u64 {
    expander::mix::mix64(x)
}

/// An engine over `shards` journaled-dynamic shard dictionaries built by
/// the differential harness.
fn engine_of(f: &Frontend, shards: usize, capacity: usize, seed: u64) -> ServeEngine {
    let dicts = (0..shards as u64)
        .map(|i| (f.build)(capacity, &[], seed + i))
        .collect();
    ServeEngine::new(
        dicts,
        EngineConfig::default()
            .with_queue_bound(512)
            // Generous deadline: a loaded CI worker must not turn a
            // correct reply into a spurious TimedOut.
            .with_deadline(Duration::from_secs(60)),
    )
}

/// Multi-threaded randomized stress against a per-thread sequential
/// oracle. Threads own disjoint key ranges, so every reply is exactly
/// predictable from the thread's own history (per-key linearizability),
/// and the union of the oracles predicts the final image.
#[test]
fn concurrent_mixed_workload_matches_sequential_oracle() {
    const THREADS: u64 = 4;
    const KEYS_PER_THREAD: u64 = 40;
    const OPS_PER_THREAD: u64 = 300;

    let f = frontend("dynamic_journaled");
    let seed = suite_seed();
    let capacity = (THREADS * KEYS_PER_THREAD) as usize + 32;
    let engine = engine_of(&f, 2, capacity, seed);
    let client = engine.client();

    let oracles: Mutex<HashMap<u64, Vec<pdm::Word>>> = Mutex::new(HashMap::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let client = client.clone();
            let oracles = &oracles;
            let sigma = f.sigma;
            s.spawn(move || {
                // This thread's private key range and op stream.
                let base = t * KEYS_PER_THREAD;
                let mut oracle: HashMap<u64, Vec<pdm::Word>> = HashMap::new();
                let mut state = mix(seed ^ (t << 32));
                for _ in 0..OPS_PER_THREAD {
                    state = mix(state.wrapping_add(1));
                    let key = base + state % KEYS_PER_THREAD;
                    match state % 16 {
                        // Insert-heavy mix so the structures actually fill.
                        0..=6 => {
                            let expected_err = oracle.contains_key(&key);
                            let satellite = sat(key ^ state, sigma);
                            match client.insert(key, &satellite) {
                                Ok(()) => {
                                    assert!(
                                        !expected_err,
                                        "engine acked an insert the oracle says is a duplicate"
                                    );
                                    oracle.insert(key, satellite);
                                }
                                Err(ServeError::Dict(
                                    pdm_dict::DictError::DuplicateKey(k),
                                )) => {
                                    assert_eq!(k, key);
                                    assert!(expected_err, "spurious duplicate for {key}");
                                }
                                Err(other) => panic!("insert({key}): {other}"),
                            }
                        }
                        7..=9 => {
                            let was = client.delete(key).unwrap();
                            assert_eq!(
                                was,
                                oracle.remove(&key).is_some(),
                                "delete({key}) presence disagrees with oracle"
                            );
                        }
                        _ => {
                            let got = client.lookup(key).unwrap();
                            assert_eq!(
                                got.as_ref(),
                                oracle.get(&key),
                                "lookup({key}) disagrees with oracle"
                            );
                        }
                    }
                }
                oracles.lock().unwrap().extend(oracle);
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(stats.rejected_overloaded, 0, "stress stayed under the bound");
    assert_eq!(stats.rejected_timedout, 0);
    assert_eq!(stats.disconnected, 0);
    assert_eq!(
        stats.submitted,
        THREADS * OPS_PER_THREAD,
        "every op admitted"
    );
    assert_eq!(
        stats.acked + stats.dict_errors,
        stats.submitted,
        "every admitted op answered — nothing silently dropped"
    );

    // Final image vs the merged oracle, across both engine shards.
    let oracle = oracles.into_inner().unwrap();
    let mut shards = engine.shutdown();
    let total: usize = shards.iter().map(|d| d.len()).sum();
    assert_eq!(total, oracle.len(), "record count disagrees with oracle");
    for key in 0..THREADS * KEYS_PER_THREAD {
        let hits: Vec<Vec<pdm::Word>> = shards
            .iter_mut()
            .filter_map(|d| d.lookup(key).satellite)
            .collect();
        match oracle.get(&key) {
            Some(expected) => {
                assert_eq!(hits.len(), 1, "key {key} present in {} shards", hits.len());
                assert_eq!(&hits[0], expected, "key {key} satellite diverged");
            }
            None => assert!(hits.is_empty(), "key {key} should be absent"),
        }
    }
}

/// Family rotation: the serving engine composes with every hash family —
/// a concurrent insert workload over each non-default family must ack
/// every op and leave exactly the inserted records, sharded correctly.
#[test]
fn engine_serves_over_every_family() {
    for family in FamilyKind::ALL {
        if family == FamilyKind::default() {
            continue;
        }
        let f = frontend_with("dynamic_journaled", family);
        let engine = engine_of(&f, 2, 128, suite_seed() ^ 0xFA);
        let client = engine.client();
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let client = client.clone();
                let sigma = f.sigma;
                s.spawn(move || {
                    for i in 0..25 {
                        let k = t * 1_000 + i;
                        client.insert(k, &sat(k, sigma)).unwrap();
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.acked, 75, "{family}: some op went unacked");
        let mut shards = engine.shutdown();
        let total: usize = shards.iter().map(|d| d.len()).sum();
        assert_eq!(total, 75, "{family}: record count disagrees");
        for t in 0..3u64 {
            for i in 0..25 {
                let k = t * 1_000 + i;
                let hits: Vec<_> = shards
                    .iter_mut()
                    .filter_map(|d| d.lookup(k).satellite)
                    .collect();
                assert_eq!(hits, vec![sat(k, f.sigma)], "{family}: key {k} wrong");
            }
        }
    }
}

/// Graceful shutdown leaves a `recover`-consistent image: reopening the
/// disk image from scratch finds a checkpointed journal (nothing to
/// replay) and every acked write present.
#[test]
fn graceful_shutdown_image_is_recover_consistent() {
    let mut f = frontend("dynamic_journaled");
    let reopen = f.reopen.take().expect("journaled front declares reopen");
    let seed = suite_seed() ^ 0x5D;
    let capacity = 128;
    let engine = engine_of(&f, 1, capacity, seed);
    let client = engine.client();

    std::thread::scope(|s| {
        for t in 0..3u64 {
            let client = client.clone();
            s.spawn(move || {
                for i in 0..30 {
                    client.insert(t * 100 + i, &sat(t * 100 + i, f.sigma)).unwrap();
                }
            });
        }
    });

    let mut shards = engine.shutdown();
    let dict = &mut shards[0];
    assert_eq!(dict.len(), 90);
    let image = dict.disks().expect("single-array front").clone();
    drop(shards);

    // Reopen from the image alone, as a fresh process would.
    let mut reopened = reopen(capacity, seed, image);
    assert_eq!(reopened.len(), 90, "recovered length");
    for t in 0..3u64 {
        for i in 0..30 {
            let key = t * 100 + i;
            assert_eq!(
                reopened.lookup(key).satellite,
                Some(sat(key, f.sigma)),
                "acked insert {key} missing after reopen"
            );
        }
    }
    // The shutdown checkpoint truncated the ring: a recovery pass over
    // the reopened image replays nothing.
    let report = reopened.recover();
    assert!(
        report.replayed.is_empty() && report.stalled == 0,
        "graceful image still had replayable intents: {report:?}"
    );
}

/// The crash drill: kill the server mid-load via a crash-point fault
/// plan (all later physical writes silently dropped), then verify from
/// the surviving disk image alone that **every acknowledged write is
/// durable**. Unacknowledged (`Disconnected`) writes are in-doubt: they
/// may be present or absent, but never torn.
#[test]
fn crash_drill_every_acked_write_survives_recovery() {
    const THREADS: u64 = 3;
    const KEYS_PER_THREAD: u64 = 60;

    let f = frontend("dynamic_journaled");
    let reopen = f.reopen.expect("journaled front declares reopen");
    let seed = suite_seed() ^ 0xC4A5;
    let capacity = (THREADS * KEYS_PER_THREAD) as usize + 32;

    // Build the single shard, then arm the crash point. The write budget
    // is far below what the full load needs, so the crash always fires
    // mid-serving.
    let crash_at = 30 + suite_seed() % 120;
    let mut dict = (f.build)(capacity, &[], seed);
    dict.disks_mut()
        .unwrap()
        .set_fault_plan(FaultPlan::new().crash_after(crash_at));
    let engine = ServeEngine::new(
        vec![dict],
        EngineConfig::default().with_deadline(Duration::from_secs(60)),
    );
    let client = engine.client();

    let acked: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    let in_doubt: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let client: DictClient = client.clone();
            let (acked, in_doubt) = (&acked, &in_doubt);
            s.spawn(move || {
                for i in 0..KEYS_PER_THREAD {
                    let key = t * KEYS_PER_THREAD + i;
                    match client.insert(key, &sat(key, f.sigma)) {
                        Ok(()) => {
                            acked.lock().unwrap().insert(key);
                        }
                        Err(ServeError::Disconnected) => {
                            in_doubt.lock().unwrap().insert(key);
                        }
                        Err(other) => panic!("insert({key}): {other}"),
                    }
                }
            });
        }
    });
    let acked = acked.into_inner().unwrap();
    let in_doubt = in_doubt.into_inner().unwrap();

    assert!(engine.crash_observed(), "crash point never fired");
    assert!(!in_doubt.is_empty(), "crash produced no disconnects");
    let stats = engine.stats();
    assert_eq!(stats.acked, acked.len() as u64);
    assert_eq!(
        stats.acked + stats.disconnected,
        THREADS * KEYS_PER_THREAD,
        "every request answered exactly once"
    );

    // The process dies; only the disk image survives. Clearing the plan
    // is the reboot — writes dropped by the crash stay dropped.
    let mut shards = engine.shutdown();
    let image = {
        let disks = shards[0].disks_mut().unwrap();
        disks.clear_fault_plan();
        disks.clone()
    };
    drop(shards);
    let mut recovered = reopen(capacity, seed, image);

    // Acked ⇒ durable, bit-exact.
    for &key in &acked {
        assert_eq!(
            recovered.lookup(key).satellite,
            Some(sat(key, f.sigma)),
            "ACKED insert {key} lost after crash at write {crash_at}"
        );
    }
    // In-doubt ⇒ all-or-nothing: present with the right bits, or absent.
    let mut present = acked.len();
    for &key in &in_doubt {
        if let Some(got) = recovered.lookup(key).satellite {
            assert_eq!(got, sat(key, f.sigma), "torn write for in-doubt key {key}");
            present += 1;
        }
    }
    assert_eq!(
        recovered.len(),
        present,
        "recovered counters disagree with recovered contents"
    );
}
