//! Cross-family differential suite: every dictionary front-end, built
//! over every hash family (`FamilyKind::ALL`), must return byte-identical
//! *results* — lookups, per-key mutation outcomes, lengths — even though
//! the placements (disk images) legitimately differ per family. Costs
//! must stay within a shared envelope: the neighbor function decides
//! *where* records land, never *how many* parallel I/Os a probe takes.
//!
//! Like the other differential suites this replays a deterministic
//! corpus from the vendored proptest stand-in; set `PROPTEST_SEED=<u64>`
//! to rotate the corpus (CI does), which here rotates both the generated
//! key sets and the build seeds handed to each family.

mod harness;

use expander::FamilyKind;
use harness::{disk_image, frontend_with, frontends_with, padded_entries, sat, KEY_SPACE};
use pdm_dict::ErrorKind;
use proptest::prelude::*;

fn suite_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_06FA)
}

/// A sorted, deduplicated key set.
fn key_set() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::hash_set(0u64..KEY_SPACE, 5..40).prop_map(|s| {
        let mut v: Vec<u64> = s.into_iter().collect();
        v.sort_unstable();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Build the same key set under every family and compare the batch
    /// lookup results byte-for-byte, with every family's charged cost
    /// inside a shared envelope (within 4x of the cheapest family).
    #[test]
    fn lookups_byte_identical_across_families(keys in key_set()) {
        let names: Vec<&str> = frontends_with(FamilyKind::default())
            .iter()
            .map(|f| f.name)
            .collect();
        for name in names {
            let mut results = Vec::new();
            for family in FamilyKind::ALL {
                let f = frontend_with(name, family);
                let entries = padded_entries(&f, &keys);
                let mut dict = (f.build)(entries.len(), &entries, suite_seed() ^ 0xFA7);
                let mut queries: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
                // Misses probe the same envelope as hits.
                queries.extend((0..10).map(|i| KEY_SPACE - 1 - i));
                let (found, cost) = dict.lookup_batch(&queries);
                prop_assert_eq!(dict.len(), entries.len(), "{name}/{family}: wrong len");
                results.push((family, found, cost.parallel_ios));
            }
            let (_, ref want, _) = results[0];
            for (family, found, _) in &results {
                prop_assert_eq!(
                    found, want,
                    "{}: lookups over {} diverged from {}",
                    name, family, results[0].0
                );
            }
            let cheapest = results.iter().map(|(_, _, c)| *c).min().unwrap().max(1);
            for (family, _, cost) in &results {
                prop_assert!(
                    *cost <= 4 * cheapest,
                    "{name}/{family}: cost {cost} outside the 4x envelope of {cheapest}"
                );
            }
        }
    }

    /// Mutable fronts: an insert (with duplicate) / delete script must
    /// report identical per-key outcomes and end with identical contents
    /// under every family.
    #[test]
    fn mutation_outcomes_identical_across_families(keys in key_set()) {
        let names: Vec<&str> = frontends_with(FamilyKind::default())
            .iter()
            .filter(|f| !f.is_static)
            .map(|f| f.name)
            .collect();
        for name in names {
            let mut outcomes = Vec::new();
            for family in FamilyKind::ALL {
                let f = frontend_with(name, family);
                let mut dict = (f.build)(keys.len(), &[], suite_seed() ^ 0x3B);
                let mut script: Vec<Result<(), ErrorKind>> = Vec::new();
                for &k in &keys {
                    script.push(dict.insert(k, &sat(k, f.sigma)).map(|_| ()).map_err(|e| e.kind()));
                }
                // Duplicate of the first key must fail identically.
                script.push(dict.insert(keys[0], &sat(keys[0], f.sigma)).map(|_| ()).map_err(|e| e.kind()));
                for &k in keys.iter().step_by(2) {
                    script.push(dict.delete(k).map(|_| ()).map_err(|e| e.kind()));
                }
                let (contents, _) = dict.lookup_batch(&keys);
                outcomes.push((family, script, contents, dict.len()));
            }
            let (_, ref want_script, ref want_contents, want_len) = outcomes[0];
            for (family, script, contents, len) in &outcomes {
                prop_assert_eq!(script, want_script, "{}/{}: outcomes diverged", name, family);
                prop_assert_eq!(contents, want_contents, "{}/{}: contents diverged", name, family);
                prop_assert_eq!(len, &want_len, "{}/{}: lengths diverged", name, family);
            }
        }
    }
}

/// Sanity check that the differential above is not vacuous: the family
/// genuinely changes the neighbor function, so the *placements* (disk
/// images) of the same key set differ between families even though the
/// results agree.
#[test]
fn families_place_records_differently() {
    let keys: Vec<u64> = (0..32u64).map(|i| i * 1031).collect();
    let mut images = Vec::new();
    for family in FamilyKind::ALL {
        let f = frontend_with("basic", family);
        let entries = padded_entries(&f, &keys);
        let dict = (f.build)(entries.len(), &entries, suite_seed());
        images.push(disk_image(dict.disks().expect("basic exposes its array")));
    }
    for (i, a) in images.iter().enumerate() {
        for b in &images[i + 1..] {
            assert_ne!(a, b, "two families produced identical disk images");
        }
    }
}
