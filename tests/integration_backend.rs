//! Differential suite for the storage-backend seam: every test drives an
//! identical deterministic workload against a [`pdm::MemBackend`] array
//! and a [`pdm::FileBackend`] array (one file + worker thread per disk in
//! a temp directory) and demands *bit-compatible* behaviour — identical
//! physical images via [`pdm::DiskArray::snapshot`], identical
//! [`pdm::IoStats`], identical fault healths, and identical crash-point
//! recovery. Fault injection, checksums, and the journal all live above
//! the [`pdm::StorageBackend`] trait, so no observable behaviour may
//! depend on which medium is underneath.

use pdm::{
    BlockAddr, DiskArray, FaultPlan, FileBackend, FileBackendOptions, IoStats, MemBackend,
    PdmConfig, ReadOptions, Word, WriteOptions,
};
use std::path::{Path, PathBuf};

const D: usize = 4;
const B: usize = 8;
const BLOCKS: usize = 16;

fn cfg() -> PdmConfig {
    PdmConfig::new(D, B)
}

/// A per-test temp directory (removed at the start so reruns are clean;
/// removed again at the end on success).
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pdm-diff-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mem-backed and a file-backed array with identical geometry.
fn pair(tag: &str) -> (DiskArray, DiskArray, PathBuf) {
    let mem = DiskArray::new(cfg(), BLOCKS);
    let dir = tmpdir(tag);
    let fb = FileBackend::create(&dir, D, B, BLOCKS, FileBackendOptions::default())
        .expect("create file backend");
    let file = DiskArray::with_backend(cfg(), Box::new(fb)).expect("geometry matches");
    (mem, file, dir)
}

/// Reopen the file-backed array from its directory alone.
fn reopen(dir: &Path) -> DiskArray {
    let fb = FileBackend::open(dir, FileBackendOptions::default()).expect("reopen file backend");
    DiskArray::with_backend(cfg(), Box::new(fb)).expect("geometry matches")
}

/// splitmix64 — a deterministic workload generator with no rand crate.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn payload(seed: u64) -> Vec<Word> {
    let mut s = seed;
    (0..B).map(|_| mix(&mut s)).collect()
}

/// The shared mixed workload: checked writes, verified reads, shared
/// reads (charged back by the owner), a grow, plain reads — every façade
/// of the options API. Returns the final counters.
fn drive(disks: &mut DiskArray) -> IoStats {
    disks.enable_integrity();
    let mut s = 0xD15C_0B5E_u64;
    for round in 0..12u64 {
        let mut writes: Vec<(BlockAddr, Vec<Word>)> = Vec::new();
        for _ in 0..3 {
            let d = (mix(&mut s) as usize) % D;
            let blk = (mix(&mut s) as usize) % disks.blocks_on(d);
            let addr = BlockAddr::new(d, blk);
            if !writes.iter().any(|(a, _)| *a == addr) {
                writes.push((addr, payload(mix(&mut s))));
            }
        }
        let refs: Vec<(BlockAddr, &[Word])> =
            writes.iter().map(|(a, v)| (*a, v.as_slice())).collect();
        let healths = disks.write(&refs, WriteOptions::checked()).healths;
        assert!(healths.iter().all(|h| h.is_ok()), "round {round}");

        let addrs: Vec<BlockAddr> = (0..D)
            .map(|d| BlockAddr::new(d, (mix(&mut s) as usize) % disks.blocks_on(d)))
            .collect();
        let out = disks.read(&addrs, ReadOptions::verified());
        assert!(out.all_ok(), "round {round}");

        // Shared read through &self, charged back by the owner — the
        // counters must advance exactly as an owned read would.
        let shared = disks.read_shared(&addrs, ReadOptions::default());
        let cost = shared.cost;
        disks.charge_cost(cost);

        if round == 6 {
            disks.grow(BLOCKS + 4);
            let above = BlockAddr::new(1, BLOCKS + 1);
            let img = payload(77);
            disks.write(&[(above, img.as_slice())], WriteOptions::default());
            assert_eq!(disks.read(&[above], ReadOptions::default()).into_blocks()[0], payload(77));
        }
    }
    disks.stats()
}

#[test]
fn mixed_workload_is_bit_compatible_across_backends() {
    let (mut mem, mut file, dir) = pair("mixed");
    let stats_mem = drive(&mut mem);
    let stats_file = drive(&mut file);
    assert_eq!(stats_mem, stats_file, "IoStats must not depend on the medium");
    assert_eq!(
        mem.snapshot(),
        file.snapshot(),
        "physical images must be byte-identical"
    );
    drop(file);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_image_survives_reopen_and_matches_mem() {
    let (mut mem, mut file, dir) = pair("reopen");
    drive(&mut mem);
    drive(&mut file);
    let expected = mem.snapshot();
    drop(file); // joins the per-disk workers; everything must be on disk
    let reopened = reopen(&dir);
    assert_eq!(reopened.snapshot(), expected);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected faults act *above* the backend, so a dead disk, a transient
/// read, a torn write, and bit rot must produce the same healths and the
/// same surviving image on both media.
fn drive_faults(disks: &mut DiskArray) -> (Vec<String>, IoStats) {
    disks.enable_integrity();
    // Seed every block so verified reads have checksums to check.
    for d in 0..D {
        for blk in 0..BLOCKS {
            let addr = BlockAddr::new(d, blk);
            let img = payload((d * BLOCKS + blk) as u64);
            disks.write(&[(addr, img.as_slice())], WriteOptions::checked());
        }
    }
    disks.set_fault_plan(
        FaultPlan::new()
            .dead_disk(2)
            .transient_read(1, 1, 2)
            .torn_write(3, 0)
            .bit_rot(0, 5, 17),
    );
    let mut log = Vec::new();
    for round in 0..6u64 {
        let addrs: Vec<BlockAddr> = (0..D)
            .map(|d| BlockAddr::new(d, (round as usize * 3 + d) % BLOCKS))
            .collect();
        let out = disks.read(&addrs, ReadOptions::verified());
        for (a, h) in addrs.iter().zip(&out.healths) {
            log.push(format!("read {}:{} -> {:?}", a.disk, a.block, h));
        }
        let target = BlockAddr::new(3, (round as usize) % BLOCKS);
        let img = payload(round + 900);
        let h = disks.write(&[(target, img.as_slice())], WriteOptions::checked());
        log.push(format!("write {}:{} -> {:?}", target.disk, target.block, h.healths));
    }
    disks.clear_fault_plan();
    (log, disks.stats())
}

#[test]
fn fault_plan_behaves_identically_on_both_backends() {
    let (mut mem, mut file, dir) = pair("faults");
    let (log_mem, stats_mem) = drive_faults(&mut mem);
    let (log_file, stats_file) = drive_faults(&mut file);
    assert_eq!(log_mem, log_file, "fault healths must not depend on the medium");
    assert_eq!(stats_mem, stats_file);
    assert_eq!(mem.snapshot(), file.snapshot());
    drop(file);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-point drill at the backend seam. For every prefix length
/// `k` of the journaled write sequence (3 payload slots + 1 descriptor +
/// 3 in-place writes), crash both arrays after `k` physical writes, then
/// recover each *from its medium alone*: the file array is dropped and
/// reopened from the directory; the mem array is rebuilt from its
/// snapshot image. Both must roll the same way and converge to the same
/// image.
#[test]
fn every_crash_point_recovers_identically_on_both_backends() {
    let targets = [BlockAddr::new(0, 1), BlockAddr::new(0, 2), BlockAddr::new(1, 5)];
    for k in 0..=7u64 {
        let (mut mem, mut file, dir) = pair(&format!("crash{k}"));
        let mut regions = Vec::new();
        for disks in [&mut mem, &mut file] {
            let region = disks.enable_journal_appended(4);
            regions.push(region);
            for &t in &targets {
                disks.write_block(t, &payload(100));
            }
            disks.journal_checkpoint(&[]);
            disks.set_fault_plan(FaultPlan::new().crash_after(k));
            let new: Vec<Vec<Word>> = (0..3).map(|i| payload(200 + i)).collect();
            let writes: Vec<(BlockAddr, &[Word])> = targets
                .iter()
                .zip(&new)
                .map(|(&a, v)| (a, v.as_slice()))
                .collect();
            disks.journaled_write_batch_checked(&writes, &[k]);
        }

        // Process death: only the medium survives.
        let mem_image = mem.snapshot();
        drop(mem);
        drop(file);

        let mut mem2 = DiskArray::with_backend(cfg(), Box::new(MemBackend::from_image(B, mem_image)))
            .expect("geometry matches");
        mem2.reopen_journal(regions[0]);
        let report_mem = mem2.recover();

        let mut file2 = reopen(&dir);
        file2.reopen_journal(regions[1]);
        let report_file = file2.recover();

        let metas_mem: Vec<Vec<Word>> =
            report_mem.replayed.iter().map(|e| e.meta.clone()).collect();
        let metas_file: Vec<Vec<Word>> =
            report_file.replayed.iter().map(|e| e.meta.clone()).collect();
        assert_eq!(metas_mem, metas_file, "crash at {k}: replay divergence");
        assert_eq!(
            report_mem.blocks_rewritten, report_file.blocks_rewritten,
            "crash at {k}"
        );
        assert_eq!(
            mem2.snapshot(),
            file2.snapshot(),
            "crash at {k}: recovered images diverge"
        );

        // All-or-nothing on both media.
        let committed = !metas_mem.is_empty();
        for (i, &t) in targets.iter().enumerate() {
            let want = if committed { payload(200 + i as u64) } else { payload(100) };
            assert_eq!(mem2.read_block(t), want, "crash at {k}");
            assert_eq!(file2.read_block(t), want, "crash at {k}");
        }
        drop(file2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn grow_is_bit_compatible_and_durable() {
    let (mut mem, mut file, dir) = pair("grow");
    for disks in [&mut mem, &mut file] {
        disks.grow(BLOCKS + 8);
        let addr = BlockAddr::new(3, BLOCKS + 7);
        let img = payload(4242);
        disks.write(&[(addr, img.as_slice())], WriteOptions::default());
    }
    assert_eq!(mem.snapshot(), file.snapshot());
    drop(file);
    let reopened = reopen(&dir);
    assert_eq!(reopened.blocks_on(0), BLOCKS + 8);
    assert_eq!(reopened.snapshot(), mem.snapshot());
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `sync_on_write` and explicit flush barriers change durability timing,
/// never contents: a fsync-on-commit file array must still match mem.
#[test]
fn sync_on_write_does_not_change_contents() {
    let mut mem = DiskArray::new(cfg(), BLOCKS);
    let dir = tmpdir("sync");
    let fb = FileBackend::create(
        &dir,
        D,
        B,
        BLOCKS,
        FileBackendOptions::default().sync_on_write(true),
    )
    .expect("create file backend");
    let mut file = DiskArray::with_backend(cfg(), Box::new(fb)).expect("geometry matches");
    let stats_mem = drive(&mut mem);
    let stats_file = drive(&mut file);
    let ticket = file.flush_begin();
    file.flush_join(ticket);
    assert_eq!(stats_mem, stats_file);
    assert_eq!(mem.snapshot(), file.snapshot());
    drop(file);
    let _ = std::fs::remove_dir_all(&dir);
}
