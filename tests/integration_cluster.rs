//! Cluster-tier chaos drills (`pdm-cluster`): kill a node mid-traffic
//! and prove the three PR-level claims — zero acked writes lost,
//! bounded shard movement on the epoch bump, and byte-identical
//! re-replication of a restarted node via journaled catch-up.
//!
//! Randomization follows the suite convention: deterministic by
//! default, `PROPTEST_SEED=<u64>` rotates the corpus (CI sets it per
//! run).

use expander::mix::mix64;
use pdm_cluster::{ClusterConfig, ClusterMap, ClusterNode, ClusterRouter, NodeConfig, RetryPolicy, RouterConfig};
use pdm_server::protocol::{WireRequest, WireResponse};
use pdm_server::{Op, Reply, TcpClient};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn suite_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_0801)
}

/// Router tuning for drills: quick failure detection on a dead peer,
/// but a generous response deadline so a *live* node on a loaded CI
/// worker is never spuriously distrusted (the durability invariant
/// leans on live replicas acking).
fn drill_router_config() -> RouterConfig {
    RouterConfig {
        retry: RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
        },
        breaker_threshold: 2,
        // Deliberately short cooldown: the breaker half-opens almost
        // immediately, so the drills prove the *sticky suspect latch*
        // (not breaker timing) is what keeps a node that missed writes
        // out of the read and ack sets until it is re-imaged.
        breaker_cooldown: Duration::from_millis(20),
        connect_timeout: Duration::from_secs(1),
        request_deadline: Duration::from_secs(30),
        write_quorum: 1,
        read_cache: None,
    }
}

/// Start one node per weight, each hosting the shards the epoch-0 map
/// assigns it.
fn start_cluster(cfg: ClusterConfig, weights: &[u32]) -> (Vec<Option<ClusterNode>>, Vec<SocketAddr>) {
    let map = ClusterMap::build(cfg, weights);
    let nodes: Vec<Option<ClusterNode>> = (0..weights.len())
        .map(|n| {
            Some(
                ClusterNode::start("127.0.0.1:0", cfg, &map.shards_on(n), NodeConfig::default())
                    .expect("node start"),
            )
        })
        .collect();
    let addrs = nodes
        .iter()
        .map(|n| n.as_ref().unwrap().local_addr())
        .collect();
    (nodes, addrs)
}

/// Pull a shard's frozen image straight off a node (the migration
/// export opcodes, driven by hand).
fn pull_image(addr: SocketAddr, shard: u32) -> Vec<u8> {
    let mut client = TcpClient::connect(addr).expect("connect for export");
    let mut image = Vec::new();
    let mut chunk = 0u32;
    loop {
        match client
            .request(&WireRequest::MigrateExport { shard, chunk })
            .expect("export request")
        {
            WireResponse::ExportChunk {
                total,
                chunk: got,
                bytes,
            } => {
                assert_eq!(got, chunk);
                image.extend_from_slice(&bytes);
                chunk += 1;
                if chunk == total {
                    return image;
                }
            }
            other => panic!("export answered {other:?}"),
        }
    }
}

/// The headline drill: 4 nodes, k = 2, writers hammering the router
/// while one node is killed mid-traffic. Every write the router acked
/// must read back exactly afterwards — first in the degraded cluster,
/// then again after the epoch bump re-replicates the dead node's
/// shards — and the bump must move only a bounded fraction of replica
/// slots (the cluster analogue of Lemma 3).
#[test]
fn chaos_drill_node_kill_mid_traffic_loses_no_acked_writes() {
    const NODES: usize = 4;
    const VICTIM: usize = 1;
    const WRITERS: u64 = 3;
    const KEYS_PER_WRITER: u64 = 250;

    let cfg = ClusterConfig {
        shards: 16,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (mut nodes, addrs) = start_cluster(cfg, &weights);
    let router = ClusterRouter::new(cfg, &addrs, &weights, drill_router_config());

    let seed = suite_seed();
    let acked: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let router = &router;
            let acked = &acked;
            let stop = &stop;
            s.spawn(move || {
                for i in 0..KEYS_PER_WRITER {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Distinct keys per writer (disjoint high bits),
                    // spread by the rotated seed and kept inside the
                    // cluster's 2^21 universe.
                    let key = (mix64(seed ^ (t * KEYS_PER_WRITER + i)) % (1 << 19))
                        | (t << 19);
                    // An unacked write promises nothing; the drill
                    // only audits acked ones.
                    if router.insert(key, &[mix64(key)]).is_ok() {
                        acked.lock().unwrap().push(key);
                    }
                }
            });
        }
        // Kill the victim while the writers are mid-stream.
        std::thread::sleep(Duration::from_millis(120));
        nodes[VICTIM].take().unwrap().kill();
    });
    let acked = acked.into_inner().unwrap();
    assert!(
        acked.len() > 100,
        "drill needs real traffic, got {} acked writes",
        acked.len()
    );

    // Degraded availability: every acked write reads back exactly with
    // the victim still dead and the map not yet bumped.
    for &key in &acked {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("degraded lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "acked write {key} lost in degraded cluster"
        );
    }

    // Epoch bump + journaled re-replication onto the survivors.
    let report = router.fail_node(VICTIM).expect("fail_node");
    assert!(
        report.failed.is_empty(),
        "re-replication failures: {:?}",
        report.failed
    );
    assert_eq!(report.delta.epoch, 1, "one epoch bump");
    let moved = report.delta.movement_fraction(cfg.shards, cfg.replication);
    assert!(
        moved <= 1.0 / NODES as f64 + 0.10,
        "epoch bump moved {moved:.3} of replica slots, bound is 1/{NODES} + slack"
    );

    // Post-repair: still every acked write, exactly.
    for &key in &acked {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("post-repair lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "acked write {key} lost after repair"
        );
    }
    let stats = router.stats();
    assert_eq!(stats.writes_acked, acked.len() as u64);
    assert!(
        stats.transport_failures > 0,
        "the kill must actually have been absorbed by the health machinery"
    );

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// A restarted (empty) node rejoins at a fresh address: the epoch bumps
/// again, the map hands it back only its fair share, and journaled
/// catch-up leaves its shard images **byte-identical** to their
/// primaries' frozen images.
#[test]
fn restarted_node_rereplicates_byte_identically() {
    const NODES: usize = 3;
    const VICTIM: usize = 2;

    let cfg = ClusterConfig {
        shards: 8,
        replication: 2,
        shard_capacity: 256,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (mut nodes, addrs) = start_cluster(cfg, &weights);
    let router = ClusterRouter::new(cfg, &addrs, &weights, drill_router_config());

    let seed = suite_seed().wrapping_add(1);
    let keys: Vec<u64> = (0..300u64).map(|i| mix64(seed ^ i) % (1 << 21)).collect();
    for &key in &keys {
        // Colliding mixed keys are fine to skip — the audit below walks
        // the same list.
        let _ = router.insert(key, &[mix64(key ^ 0xABCD)]);
    }

    nodes[VICTIM].take().unwrap().kill();
    let down = router.fail_node(VICTIM).expect("fail_node");
    assert!(down.failed.is_empty(), "failures: {:?}", down.failed);

    // The node comes back empty on a fresh port.
    let reborn = ClusterNode::start("127.0.0.1:0", cfg, &[], NodeConfig::default()).unwrap();
    let up = router
        .restore_node(VICTIM, reborn.local_addr())
        .expect("restore_node");
    assert!(up.failed.is_empty(), "failures: {:?}", up.failed);
    assert_eq!(up.delta.epoch, 2);
    assert!(
        !up.delta.moves.is_empty(),
        "the restored node must win back replica slots"
    );
    let moved = up.delta.movement_fraction(cfg.shards, cfg.replication);
    assert!(moved <= 1.0 / NODES as f64 + 0.15, "restore moved {moved:.3}");

    // Byte-identity: every shard handed to the reborn node must export
    // exactly the image its primary exports. (Quiescing both sides is
    // what the migration opcodes do anyway; nothing has written since.)
    let map = router.map_snapshot();
    for mv in &up.delta.moves {
        assert_eq!(mv.to, VICTIM, "restore moves target the restored node");
        let primary = map.primary(mv.shard);
        assert_ne!(primary, VICTIM, "survivors stay ahead in replica order");
        let primary_image = pull_image(addrs[primary], mv.shard);
        let reborn_image = pull_image(reborn.local_addr(), mv.shard);
        assert_eq!(
            primary_image, reborn_image,
            "shard {} image diverges on the restored node",
            mv.shard
        );
        assert!(!primary_image.is_empty());
    }

    // And the data is still exactly served (some reads now land on the
    // reborn primary-or-replica).
    for &key in &keys {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("lookup of {key}: {e}")),
            Some(vec![mix64(key ^ 0xABCD)]),
            "write {key} lost across kill + restore"
        );
    }

    reborn.shutdown();
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// The durability latch is sticky across breaker cooldowns: a node
/// that missed writes stays out of the read set even after its breaker
/// half-opens and a live process answers at its address. Without the
/// latch, the half-open probe would re-trust the stale node and serve
/// `None` for acknowledged keys.
#[test]
fn suspect_latch_outlives_breaker_cooldown() {
    const NODES: usize = 3;
    const VICTIM: usize = 1;

    let cfg = ClusterConfig {
        shards: 8,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (mut nodes, addrs) = start_cluster(cfg, &weights);
    let router = ClusterRouter::new(cfg, &addrs, &weights, drill_router_config());

    let seed = suite_seed().wrapping_add(2);
    let mut acked: Vec<u64> = Vec::new();
    for i in 0..150u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        if router.insert(key, &[mix64(key)]).is_ok() {
            acked.push(key);
        }
    }

    // Kill the victim; the next writes routed to its shards proceed
    // without it, which must latch it suspect.
    nodes[VICTIM].take().unwrap().kill();
    for i in 150..300u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        if router.insert(key, &[mix64(key)]).is_ok() {
            acked.push(key);
        }
    }
    assert!(
        router.node_suspect(VICTIM),
        "a write proceeded without the dead victim; it must be latched"
    );

    // A stale impostor comes alive at the victim's slot: it hosts the
    // victim's shards but holds none of the acknowledged data. Pointing
    // the slot at it makes any breaker probe *succeed* — the exact
    // hazard the latch exists for.
    let map = ClusterMap::build(cfg, &weights);
    let stale =
        ClusterNode::start("127.0.0.1:0", cfg, &map.shards_on(VICTIM), NodeConfig::default())
            .expect("stale twin start");
    router.set_node_addr(VICTIM, stale.local_addr());

    // Let the (short) cooldown pass so the breaker would half-open.
    std::thread::sleep(Duration::from_millis(60));

    // Every acknowledged write still reads back exactly: the latched
    // node serves nothing, regardless of breaker state.
    for &key in &acked {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("latched lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "acked write {key} lost to a half-open probe of a stale node"
        );
    }

    // repair() selects on the sticky latch, not the transient breaker
    // state — called long after the cooldown, it must still find the
    // victim and drive the epoch bump + re-replication.
    let reports = router.repair().expect("repair");
    assert_eq!(reports.len(), 1, "repair must declare exactly the victim dead");
    assert!(reports[0].failed.is_empty(), "failures: {:?}", reports[0].failed);
    for &key in &acked {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("post-repair lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "acked write {key} lost after repair"
        );
    }

    stale.shutdown();
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// A replica answering `WrongShard` (the re-replication window: it is
/// mapped but its image has not installed) must not fail the write —
/// the router skips it like an unreachable one and lets the quorum
/// check decide, without latching it suspect.
#[test]
fn write_skips_wrong_shard_replicas_instead_of_failing() {
    let cfg = ClusterConfig {
        shards: 8,
        replication: 2,
        shard_capacity: 256,
        ..ClusterConfig::default()
    };
    let weights = [1u32, 1];
    let map = ClusterMap::build(cfg, &weights);
    // Node 0 hosts everything; node 1 is mapped as a replica of every
    // shard but hosts nothing yet — every operation sent to it answers
    // WrongShard.
    let full = ClusterNode::start("127.0.0.1:0", cfg, &map.shards_on(0), NodeConfig::default())
        .expect("full node start");
    let empty =
        ClusterNode::start("127.0.0.1:0", cfg, &[], NodeConfig::default()).expect("empty node");
    let router = ClusterRouter::new(
        cfg,
        &[full.local_addr(), empty.local_addr()],
        &weights,
        drill_router_config(),
    );

    let keys: Vec<u64> = (0..60u64).map(|i| mix64(0xBADD ^ i) % (1 << 21)).collect();
    for &key in &keys {
        router
            .insert(key, &[mix64(key)])
            .unwrap_or_else(|e| panic!("insert of {key} must ack on the data holder: {e}"));
    }
    for &key in &keys {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "write {key} must be served past the WrongShard replica"
        );
    }
    assert!(
        !router.node_suspect(1),
        "a WrongShard answer is not unreachability; the replica stays trusted"
    );
    assert_eq!(router.stats().writes_acked, keys.len() as u64);

    full.shutdown();
    empty.shutdown();
}

/// Inserts are idempotent at the cluster level: a duplicate-key refusal
/// certifies the key is durably present on that replica and counts as
/// its ack, so a caller retry of a partially applied insert (and a
/// plain re-insert) acknowledges instead of hard-failing.
#[test]
fn duplicate_insert_acks_idempotently() {
    let cfg = ClusterConfig {
        shards: 4,
        replication: 2,
        shard_capacity: 128,
        ..ClusterConfig::default()
    };
    let weights = [1u32, 1];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let router = ClusterRouter::new(cfg, &addrs, &weights, drill_router_config());

    router.insert(42, &[7]).expect("first insert");
    router
        .insert(42, &[7])
        .expect("re-inserting an existing key must ack, not refuse");
    // A duplicate ack never overwrites: the first write's satellite wins.
    router.insert(42, &[9]).expect("duplicate with different satellite still acks");
    assert_eq!(router.lookup(42).expect("lookup"), Some(vec![7]));
    assert_eq!(router.stats().writes_acked, 3);
    assert_eq!(router.stats().writes_refused, 0);

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// Weighted placement respects capacity heterogeneity end to end: a
/// weight-3 node must host roughly three times the replica slots of a
/// weight-1 node, and the cluster must still serve through a kill of
/// the *heaviest* node.
#[test]
fn weighted_cluster_survives_losing_its_heaviest_node() {
    let cfg = ClusterConfig {
        shards: 24,
        replication: 2,
        shard_capacity: 256,
        ..ClusterConfig::default()
    };
    let weights = [3u32, 1, 1, 1];
    let (mut nodes, addrs) = start_cluster(cfg, &weights);

    let map = ClusterMap::build(cfg, &weights);
    let heavy = map.shards_on(0).len();
    let light: usize = (1..4).map(|n| map.shards_on(n).len()).sum::<usize>() / 3;
    assert!(
        heavy > light,
        "weight-3 node hosts {heavy} replica slots, weight-1 average {light}"
    );

    let router = ClusterRouter::new(cfg, &addrs, &weights, drill_router_config());
    let keys: Vec<u64> = (0..200u64).map(|i| mix64(0xFEED ^ i) % (1 << 21)).collect();
    for &key in &keys {
        let _ = router.insert(key, &[key]);
    }
    nodes[0].take().unwrap().kill();
    let report = router.fail_node(0).expect("fail_node");
    assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
    for &key in &keys {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("lookup of {key}: {e}")),
            Some(vec![key]),
            "write {key} lost with the heavy node down"
        );
    }
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// Client-side read cache vs failover: a value cached under epoch 0
/// must never be served once the map moves to epoch 1 — even when the
/// cluster's truth changed behind the router's back during the
/// transition. A stale cache would answer the old satellite below; the
/// epoch bump has to drop it.
#[test]
fn read_cache_never_serves_pre_failover_value_after_epoch_bump() {
    const NODES: usize = 3;
    let cfg = ClusterConfig {
        shards: 8,
        replication: 2,
        shard_capacity: 256,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (mut nodes, addrs) = start_cluster(cfg, &weights);
    let router = ClusterRouter::new(
        cfg,
        &addrs,
        &weights,
        RouterConfig {
            read_cache: Some(pdm_cache::CacheConfig::default()),
            ..drill_router_config()
        },
    );

    let key = 0xC0FFEE % (1 << 21);
    let shard = cfg.shard_of(key);
    router.insert(key, &[0xAA]).expect("insert");

    // Two lookups feed the admission sketch (promote on observed count,
    // not first touch); the third is served from the cache.
    for _ in 0..2 {
        assert_eq!(router.lookup(key).expect("warm lookup"), Some(vec![0xAA]));
    }
    assert_eq!(router.lookup(key).expect("cached lookup"), Some(vec![0xAA]));
    assert_eq!(
        router.stats().reads_cached,
        1,
        "third lookup must be a cache hit"
    );

    // Kill the shard's primary mid-life and drive the failover.
    let victim = {
        let map = router.map_snapshot();
        map.replicas(shard)[0]
    };
    nodes[victim].take().unwrap().kill();
    let report = router.fail_node(victim).expect("fail_node");
    assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
    assert_eq!(report.delta.epoch, 1, "failover bumps to epoch 1");

    // The truth changes under the new epoch behind the router's back —
    // another client of the same cluster deletes the key.
    let epoch = router.epoch();
    let mut deleted = 0;
    for node in nodes.iter().flatten() {
        let mut client = TcpClient::connect(node.local_addr()).expect("connect");
        match client
            .request(&WireRequest::ShardOp {
                shard,
                epoch,
                op: Op::Delete(key),
            })
            .expect("out-of-band delete")
        {
            WireResponse::Reply(Reply::Deleted(was)) => deleted += u32::from(was),
            // Nodes not hosting the shard refuse; that is fine.
            WireResponse::Err(_) => {}
            other => panic!("delete answered {other:?}"),
        }
    }
    assert!(deleted >= 1, "some replica must have held the key");

    // The cached pre-failover value must be gone: the router re-reads
    // the (new) replica set and observes the delete.
    assert_eq!(
        router.lookup(key).expect("post-failover lookup"),
        None,
        "pre-failover cached value served after the epoch bump"
    );
    assert_eq!(
        router.stats().reads_cached,
        1,
        "the post-failover lookup must not have been a cache hit"
    );

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}
