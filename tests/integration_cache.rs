//! The hot-key cache tier must be **invisible**: layering [`CachedDict`]
//! over any front-end may change costs, never answers. Three angles:
//!
//! 1. **Differential, every front-end** (proptest): the cached wrapper
//!    and a plain twin built from the same entries and seed run the same
//!    generated mixed stream (repeated lookups so hits and negative hits
//!    actually occur, inserts, deletes, batch sweeps). Every answer and
//!    every error must match, under an aggressive config (admit on first
//!    touch, tiny budget, so admission *and* eviction churn) and under
//!    the default config.
//! 2. **Crash points**: a warmed cache over the journaled dynamic front
//!    is cut at *every* physical write of a mutation workload. After the
//!    reboot (journal superblock re-read from the image alone) and
//!    [`Dict::recover`] — which drops the cache whenever replay touched
//!    the image — every lookup must agree with a cache-less reopen of
//!    the same image, twice (the second pass reads through the refilled
//!    cache). No crash point may yield a stale hit: not the pre-crash
//!    value of a cut mutation, not a negatively-cached absence for a key
//!    whose insert landed.
//! 3. **Engine level**: a [`ServeEngine`] with the cache tier enabled
//!    answers a deterministic client stream reply-for-reply identically
//!    to a cache-off engine, while actually serving from the cache
//!    (hits > 0).

mod harness;

use harness::{dense_keys, frontend, frontends, sat, KEY_SPACE};
use pdm::{FaultPlan, Word};
use pdm_cache::{CacheConfig, CachedDict};
use pdm_dict::{Dict, DictError};
use pdm_server::{EngineConfig, ServeEngine, ServeError};
use proptest::prelude::*;

/// Aggressive cache shape: first-touch admission, a budget small enough
/// that the generated key sets overflow it (evictions), tiny sketch
/// (aging kicks in). Maximizes cache state churn per test case.
fn churn_config() -> CacheConfig {
    CacheConfig::default()
        .with_admit_threshold(1)
        .with_budget_bytes(2_048)
        .with_sketch_keys(64)
}

/// Strip costs: answers and errors are the contract, I/O counts are not.
fn flat<T>(r: Result<T, DictError>) -> Result<(), DictError> {
    r.map(|_| ())
}

/// One generated step over the key pool (index is resolved mod pool).
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Look the key up twice — the repeat is what cache hits are made of.
    Lookup(usize),
    Insert(usize),
    Delete(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0usize..64).prop_map(Step::Lookup),
            1 => (0usize..64).prop_map(Step::Insert),
            1 => (0usize..64).prop_map(Step::Delete),
        ],
        30..90,
    )
}

fn key_set() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::hash_set(0u64..KEY_SPACE, 8..24).prop_map(|s| {
        let mut v: Vec<u64> = s.into_iter().collect();
        v.sort_unstable();
        v
    })
}

/// Run `steps` against the cached wrapper and its plain twin; every
/// answer must match. `keys` are preloaded; half the pool is fresh keys
/// (insert targets / certified misses).
fn differential(
    f: &harness::Frontend,
    cfg: CacheConfig,
    keys: &[u64],
    steps: &[Step],
) -> Result<(), TestCaseError> {
    let entries = harness::padded_entries(f, keys);
    let cap = entries.len() + 48;
    let seed = 0xD1FF ^ keys.len() as u64;
    let mut plain = (f.build)(cap, &entries, seed);
    let mut cached = CachedDict::new((f.build)(cap, &entries, seed), cfg);

    let mut pool: Vec<u64> = keys.to_vec();
    pool.extend((0..keys.len().max(8) as u64).map(|i| KEY_SPACE + 10_000 + i));

    let sweep = |plain: &mut Box<dyn Dict + Send>,
                 cached: &mut CachedDict,
                 pool: &[u64]|
     -> Result<(), TestCaseError> {
        for &k in pool {
            prop_assert_eq!(
                cached.lookup(k).satellite,
                plain.lookup(k).satellite,
                "sweep diverged at key {} on {}",
                k,
                f.name
            );
        }
        let (a, _) = cached.lookup_batch(pool);
        let (b, _) = plain.lookup_batch(pool);
        prop_assert_eq!(a, b, "batch sweep diverged on {}", f.name);
        Ok(())
    };

    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Lookup(i) => {
                let k = pool[i % pool.len()];
                for pass in 0..2 {
                    prop_assert_eq!(
                        cached.lookup(k).satellite,
                        plain.lookup(k).satellite,
                        "lookup({}) pass {} diverged on {}",
                        k,
                        pass,
                        f.name
                    );
                }
            }
            Step::Insert(i) => {
                let k = pool[i % pool.len()];
                let s = sat(k, f.sigma);
                prop_assert_eq!(
                    flat(cached.insert(k, &s)),
                    flat(plain.insert(k, &s)),
                    "insert({}) diverged on {}",
                    k,
                    f.name
                );
            }
            Step::Delete(i) => {
                let k = pool[i % pool.len()];
                prop_assert_eq!(
                    cached.delete(k).map(|(was, _)| was),
                    plain.delete(k).map(|(was, _)| was),
                    "delete({}) diverged on {}",
                    k,
                    f.name
                );
            }
        }
        if i % 24 == 23 {
            sweep(&mut plain, &mut cached, &pool)?;
        }
    }
    sweep(&mut plain, &mut cached, &pool)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cache on ≡ cache off, for every front-end, under the churn config
    /// and the default config.
    #[test]
    fn cached_wrapper_is_invisible_on_every_frontend(
        keys in key_set(),
        steps in steps(),
    ) {
        for f in frontends() {
            differential(&f, churn_config(), &keys, &steps)?;
            differential(&f, CacheConfig::default(), &keys, &steps)?;
        }
    }
}

/// One crash cycle at `crash_at` physical writes into the mutation
/// workload. Returns whether the crash fired (the caller's loop drains
/// the whole write range).
fn crash_cycle(crash_at: u64) -> bool {
    let mut f = frontend("dynamic_journaled");
    let reopen = f.reopen.take().expect("journaled front declares reopen");
    let keys = dense_keys(24);
    let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, sat(k, f.sigma))).collect();
    let cap = entries.len() + 32;
    let seed = 0xCAC4E;
    let mut cached = CachedDict::new(
        (f.build)(cap, &entries, seed),
        CacheConfig::default().with_admit_threshold(1),
    );

    // Warm the cache: every present key resident, and the keys about to
    // be inserted negatively cached — the exact entries a buggy
    // invalidation path would serve stale.
    let fresh: Vec<u64> = (0..6).map(|i| KEY_SPACE + 5_000 + i).collect();
    for &k in keys.iter().chain(&fresh) {
        let _ = cached.lookup(k);
        let _ = cached.lookup(k);
    }
    let warm = cached.cache_counters();
    assert!(warm.admitted > 0, "present keys must be resident pre-crash");

    // The mutation workload the crash cuts: inserts of the negatively
    // cached keys, deletes of resident ones.
    cached
        .disks_mut()
        .unwrap()
        .set_fault_plan(FaultPlan::new().crash_after(crash_at));
    for (i, &k) in fresh.iter().enumerate() {
        let _ = cached.insert(k, &sat(k, f.sigma));
        if i < 3 {
            let _ = cached.delete(keys[(i * 7) % keys.len()]);
        }
    }
    let fired = cached.disks().unwrap().crash_fired();

    // Reboot: dropped writes stay dropped; only the image survives.
    let image = {
        let disks = cached.disks_mut().unwrap();
        disks.clear_fault_plan();
        disks.clone()
    };
    // Ground truth: a cache-less reopen of the same image.
    let mut truth = reopen(cap, seed, image.clone());

    // The warm wrapper recovers in place: adopt the on-disk superblock
    // (not the dead process's cursors), replay, and — whenever replay
    // touched the image — drop the cache wholesale.
    {
        let disks = cached.disks_mut().unwrap();
        let region = disks.journal_region().expect("journaled image");
        disks.reopen_journal(region);
    }
    let report = cached.recover();
    if !report.is_clean() {
        assert!(
            cached.cache().is_empty(),
            "replay touched the image but the cache survived (crash at {crash_at})"
        );
    }

    // No stale hit at any key, twice: the first pass compares against
    // truth (and refills), the second reads through the refilled cache.
    for pass in 0..2 {
        for &k in keys.iter().chain(&fresh) {
            let want = truth.lookup(k).satellite;
            if let Some(s) = &want {
                assert_eq!(s, &sat(k, f.sigma), "torn satellite for {k} at {crash_at}");
            }
            assert_eq!(
                cached.lookup(k).satellite,
                want,
                "stale answer for key {k} on pass {pass} after crash at write {crash_at}"
            );
        }
    }
    fired
}

/// Every crash point of the mutation workload, exhaustively: stop only
/// when a cycle completes without the crash firing (the write range is
/// drained).
#[test]
fn recovered_cache_serves_no_stale_hit_at_any_crash_point() {
    let mut crash_at = 0u64;
    loop {
        if !crash_cycle(crash_at) {
            break;
        }
        crash_at += 1;
        assert!(crash_at < 2_000, "crash point never drained");
    }
    assert!(crash_at > 0, "workload must cross at least one crash point");
}

/// Engine-level differential: cache-on and cache-off engines answer a
/// deterministic mixed stream identically, and the cached engine really
/// does serve from RAM.
#[test]
fn engine_replies_match_with_and_without_cache() {
    let build = || {
        let f = frontend("dynamic");
        let keys = dense_keys(32);
        let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, sat(k, f.sigma))).collect();
        (f.sigma, (f.build)(128, &entries, 0xE46))
    };
    let (sigma, shard) = build();
    let on = ServeEngine::new(
        vec![shard],
        EngineConfig::default().with_cache(CacheConfig::default().with_admit_threshold(1)),
    );
    let (_, shard) = build();
    let off = ServeEngine::new(vec![shard], EngineConfig::default());

    let keys = dense_keys(32);
    let mut state = 0x5EED_u64;
    for i in 0..400u64 {
        state = expander::mix::mix64(state.wrapping_add(1));
        let k = keys[(state % keys.len() as u64) as usize];
        let absent = KEY_SPACE + 20_000 + (state % 8);
        type OpResult = Result<Option<Vec<Word>>, ServeError>;
        let (a, b): (OpResult, OpResult) = match i % 5 {
            0..=2 => (on.client().lookup(k), off.client().lookup(k)),
            3 => (on.client().lookup(absent), off.client().lookup(absent)),
            _ => {
                if state & 1 == 0 {
                    let s = sat(absent, sigma);
                    (
                        on.client().insert(absent, &s).map(|()| None),
                        off.client().insert(absent, &s).map(|()| None),
                    )
                } else {
                    (
                        on.client().delete(absent).map(|was| Some(vec![was as Word])),
                        off.client().delete(absent).map(|was| Some(vec![was as Word])),
                    )
                }
            }
        };
        assert_eq!(a, b, "engines diverged at op {i}");
    }
    let stats = on.stats();
    assert!(
        stats.cache_hits > 0,
        "the cached engine never actually served from RAM: {stats:?}"
    );
    drop(on.shutdown());
    drop(off.shutdown());
}
