//! Cross-module integration tests of the PDM substrate: striping, record
//! files, external sorting, and model-variant accounting working together.

use pdm::{
    external_sort, sort_io_bound, BlockAddr, DiskArray, KeyedRecord, Model, PdmConfig, ReadOptions,
    RecordFile, RecordLayout, StripedView,
};
use proptest::prelude::*;

#[test]
fn sort_of_file_written_via_striping_is_correct_and_accounted() {
    let cfg = PdmConfig::new(4, 16).with_mem_words(512);
    let mut disks = DiskArray::new(cfg, 0);
    let n = 3000usize;
    let mut file = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(2), n);
    let recs: Vec<KeyedRecord> = (0..n as u64)
        .map(|i| KeyedRecord::new((i * 48_271) % 65_537, vec![i, i * 2]))
        .collect();
    file.write_all(&mut disks, &recs);

    let before = disks.stats().parallel_ios;
    let out = external_sort(&mut disks, &file);
    let sorted = out.output.read_all(&disks);
    assert_eq!(sorted.len(), n);
    assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
    // Satellite integrity through the sort.
    for r in &sorted {
        assert_eq!(r.satellite[1], r.satellite[0] * 2);
    }
    // The returned cost covers the sort itself (the read-back above is
    // extra), and sits within a small factor of the textbook bound.
    assert!(out.cost.parallel_ios <= disks.stats().parallel_ios - before);
    assert!(out.cost.parallel_ios > 0);
    let bound = sort_io_bound(&cfg, n, 3);
    assert!(out.cost.parallel_ios <= 4 * bound);
}

#[test]
fn head_model_never_costs_more_than_parallel_disk_model() {
    let mk = |model| {
        let cfg = PdmConfig::new(4, 8).with_model(model);
        let mut disks = DiskArray::new(cfg, 16);
        // A deliberately skewed batch: five blocks on disk 0, one elsewhere.
        let addrs = [
            BlockAddr::new(0, 0),
            BlockAddr::new(0, 1),
            BlockAddr::new(0, 2),
            BlockAddr::new(0, 3),
            BlockAddr::new(0, 4),
            BlockAddr::new(1, 0),
        ];
        let _ = disks.read(&addrs, ReadOptions::default()).into_blocks();
        disks.stats().parallel_ios
    };
    let pd = mk(Model::ParallelDisk);
    let head = mk(Model::ParallelDiskHead);
    assert_eq!(pd, 5);
    assert_eq!(head, 2);
}

#[test]
fn striped_view_and_record_file_agree_on_layout() {
    let mut disks = DiskArray::new(PdmConfig::new(2, 8), 0);
    let mut file = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(0), 16);
    let recs: Vec<KeyedRecord> = (100..116).map(|k| KeyedRecord::new(k, vec![])).collect();
    file.write_all(&mut disks, &recs);
    // Reading the raw words back through the striped view must yield the
    // same keys in order.
    let words = StripedView::new(&mut disks).read_words(0, 16);
    assert_eq!(words, (100..116).collect::<Vec<u64>>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// External sort sorts any input and preserves the multiset.
    #[test]
    fn prop_external_sort_is_a_sorting_function(
        keys in proptest::collection::vec(0u64..10_000, 0..400),
        disks_n in 1usize..5,
        block in 4usize..32,
    ) {
        let cfg = PdmConfig::new(disks_n, block);
        let mut disks = DiskArray::new(cfg, 0);
        let mut file = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(1), keys.len());
        let recs: Vec<KeyedRecord> = keys
            .iter()
            .map(|&k| KeyedRecord::new(k, vec![k ^ 0xFF]))
            .collect();
        file.write_all(&mut disks, &recs);
        let out = external_sort(&mut disks, &file);
        let sorted = out.output.read_all(&disks);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let got: Vec<u64> = sorted.iter().map(|r| r.key).collect();
        prop_assert_eq!(got, expect);
        for r in &sorted {
            prop_assert_eq!(r.satellite[0], r.key ^ 0xFF);
        }
    }

    /// Striped word I/O round-trips at any offset and length.
    #[test]
    fn prop_striped_words_roundtrip(
        start in 0usize..200,
        data in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut disks = DiskArray::new(PdmConfig::new(3, 8), 0);
        let mut view = StripedView::new(&mut disks);
        view.ensure_stripes((start + data.len()) / 24 + 2);
        view.write_words(start, &data);
        prop_assert_eq!(view.read_words(start, data.len()), data);
    }

    /// Bit-level copy round-trips through arbitrary offsets.
    #[test]
    fn prop_bit_copy_roundtrip(
        src_off in 0usize..64,
        dst_off in 0usize..64,
        len in 1usize..120,
        seed in any::<u64>(),
    ) {
        let src: Vec<u64> = (0..4).map(|i| seed.wrapping_mul(i + 1)).collect();
        let mut dst = vec![0u64; 4];
        if src_off + len <= 256 && dst_off + len <= 256 {
            pdm::bits::copy_bits(&mut dst, dst_off, &src, src_off, len);
            let a = pdm::bits::extract_bits(&src, src_off, len);
            let b = pdm::bits::extract_bits(&dst, dst_off, len);
            prop_assert_eq!(a, b);
        }
    }
}
