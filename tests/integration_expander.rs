//! Cross-crate integration: expander machinery feeding load balancing and
//! the unique-neighbor construction.

use expander::params::{fields_per_key, lemma3_bound, ExpanderParams, DEFAULT_RIGHT_SLACK};
use expander::unique::{assignments_by_key, peel, unique_neighbors};
use expander::verify::{unique_neighbor_ratio, worst_expansion_sampled};
use expander::{NeighborFn, SeededExpander, TriviallyStriped};
use loadbalance::{GreedyBalancer, LoadStats};
use proptest::prelude::*;

#[test]
fn greedy_balancing_beats_lemma3_bound_on_certified_parameters() {
    // Realistic dictionary parameters: d = 16, v = 8·n·d.
    let d = 16;
    let n = 4096usize;
    let v = (DEFAULT_RIGHT_SLACK as usize) * n * d;
    let g = SeededExpander::new(1 << 40, v / d, d, 0x1E);
    let mut lb = GreedyBalancer::new(&g, 1);
    for i in 0..n as u64 {
        lb.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 40));
    }
    let stats = LoadStats::of(lb.loads());
    let params = ExpanderParams {
        degree: d,
        right_size: v,
        epsilon: 1.0 / 12.0,
        delta: 0.5,
    };
    let bound = lemma3_bound(n, 1, &params).expect("premises hold");
    assert!(
        f64::from(stats.max) <= bound,
        "max load {} exceeds Lemma 3 bound {bound}",
        stats.max
    );
}

#[test]
fn peeling_works_through_the_dictionary_stack() {
    // The same assignment the one-probe construction computes externally,
    // done in memory, then validated against the expander's structure.
    let d = 13;
    let n = 1000usize;
    let g = SeededExpander::new(1 << 40, 8 * n, d, 0x2E);
    let keys: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0xABCD_EF01_2345) % (1 << 40))
        .collect();
    let m = fields_per_key(d);
    let rounds = peel(&g, &keys, m).expect("expansion suffices");
    let assign = assignments_by_key(&rounds);
    assert_eq!(assign.len(), n);
    // Geometric decay of round sizes (Lemma 5): each round peels at least
    // a constant fraction at these parameters.
    for w in rounds.windows(2) {
        assert!(
            w[1].len() < w[0].len(),
            "round sizes must strictly decrease: {:?}",
            rounds.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }
    // Unique-neighbor ratio consistent with Lemma 4 at ε = 1/12.
    let ratio = unique_neighbor_ratio(&g, &keys);
    assert!(ratio >= 1.0 - 2.0 / 12.0, "Φ ratio {ratio}");
}

#[test]
fn trivially_striped_semi_explicit_graph_feeds_the_balancer() {
    let semi = expander::semi_explicit::SemiExplicitExpander::build(
        expander::semi_explicit::SemiExplicitConfig {
            universe: 1 << 24,
            capacity: 1 << 8,
            beta: 0.5,
            epsilon: 0.25,
            seed: 0x3E,
            stage_degree_cap: 8,
        },
    )
    .expect("construction succeeds");
    let striped = TriviallyStriped::new(semi);
    assert!(striped.is_striped());
    let mut lb = GreedyBalancer::new(&striped, 1);
    for x in 0..256u64 {
        lb.insert(x * 65_537 % (1 << 24));
    }
    let stats = LoadStats::of(lb.loads());
    assert_eq!(stats.total, 256);
    // With v ≫ n·d nothing should pile up.
    assert!(stats.max <= 3, "max load {}", stats.max);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The unique-neighbor map is always consistent: every listed vertex
    /// really is adjacent to exactly its owner within S.
    #[test]
    fn prop_unique_neighbors_sound(
        seed in any::<u64>(),
        n in 1usize..200,
        d in 2usize..16,
    ) {
        let g = SeededExpander::new(1 << 30, 4 * n.max(4), d, seed);
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 7919 % (1 << 30)).collect();
        let phi = unique_neighbors(&g, &keys);
        for (&y, &owner) in &phi {
            let adjacent: Vec<u64> = keys
                .iter()
                .copied()
                .filter(|&x| g.neighbors(x).contains(&y))
                .collect();
            prop_assert_eq!(&adjacent, &vec![owner], "vertex {} owners", y);
        }
    }

    /// Greedy balancing never leaves a candidate bucket 2+ lighter than
    /// the chosen one at insertion time — verified post-hoc: max - min
    /// over any key's neighborhood is bounded by the items it placed.
    #[test]
    fn prop_greedy_local_balance(seed in any::<u64>(), n in 10usize..300) {
        let d = 8;
        let g = SeededExpander::new(1 << 20, 64, d, seed);
        let mut lb = GreedyBalancer::new(&g, 1);
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 131 % (1 << 20)).collect();
        for &x in &keys {
            lb.insert(x);
        }
        prop_assert_eq!(lb.total_items(), n);
        prop_assert_eq!(
            u64::from(lb.loads().iter().sum::<u32>()),
            n as u64
        );
    }

    /// Sampled expansion of the seeded family stays above the design
    /// threshold for in-capacity set sizes.
    #[test]
    fn prop_seeded_expander_quality(seed in any::<u64>()) {
        let d = 16;
        let n = 256;
        let g = SeededExpander::new(1 << 36, 8 * n, d, seed);
        let pop: Vec<u64> = (0..2048u64).map(|i| i.wrapping_mul(97) % (1 << 36)).collect();
        let w = worst_expansion_sampled(&g, &pop, &[4, 32, n], 8, seed ^ 1);
        prop_assert!(w.ratio > 0.75, "seed {} ratio {}", seed, w.ratio);
    }
}
