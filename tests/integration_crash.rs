//! Crash-consistency properties for the journaled front-ends. Workloads
//! are cut at deterministic crash points ([`pdm::FaultPlan::crash_after`]:
//! every physical write past the k-th is silently dropped), the
//! in-memory process state is discarded, and the dictionary is rebuilt
//! from the surviving disk image alone — [`pdm::DiskArray::reopen_journal`]
//! re-reads the superblock, so nothing the dead process knew leaks into
//! recovery. Four invariants at every crash point:
//!
//! 1. **No panic**, in recovery or afterwards.
//! 2. **Acked ⇒ durable**: an op that completed before the crash fired
//!    is fully visible after reopen. The journal writes each entry's
//!    descriptor last, so a completed op's intent is already on disk
//!    even when the lazy superblock truncation point lags behind by up
//!    to [`pdm::GROUP_COMMIT_EVERY`] ops.
//! 3. **All-or-nothing**: the op in flight when the crash fired is
//!    either fully applied or fully absent after recovery — never a
//!    torn multi-block state, never wrong satellite data. Recovered
//!    counters agree with recovered contents.
//! 4. **Truncation**: reopen checkpoints the journal, so a second
//!    recovery pass finds zero replayable intents.
//!
//! The exhaustive every-k crash matrices live next to the structures
//! (`dynamic.rs`, `batch.rs`, `journal.rs`); these tests cover the
//! integration surface — reopen from the image alone, the rebuilding
//! wrapper mid-migration, and scrub repair under a dead disk.

mod harness;

use expander::FamilyKind;
use harness::{
    dense_keys, frontend, frontend_with, padded_entries, sat, JOURNAL_ROWS, KEY_SPACE, UNIVERSE,
};
use pdm::{FaultPlan, Word};
use pdm_dict::{Dict, DictParams, Dictionary};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A sorted, deduplicated key set (same corpus as the fault suite).
fn key_set() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::hash_set(0u64..KEY_SPACE, 5..60).prop_map(|s| {
        let mut v: Vec<u64> = s.into_iter().collect();
        v.sort_unstable();
        v
    })
}

enum Op {
    Ins(u64),
    Del(u64),
}

/// Run a mutation workload over the journaled dynamic front, crash after
/// `crash_at` physical writes, reopen from the disk image alone, and
/// check the four invariants above.
fn drive_crash(keys: &[u64], crash_at: u64) -> Result<(), TestCaseError> {
    drive_crash_with(FamilyKind::default(), keys, crash_at)
}

/// Same crash cycle, over an explicit hash family (rotation below).
fn drive_crash_with(
    family: FamilyKind,
    keys: &[u64],
    crash_at: u64,
) -> Result<(), TestCaseError> {
    let mut f = frontend_with("dynamic_journaled", family);
    let reopen = f.reopen.take().expect("journaled front declares reopen");
    let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, sat(k, f.sigma))).collect();
    let cap = entries.len() + 32;
    let seed = 0xC4A5;
    let mut dict = (f.build)(cap, &entries, seed);

    // The ground truth the crash must respect. Keys move between the
    // three sets as ops complete; an op cut by the crash moves its key
    // to `in_doubt` (all-or-nothing is all recovery owes it).
    let mut must_present: BTreeSet<u64> = keys.iter().copied().collect();
    let mut must_absent: BTreeSet<u64> = BTreeSet::new();
    let mut in_doubt: BTreeSet<u64> = BTreeSet::new();

    dict.disks_mut()
        .unwrap()
        .set_fault_plan(FaultPlan::new().crash_after(crash_at));

    // Interleaved inserts (fresh keys, above the generated range) and
    // deletes (existing keys), then one batch.
    let fresh: Vec<u64> = (0..6).map(|i| KEY_SPACE + 5_000 + i).collect();
    let step = (keys.len() / 3).max(1);
    let dels: Vec<u64> = keys.iter().copied().step_by(step).take(3).collect();
    let mut ops: Vec<Op> = Vec::new();
    for (i, &k) in fresh.iter().enumerate().take(3) {
        ops.push(Op::Ins(k));
        if let Some(&d) = dels.get(i) {
            ops.push(Op::Del(d));
        }
    }
    for &k in &fresh[3..] {
        ops.push(Op::Ins(k));
    }

    for op in ops {
        match op {
            Op::Ins(k) => {
                let res = dict.insert(k, &sat(k, f.sigma));
                if dict.disks().unwrap().crash_fired() {
                    in_doubt.insert(k);
                } else if res.is_ok() {
                    must_present.insert(k);
                } else {
                    // A failed insert truncates its intent: it must not
                    // resurrect on replay.
                    must_absent.insert(k);
                }
            }
            Op::Del(k) => {
                let res = dict.delete(k);
                if dict.disks().unwrap().crash_fired() {
                    must_present.remove(&k);
                    in_doubt.insert(k);
                } else if matches!(res, Ok((true, _))) {
                    must_present.remove(&k);
                    must_absent.insert(k);
                }
            }
        }
    }
    let batch: Vec<(u64, Vec<Word>)> = (0..5)
        .map(|i| {
            let k = KEY_SPACE + 6_000 + i;
            (k, sat(k, f.sigma))
        })
        .collect();
    let (results, _) = dict.insert_batch(&batch);
    if dict.disks().unwrap().crash_fired() {
        in_doubt.extend(batch.iter().map(|(k, _)| *k));
    } else {
        for ((k, _), r) in batch.iter().zip(&results) {
            if r.is_ok() {
                must_present.insert(*k);
            } else {
                must_absent.insert(*k);
            }
        }
    }

    // The crash: the process dies, only the disk image survives.
    // Clearing the plan is the reboot — dropped writes stay dropped.
    let image = {
        let disks = dict.disks_mut().unwrap();
        disks.clear_fault_plan();
        disks.clone()
    };
    drop(dict);
    let mut reopened = reopen(cap, seed, image);

    // (2) acked ⇒ durable, and deletions stay deleted.
    for &k in &must_present {
        let got = reopened.lookup(k).satellite;
        prop_assert_eq!(
            got,
            Some(sat(k, f.sigma)),
            "acked key {} lost or damaged after crash at write {}",
            k,
            crash_at
        );
    }
    for &k in &must_absent {
        prop_assert!(
            reopened.lookup(k).satellite.is_none(),
            "absent key {} resurrected after crash at write {}",
            k,
            crash_at
        );
    }
    // (3) all-or-nothing for the cut op(s), and counters match contents.
    let mut present = 0usize;
    for &k in must_present.iter().chain(&must_absent).chain(&in_doubt) {
        if let Some(got) = reopened.lookup(k).satellite {
            prop_assert_eq!(
                got,
                sat(k, f.sigma),
                "wrong satellite for {} after crash at write {}",
                k,
                crash_at
            );
            present += 1;
        }
    }
    prop_assert_eq!(
        reopened.len(),
        present,
        "recovered length disagrees with recovered contents (crash at write {})",
        crash_at
    );

    // (4) reopen checkpointed: nothing left to replay.
    let second = reopened.recover();
    prop_assert!(
        second.replayed.is_empty() && second.is_clean(),
        "journal not truncated after reopen: {:?}",
        second
    );

    // The reopened front keeps working.
    let k2 = KEY_SPACE + 9_999;
    prop_assert!(reopened.insert(k2, &sat(k2, f.sigma)).is_ok());
    prop_assert_eq!(reopened.lookup(k2).satellite, Some(sat(k2, f.sigma)));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn journaled_front_reopens_consistently_from_any_crash(
        keys in key_set(),
        crash_seed in 0u64..1 << 48,
    ) {
        // Three crash points per case, spread over the workload's write
        // range (the build preloads clean; only workload writes count).
        for crash_at in [crash_seed % 96, (crash_seed >> 8) % 96, (crash_seed >> 16) % 96] {
            drive_crash(&keys, crash_at)?;
        }
    }
}

/// Family rotation: journaled crash/recovery composes with every hash
/// family — the intent journal and replay never depend on where the
/// neighbor function placed the records.
#[test]
fn crash_recovery_composes_with_every_family() {
    let keys = dense_keys(24);
    for family in FamilyKind::ALL {
        if family == FamilyKind::default() {
            continue;
        }
        for crash_at in [5u64, 41] {
            drive_crash_with(family, &keys, crash_at).unwrap();
        }
    }
}

/// Recovery must distrust every pre-crash verification: the
/// verified-clean read cache is rebuilt from scratch after
/// [`pdm::DiskArray::recover`], never carried across a crash (a cached
/// "clean" bit may describe a write the crash dropped).
#[test]
fn recovery_distrusts_pre_crash_verification() {
    let f = frontend("dynamic_journaled");
    let keys = dense_keys(24);
    let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, sat(k, f.sigma))).collect();
    let mut dict = (f.build)(64, &entries, 0xC4A5);
    dict.disks_mut().unwrap().enable_integrity();
    // A scrub verifies (and caches) every block.
    let report = dict.scrub();
    assert!(report.blocks_scanned > 0);
    assert!(
        dict.disks().unwrap().verified_clean_blocks() > 0,
        "scrub should populate the verified-clean cache"
    );
    dict.disks_mut()
        .unwrap()
        .set_fault_plan(FaultPlan::new().crash_after(3));
    let k = KEY_SPACE + 5_000;
    let _ = dict.insert(k, &sat(k, f.sigma));
    let disks = dict.disks_mut().unwrap();
    assert!(disks.crash_fired(), "insert should cross the crash point");
    disks.clear_fault_plan();
    let _ = disks.recover();
    assert_eq!(
        disks.verified_clean_blocks(),
        0,
        "recovery must drop every pre-crash verified-clean bit"
    );
}

/// The rebuilding wrapper mid-migration, under every crash point of one
/// insert (which also advances the migration): resume from a pre-op
/// snapshot of the process state plus the crashed disk image (superblock
/// re-read from disk), replay, and the wrapper must account both the
/// re-inserted key and the re-copied migration rows — then finish the
/// rebuild cleanly.
#[test]
fn rebuilding_dictionary_is_crash_consistent_during_migration() {
    let params = DictParams::new(16, UNIVERSE, 1)
        .with_degree(20)
        .with_epsilon(0.5)
        .with_seed(0xC4A5)
        .with_journal(JOURNAL_ROWS);
    let mut dict = Dictionary::new(params, 64).unwrap();
    let keys = dense_keys(60);
    let mut inserted: Vec<u64> = Vec::new();
    let mut it = keys.iter();
    while !dict.is_rebuilding() {
        let k = *it.next().expect("rebuild never started");
        dict.insert(k, &sat(k, 1)).unwrap();
        inserted.push(k);
    }
    assert!(dict.disks().journal_enabled());

    let victim = KEY_SPACE + 7_000;
    let mut crash_at = 0u64;
    loop {
        let mut trial = dict.clone();
        trial
            .disks_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::new().crash_after(crash_at));
        let res = Dictionary::insert(&mut trial, victim, &sat(victim, 1));
        let fired = trial.disks().crash_fired();
        let mut image = trial.disks().clone();
        drop(trial);
        image.clear_fault_plan();
        // The process is gone: adopt the on-disk superblock, not the
        // dead process's cursors.
        let region = image.journal_region().unwrap();
        image.reopen_journal(region);

        let mut survivor = dict.clone();
        *survivor.disks_mut().unwrap() = image;
        let _ = Dict::recover(&mut survivor);

        for &k in &inserted {
            assert_eq!(
                survivor.lookup(k).satellite,
                Some(sat(k, 1)),
                "acked key {k} lost at crash point {crash_at}"
            );
        }
        match survivor.lookup(victim).satellite {
            Some(got) => assert_eq!(got, sat(victim, 1), "victim torn at {crash_at}"),
            None => assert!(
                fired,
                "victim vanished without a crash at point {crash_at} ({res:?})"
            ),
        }

        // Drive the rebuild to completion on the recovered state.
        let mut extra = 0u64;
        while survivor.is_rebuilding() {
            let nk = KEY_SPACE + 8_000 + extra;
            extra += 1;
            survivor.insert(nk, &sat(nk, 1)).unwrap();
        }
        for &k in &inserted {
            assert_eq!(
                survivor.lookup(k).satellite,
                Some(sat(k, 1)),
                "key {k} lost finishing the rebuild after crash point {crash_at}"
            );
        }

        if !fired {
            break; // the whole op landed: the matrix is exhausted
        }
        crash_at += 1;
        assert!(crash_at < 500, "crash point never drained");
    }
}

/// Scrub repair under a dead disk is itself crash-protected: the repair
/// flush routes through the journal, so a crash mid-repair never leaves
/// a half-rewritten stripe. After reboot (superblock re-read), recovery
/// replays the torn flush and a final scrub restores every key exactly.
#[test]
fn one_probe_b_scrub_repair_survives_dead_disk_plus_crash() {
    let f = frontend("one_probe_b");
    let es = padded_entries(&f, &dense_keys(150));
    let mut dict = (f.build)(es.len(), &es, 0xD1E5);
    let disks = dict.disks_mut().unwrap();
    disks.enable_integrity();
    disks.enable_journal_appended(JOURNAL_ROWS);
    let mut crash_at = 0u64;
    loop {
        dict.disks_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::new().dead_disk(4).crash_after(crash_at));
        let _ = dict.scrub(); // repairs route through the journal; the crash tears the flush
        let fired = dict.disks().unwrap().crash_fired();
        let disks = dict.disks_mut().unwrap();
        disks.clear_fault_plan();
        let region = disks.journal_region().unwrap();
        disks.reopen_journal(region);
        let _ = dict.recover(); // replay the torn repair flush, checkpoint

        // No wrong data between reboot and repair: damage may read as a
        // miss, never as another key's satellite.
        for (k, s) in &es {
            if let Some(got) = dict.lookup(*k).satellite {
                assert_eq!(&got, s, "wrong satellite for {k} after crash at {crash_at}");
            }
        }
        let report = dict.scrub();
        assert_eq!(report.unrepairable_keys, 0, "{report:?}");
        for (k, s) in &es {
            let out = dict.lookup(*k);
            assert_eq!(out.satellite.as_ref(), Some(s), "key {k} lost");
            assert!(out.is_exact(), "key {k} still degraded after repair");
        }
        let idle = dict.scrub();
        assert_eq!(idle.repaired_blocks, 0, "idle scrub repaired: {idle:?}");

        if !fired {
            break;
        }
        crash_at += 9; // stride keeps the drill fast; the every-k matrix is unit-level
        assert!(crash_at < 2_000, "crash point never drained");
    }
}
