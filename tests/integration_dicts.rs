//! Cross-structure integration tests: every dictionary agrees with a
//! reference model under arbitrary operation sequences, and the paper's
//! structures agree with each other.

use pdm::{DiskArray, PdmConfig, Word};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::{DictParams, Dictionary, DynamicDict};
use proptest::prelude::*;
use std::collections::HashMap;

/// Operations for model-based testing.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Lookup(u64),
    Delete(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..64, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0u64..64).prop_map(Op::Lookup),
        1 => (0u64..64).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fully dynamic dictionary behaves exactly like a HashMap under
    /// arbitrary insert/lookup/delete interleavings (including duplicate
    /// inserts, double deletes, and rebuild windows).
    #[test]
    fn prop_dictionary_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let params = DictParams::new(16, 1 << 20, 1)
            .with_degree(16)
            .with_epsilon(1.0)
            .with_seed(0x600D);
        let mut dict = Dictionary::new(params, 64).expect("params valid");
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let ours = dict.insert(k, &[v]);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(k) {
                        prop_assert!(ours.is_ok(), "insert of {} failed: {:?}", k, ours);
                        e.insert(v);
                    } else {
                        prop_assert!(ours.is_err(), "duplicate insert of {} accepted", k);
                    }
                }
                Op::Lookup(k) => {
                    let out = dict.lookup(k);
                    prop_assert_eq!(
                        out.satellite,
                        model.get(&k).map(|&v| vec![v]),
                        "lookup({}) diverged", k
                    );
                }
                Op::Delete(k) => {
                    let (was, _) = dict.delete(k).expect("delete never errors");
                    prop_assert_eq!(was, model.remove(&k).is_some(), "delete({}) diverged", k);
                }
            }
            prop_assert_eq!(dict.len(), model.len());
        }
    }
}

#[test]
fn one_probe_and_dynamic_agree_on_the_same_key_set() {
    let d = 20;
    let n = 400usize;
    let sigma = 2usize;
    let keys: Vec<u64> = (0..n as u64).map(|i| i * 1009 % (1 << 30)).collect();
    let entries: Vec<(u64, Vec<Word>)> = keys
        .iter()
        .map(|&k| (k, vec![k, k.wrapping_mul(3)]))
        .collect();

    // Static one-probe (case a).
    let mut disks_a = DiskArray::new(PdmConfig::new(2 * 13, 128), 0);
    let mut alloc_a = DiskAllocator::new(2 * 13);
    let params_a = DictParams::new(n, 1 << 30, sigma)
        .with_degree(13)
        .with_seed(1);
    let (static_dict, _) = OneProbeStatic::build(
        &mut disks_a,
        &mut alloc_a,
        0,
        &params_a,
        OneProbeVariant::CaseA,
        &entries,
    )
    .expect("build");

    // Dynamic Theorem 7 structure.
    let mut disks_b = DiskArray::new(PdmConfig::new(2 * d, 128), 0);
    let mut alloc_b = DiskAllocator::new(2 * d);
    let params_b = DictParams::new(2 * n, 1 << 30, sigma)
        .with_degree(d)
        .with_epsilon(0.5)
        .with_seed(2);
    let mut dyn_dict = DynamicDict::create(&mut disks_b, &mut alloc_b, 0, params_b).unwrap();
    for (k, s) in &entries {
        dyn_dict.insert(&mut disks_b, *k, s).unwrap();
    }

    // Agreement on hits and misses.
    for (k, s) in &entries {
        assert_eq!(
            static_dict.lookup(&mut disks_a, *k).satellite.as_ref(),
            Some(s),
            "static missed {k}"
        );
        assert_eq!(
            dyn_dict.lookup(&mut disks_b, *k).satellite.as_ref(),
            Some(s),
            "dynamic missed {k}"
        );
    }
    for probe in (1_000_000..1_000_400u64).step_by(7) {
        assert!(!static_dict.lookup(&mut disks_a, probe).found());
        assert!(!dyn_dict.lookup(&mut disks_b, probe).found());
    }
}

#[test]
fn dictionary_survives_heavy_churn_with_bounded_lookup_cost() {
    let params = DictParams::new(64, 1 << 30, 1)
        .with_degree(16)
        .with_epsilon(1.0)
        .with_seed(0xC4);
    let mut dict = Dictionary::new(params, 64).unwrap();
    let mut live = std::collections::HashSet::new();
    for round in 0u64..8 {
        for k in 0..300u64 {
            if live.contains(&k) {
                dict.delete(k).unwrap();
                live.remove(&k);
            }
            dict.insert(k, &[round]).unwrap();
            live.insert(k);
        }
    }
    let mut worst = 0;
    for k in 0..300u64 {
        let out = dict.lookup(k);
        assert_eq!(out.satellite, Some(vec![7]), "key {k}");
        worst = worst.max(out.cost.parallel_ios);
    }
    assert!(worst <= 4, "lookup worst case {worst} after churn");
    assert_eq!(dict.len(), 300);
}

#[test]
fn file_system_and_raw_dictionary_agree() {
    use pdm_dict::PdmFileSystem;
    let mut fs = PdmFileSystem::new(128, 4, 64, 0xF5).unwrap();
    let mut model: HashMap<(u32, u32), Vec<Word>> = HashMap::new();
    // Interleaved writes, overwrites, and deletes across files.
    for i in 0..200u32 {
        let inode = i % 5;
        let block = i % 17;
        let data = vec![u64::from(i); 4];
        fs.write_block(inode, block, &data).unwrap();
        model.insert((inode, block), data);
        if i % 11 == 0 {
            let victim = ((i / 2) % 5, (i / 3) % 17);
            let was_fs = fs.delete_block(victim.0, victim.1).unwrap();
            let was_model = model.remove(&victim).is_some();
            assert_eq!(was_fs, was_model, "delete divergence at {victim:?}");
        }
    }
    for inode in 0..5u32 {
        for block in 0..17u32 {
            assert_eq!(
                fs.read_block(inode, block).satellite,
                model.get(&(inode, block)).cloned(),
                "({inode}, {block})"
            );
        }
    }
}
