//! Protocol-robustness drills (`pdm-server` wire layer): a server fed
//! truncated frames, oversized length prefixes, random garbage, and
//! mid-frame disconnects must never panic, never wedge, and keep
//! serving fresh connections exactly.
//!
//! Randomization follows the suite convention: deterministic by
//! default, `PROPTEST_SEED=<u64>` rotates the corpus (CI sets it per
//! run).

use pdm_cluster::map::ClusterConfig;
use pdm_cluster::node::build_shard;
use pdm_server::protocol::{decode_response, WireResponse, MAX_FRAME};
use pdm_server::protocol::WireRequest;
use pdm_server::{EngineConfig, Op, Reply, ServeEngine, TcpClient, TcpServer};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A live single-shard server for one drill. Dropping it leaks the
/// engine threads for the remainder of the test binary — fine for a
/// handful of proptest cases — so every path calls [`Fixture::close`].
struct Fixture {
    server: Option<TcpServer>,
    engine: Option<ServeEngine>,
    addr: SocketAddr,
}

fn fixture() -> Fixture {
    let cluster = ClusterConfig {
        shard_capacity: 64,
        ..ClusterConfig::default()
    };
    let engine = ServeEngine::new(vec![build_shard(&cluster, 0)], EngineConfig::default());
    let server = TcpServer::bind("127.0.0.1:0", engine.client()).expect("bind");
    let addr = server.local_addr();
    Fixture {
        server: Some(server),
        engine: Some(engine),
        addr,
    }
}

impl Fixture {
    /// The liveness probe every drill ends with: a *fresh* connection
    /// must serve a full insert/lookup round-trip exactly.
    fn assert_serves(&self, key: u64) {
        let mut client = TcpClient::connect(self.addr).expect("fresh connect");
        client
            .set_deadline(Some(Duration::from_secs(30)))
            .expect("deadline");
        match client.request(&WireRequest::Op(Op::Insert(key, vec![key]))) {
            Ok(WireResponse::Reply(Reply::Inserted)) => {}
            Ok(WireResponse::Err(e)) => panic!("fresh insert refused: {e}"),
            other => panic!("fresh insert answered {other:?}"),
        }
        match client.request(&WireRequest::Op(Op::Lookup(key))) {
            Ok(WireResponse::Reply(Reply::Lookup(Some(sat)))) => assert_eq!(sat, vec![key]),
            other => panic!("fresh lookup answered {other:?}"),
        }
    }

    fn close(mut self) {
        self.server.take().unwrap().shutdown();
        drop(self.engine.take().unwrap().shutdown());
    }
}

/// Read one length-prefixed response frame off a raw stream; `None` on
/// EOF (the server dropped the connection — a legal robust outcome).
fn read_raw_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut len = [0u8; 4];
    let mut at = 0;
    while at < 4 {
        match stream.read(&mut len[at..]) {
            Ok(0) => return None,
            Ok(n) => at += n,
            Err(e) => panic!("reading response header: {e}"),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    assert!(len <= MAX_FRAME, "server sent an oversized frame");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("response payload");
    Some(payload)
}

/// The server's answer to a hostile frame must be *typed*: either a
/// decodable response frame or a clean disconnect — never a hang, never
/// garbage.
fn assert_typed_or_dropped(stream: &mut TcpStream) {
    if let Some(payload) = read_raw_frame(stream) {
        let resp = decode_response(&payload).expect("server response must decode");
        // Any decodable answer is acceptable (garbage that happens to
        // parse as a valid request gets a real reply).
        let _ = resp;
    }
}

fn suite_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_0802)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random garbage payloads inside well-formed frames: the server
    /// answers each with a typed response or drops the connection, and
    /// fresh connections keep serving.
    #[test]
    fn garbage_payloads_never_wedge_the_server(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        probe_key in 0u64..(1 << 20),
    ) {
        let f = fixture();
        {
            let mut s = TcpStream::connect(f.addr).unwrap();
            s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
            s.write_all(&payload).unwrap();
            s.flush().unwrap();
            assert_typed_or_dropped(&mut s);
        }
        f.assert_serves(probe_key);
        f.close();
    }

    /// A length prefix promising more bytes than ever arrive (the peer
    /// walks away mid-frame): the connection thread must notice the
    /// disconnect instead of waiting forever, and the server stays
    /// fully available.
    #[test]
    fn midframe_disconnects_never_wedge_the_server(
        declared in 1usize..4096,
        fraction in 0.0f64..1.0,
        probe_key in 0u64..(1 << 20),
    ) {
        let f = fixture();
        {
            let sent = ((declared as f64 * fraction) as usize).min(declared - 1);
            let mut s = TcpStream::connect(f.addr).unwrap();
            s.write_all(&(declared as u32).to_le_bytes()).unwrap();
            s.write_all(&vec![0xA5u8; sent]).unwrap();
            s.flush().unwrap();
            // Drop mid-frame: the server sees EOF inside the payload.
        }
        f.assert_serves(probe_key);
        f.close();
    }

    /// Oversized length prefixes (beyond `MAX_FRAME`) are refused
    /// without reading the phantom payload, and the server keeps
    /// serving.
    #[test]
    fn oversized_frames_are_refused_and_survived(
        excess in 1u64..(1 << 30),
        probe_key in 0u64..(1 << 20),
    ) {
        let f = fixture();
        {
            let declared = (MAX_FRAME as u64 + excess).min(u64::from(u32::MAX)) as u32;
            let mut s = TcpStream::connect(f.addr).unwrap();
            s.write_all(&declared.to_le_bytes()).unwrap();
            s.flush().unwrap();
            assert_typed_or_dropped(&mut s);
        }
        f.assert_serves(probe_key);
        f.close();
    }
}

/// A half-written *valid* request (a real insert, cut mid-payload) is
/// indistinguishable from line noise to the server: it must drop the
/// remains without applying anything and keep serving the next
/// connection.
#[test]
fn half_a_valid_request_is_not_applied() {
    use pdm_server::protocol::encode_request;
    let f = fixture();
    let key = suite_seed() % (1 << 20);
    let full = encode_request(&WireRequest::Op(Op::Insert(key, vec![7])));
    {
        let mut s = TcpStream::connect(f.addr).unwrap();
        s.write_all(&(full.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&full[..full.len() / 2]).unwrap();
        s.flush().unwrap();
    }
    // The fresh connection's own insert must succeed — proving the cut
    // insert never reached the dictionary (a duplicate would refuse).
    f.assert_serves(key);
    f.close();
}

/// Many hostile connections at once (garbage, truncations, oversize
/// headers interleaved) followed by the liveness probe: robustness must
/// hold under concurrency, not just one bad peer at a time.
#[test]
fn a_swarm_of_hostile_peers_cannot_take_the_server_down() {
    let f = fixture();
    let seed = suite_seed();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let addr = f.addr;
            s.spawn(move || {
                for i in 0..10u64 {
                    let r = expander::mix::mix64(seed ^ (t << 32) ^ i);
                    let Ok(mut conn) = TcpStream::connect(addr) else {
                        continue;
                    };
                    match r % 3 {
                        0 => {
                            // Garbage frame.
                            let n = (r >> 8) % 256;
                            let body: Vec<u8> =
                                (0..n).map(|j| (r >> (j % 56)) as u8).collect();
                            let _ = conn.write_all(&(body.len() as u32).to_le_bytes());
                            let _ = conn.write_all(&body);
                        }
                        1 => {
                            // Truncation.
                            let _ = conn.write_all(&512u32.to_le_bytes());
                            let _ = conn.write_all(&[0u8; 100]);
                        }
                        _ => {
                            // Oversize header.
                            let _ = conn.write_all(&u32::MAX.to_le_bytes());
                        }
                    }
                    let _ = conn.flush();
                }
            });
        }
    });
    f.assert_serves(seed % (1 << 20));
    f.close();
}
