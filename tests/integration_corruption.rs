//! Failure injection: corrupted disk blocks must degrade gracefully —
//! wrong/absent answers are surfaced as misses or decode failures, never
//! as panics or silent wrong satellite data for *other* keys.

mod harness;

use harness::{dense_keys, frontend, kill_disk, kill_disks, padded_entries};
use pdm::{BlockAddr, DiskArray, PdmConfig, Word};
use pdm_dict::basic::{BasicDict, BasicDictConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::{DictParams, DynamicDict};

fn entries(n: usize, sigma: usize) -> Vec<(u64, Vec<Word>)> {
    (0..n as u64)
        .map(|i| {
            let k = i.wrapping_mul(0x9E37_79B9) % (1 << 30);
            (k, vec![k; sigma])
        })
        .collect()
}

#[test]
fn one_probe_case_b_membership_survives_a_dead_disk() {
    // Case (b) stores each key's identifier in 2d/3 of d fields; killing
    // ONE disk removes at most one of them, so the majority (and hence
    // membership detection) survives for every key. And because every
    // record carries one XOR-parity chunk, the erasure-aware decoder
    // recovers the single missing chunk: with the fault *plan* active
    // (so reads report which probes are erasures, not just zeros), every
    // key's exact satellite comes back — degraded in provenance only.
    let d = 13;
    let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
    let mut alloc = DiskAllocator::new(d);
    let es = entries(150, 2);
    let params = DictParams::new(150, 1 << 30, 2).with_degree(d).with_seed(3);
    let (dict, _) =
        OneProbeStatic::build(&mut disks, &mut alloc, 0, &params, OneProbeVariant::CaseB, &es)
            .unwrap();
    kill_disk(&mut disks, 4);
    for (k, s) in &es {
        let out = dict.lookup(&mut disks, *k);
        assert_eq!(
            out.satellite.as_ref(),
            Some(s),
            "key {k} not exactly recovered under a single-disk failure"
        );
    }
}

#[test]
fn one_probe_case_b_fails_closed_when_majority_is_gone() {
    // Killing most disks destroys the majority: lookups must return
    // misses (or survive by luck), never panic or fabricate data.
    let d = 13;
    let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
    let mut alloc = DiskAllocator::new(d);
    let es = entries(100, 1);
    let params = DictParams::new(100, 1 << 30, 1).with_degree(d).with_seed(4);
    let (dict, _) =
        OneProbeStatic::build(&mut disks, &mut alloc, 0, &params, OneProbeVariant::CaseB, &es)
            .unwrap();
    kill_disks(&mut disks, &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    for (k, s) in &es {
        let out = dict.lookup(&mut disks, *k);
        if let Some(got) = out.satellite {
            assert_eq!(&got, s, "fabricated data for {k}");
        }
    }
}

#[test]
fn random_bit_corruption_never_panics() {
    let d = 13;
    let mut disks = DiskArray::new(PdmConfig::new(2 * d, 128), 0);
    let mut alloc = DiskAllocator::new(2 * d);
    let es = entries(120, 2);
    let params = DictParams::new(120, 1 << 30, 2).with_degree(d).with_seed(5);
    let (dict, _) =
        OneProbeStatic::build(&mut disks, &mut alloc, 0, &params, OneProbeVariant::CaseA, &es)
            .unwrap();
    // Flip words all over the array (deterministic pseudo-random spray).
    let mut state = 0xBAD5EED_u64;
    for _ in 0..500 {
        state = expander::mix::mix64(state);
        let disk = (state % (2 * d as u64)) as usize;
        let block = ((state >> 16) % disks.blocks_on(disk) as u64) as usize;
        let addr = BlockAddr::new(disk, block);
        let mut img = disks.peek(addr).to_vec();
        let w = ((state >> 32) % img.len() as u64) as usize;
        img[w] ^= 1 << (state % 64);
        disks.poke(addr, &img);
    }
    // Lookups may now miss or (for flipped satellite bits) return altered
    // data for the corrupted keys — but must never panic.
    for (k, _) in &es {
        let _ = dict.lookup(&mut disks, *k);
    }
    for probe in 0..500u64 {
        let _ = dict.lookup(&mut disks, probe);
    }
}

#[test]
fn dynamic_dict_tolerates_corrupted_membership_bucket() {
    let d = 20;
    let mut disks = DiskArray::new(PdmConfig::new(2 * d, 128), 0);
    let mut alloc = DiskAllocator::new(2 * d);
    let params = DictParams::new(200, 1 << 30, 1)
        .with_degree(d)
        .with_epsilon(0.5)
        .with_seed(6);
    let mut dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
    for (k, s) in entries(200, 1) {
        dict.insert(&mut disks, k, &s).unwrap();
    }
    // Kill one membership disk: keys whose bucket lived there now miss;
    // everything else still answers; nothing panics.
    kill_disk(&mut disks, 3);
    let mut still_found = 0;
    for (k, s) in entries(200, 1) {
        let out = dict.lookup(&mut disks, k);
        if let Some(got) = out.satellite {
            assert_eq!(got, s, "fabricated data for {k}");
            still_found += 1;
        }
    }
    assert!(
        still_found >= 150,
        "a single dead membership disk should strand ~1/d of keys, not {}",
        200 - still_found
    );
}

#[test]
fn batch_lookup_degrades_exactly_like_sequential_on_a_dead_disk() {
    // The batch path reads the same blocks as the sequential path (just
    // scheduled into rounds), so a dead disk must produce *identical*
    // per-key outcomes for EVERY front-end: same misses, same
    // damaged-satellite decodes, no panics, no cross-key corruption.
    // Every front is fail-closed under sanitized reads — a found answer
    // is exact for its key — and the one-probe case (b) recovers every
    // key exactly through its parity chunk once the fault plan reports
    // the erasure. The survivor floor scales with how many disks the
    // front spreads a key over (`wide` loses any key with a chunk on the
    // dead disk, so its floor is zero).
    struct DeadDiskCase {
        front: &'static str,
        wipe: usize,
        exact_when_found: bool,
        min_survivors: usize,
    }
    let cases = [
        DeadDiskCase {
            front: "basic",
            wipe: 2,
            exact_when_found: true,
            // 8 disks: one dead disk strands ~1/8 of 200 keys.
            min_survivors: 140,
        },
        DeadDiskCase {
            front: "dynamic",
            wipe: 3,
            exact_when_found: true,
            // 40 disks: a dead membership disk strands ~1/20 of keys.
            min_survivors: 150,
        },
        DeadDiskCase {
            front: "one_probe_b",
            wipe: 4,
            exact_when_found: true,
            // 13 disks, one parity chunk per record: a single dead disk
            // is a recoverable erasure for every key.
            min_survivors: 200,
        },
        DeadDiskCase {
            front: "wide",
            wipe: 5,
            exact_when_found: true,
            min_survivors: 0,
        },
    ];
    for case in cases {
        let f = frontend(case.front);
        let es = padded_entries(&f, &dense_keys(200));
        let mut dict = (f.build)(es.len(), &es, 3);
        kill_disk(dict.disks_mut().unwrap(), case.wipe);

        let keys: Vec<u64> = es.iter().map(|(k, _)| *k).chain(5000..5100).collect();
        let seq: Vec<Option<Vec<Word>>> = keys.iter().map(|&k| dict.lookup(k).satellite).collect();
        let (batch, _) = dict.lookup_batch(&keys);
        assert_eq!(
            batch, seq,
            "{}: batch and sequential disagree on a dead disk",
            f.name
        );
        if case.exact_when_found {
            // Stranded keys miss; every still-found answer is exact for
            // ITS key.
            let mut still_found = 0;
            for (got, (k, s)) in batch.iter().zip(&es) {
                if let Some(sat) = got {
                    assert_eq!(sat, s, "{}: cross-key corruption for {k}", f.name);
                    still_found += 1;
                }
            }
            assert!(
                still_found >= case.min_survivors,
                "{}: only {still_found}/{} keys survived",
                f.name,
                es.len()
            );
        }
    }
}

#[test]
fn batch_insert_never_panics_on_corrupted_buckets() {
    // Batched inserts into a BasicDict with a zeroed block: plans built
    // from corrupt bucket images must surface per-key errors (or
    // overflow), never panic or damage other buckets.
    let d = 13;
    let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
    let mut alloc = DiskAllocator::new(d);
    let cfg = BasicDictConfig::log_load(300, 1 << 30, d, 1, 7);
    let mut dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
    let first: Vec<(u64, Vec<Word>)> = entries(150, 1);
    let (res, _) = dict.insert_batch(&mut disks, &first);
    assert!(res.iter().all(Result::is_ok));
    disks.poke(BlockAddr::new(2, 5), &vec![0; 64]);
    let more: Vec<(u64, Vec<Word>)> = (1000..1150u64).map(|k| (k * 7 + 3, vec![k])).collect();
    let (res, _) = dict.insert_batch(&mut disks, &more);
    // Whatever happened per key, every reported success must be readable.
    for ((k, s), r) in more.iter().zip(&res) {
        if r.is_ok() {
            assert_eq!(
                dict.lookup(&mut disks, *k).satellite.as_ref(),
                Some(s),
                "inserted key {k} unreadable"
            );
        }
    }
}

#[test]
fn basic_dict_corruption_is_local() {
    let d = 13;
    let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
    let mut alloc = DiskAllocator::new(d);
    let cfg = BasicDictConfig::log_load(300, 1 << 30, d, 1, 7);
    let mut dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
    for (k, s) in entries(300, 1) {
        dict.insert(&mut disks, k, &s).unwrap();
    }
    // Zero one block: only the keys whose chosen bucket was that block
    // disappear; every still-found answer is exact.
    disks.poke(BlockAddr::new(2, 5), &vec![0; 64]);
    let mut lost = 0;
    for (k, s) in entries(300, 1) {
        match dict.lookup(&mut disks, k).satellite {
            Some(got) => assert_eq!(got, s),
            None => lost += 1,
        }
    }
    assert!(lost <= 25, "one dead block lost {lost} keys");
}
