//! Network-chaos drills (`pdm-server::netfault` + `pdm-cluster`): the
//! cluster tier behind a deterministic fault-injecting proxy.
//!
//! Four PR-level claims, each a drill:
//!
//! * **quorum discipline** — a minority-partitioned replica set never
//!   acknowledges a write below `write_quorum`;
//! * **partition tolerance** — a partitioned-then-healed cluster loses
//!   zero acknowledged writes, and the epoch fence refuses stale-epoch
//!   requests (the split-brain guard);
//! * **typed degradation** — traffic over a flaky link (seeded
//!   drop+delay plan) completes with typed errors only, and the whole
//!   drill replays deterministically from the seed;
//! * **proactive detection** — the heartbeater latches a partitioned
//!   node suspect within the gated bound, before any client write pays
//!   a timeout.
//!
//! Randomization follows the suite convention: deterministic by
//! default, `PROPTEST_SEED=<u64>` rotates the corpus (CI sets it per
//! run).

use expander::mix::mix64;
use pdm::metrics::MetricsRegistry;
use pdm_cluster::{
    ClusterConfig, ClusterError, ClusterMap, ClusterNode, ClusterRouter, HeartbeatConfig,
    Heartbeater, NodeConfig, RetryPolicy, RouterConfig, RouterStats,
};
use pdm_server::protocol::{WireRequest, WireResponse};
use pdm_server::{ChaosNet, NetFaultPlan, Op, Reply, ServeError, TcpClient};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn suite_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_0901)
}

/// Start one node per weight, each hosting the shards the epoch-0 map
/// assigns it.
fn start_cluster(cfg: ClusterConfig, weights: &[u32]) -> (Vec<Option<ClusterNode>>, Vec<SocketAddr>) {
    let map = ClusterMap::build(cfg, weights);
    let nodes: Vec<Option<ClusterNode>> = (0..weights.len())
        .map(|n| {
            Some(
                ClusterNode::start("127.0.0.1:0", cfg, &map.shards_on(n), NodeConfig::default())
                    .expect("node start"),
            )
        })
        .collect();
    let addrs = nodes
        .iter()
        .map(|n| n.as_ref().unwrap().local_addr())
        .collect();
    (nodes, addrs)
}

/// Pull a shard's frozen image straight off a node (the migration
/// export opcodes, driven by hand, bypassing the proxy).
fn pull_image(addr: SocketAddr, shard: u32) -> Vec<u8> {
    let mut client = TcpClient::connect(addr).expect("connect for export");
    let mut image = Vec::new();
    let mut chunk = 0u32;
    loop {
        match client
            .request(&WireRequest::MigrateExport { shard, chunk })
            .expect("export request")
        {
            WireResponse::ExportChunk {
                total,
                chunk: got,
                bytes,
            } => {
                assert_eq!(got, chunk);
                image.extend_from_slice(&bytes);
                chunk += 1;
                if chunk == total {
                    return image;
                }
            }
            other => panic!("export answered {other:?}"),
        }
    }
}

/// One shard-addressed lookup straight at a node, bypassing the router
/// (and its trust filters) entirely.
fn direct_lookup(addr: SocketAddr, shard: u32, epoch: u64, key: u64) -> Option<Vec<u64>> {
    let mut client = TcpClient::connect(addr).expect("direct connect");
    match client
        .request(&WireRequest::ShardOp {
            shard,
            epoch,
            op: Op::Lookup(key),
        })
        .expect("direct lookup")
    {
        WireResponse::Reply(Reply::Lookup(sat)) => sat,
        other => panic!("direct lookup answered {other:?}"),
    }
}

/// A minority-partitioned replica set must never acknowledge below the
/// write quorum: with `write_quorum = k = 2`, any shard with a replica
/// behind the partition refuses with a typed [`ClusterError::NoQuorum`],
/// while shards fully on the majority side keep acknowledging. After
/// heal + repair, the refused keys insert cleanly and everything acked
/// reads back exactly.
///
/// The minority is one node of four: with `k = 2` every shard keeps a
/// majority-side replica, so the post-heal repair always has a trusted
/// re-replication source. (A split that swallows *both* replicas of a
/// shard leaves it unrecoverable by design — the router refuses to
/// re-image from an untrusted holder.)
#[test]
fn minority_partition_never_acks_below_write_quorum() {
    const NODES: usize = 4;
    const DARK: usize = 3;

    let cfg = ClusterConfig {
        shards: 16,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let chaos = ChaosNet::start(NetFaultPlan::new(), &addrs).expect("chaos start");
    let router = ClusterRouter::new(
        cfg,
        &chaos.addrs(),
        &weights,
        RouterConfig {
            retry: RetryPolicy::none(),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            request_deadline: Duration::from_millis(250),
            write_quorum: 2,
            read_cache: None,
        },
    );

    // Sort candidate keys into the two classes under the epoch-0 map:
    // shards untouched by the dark node keep full quorum, shards with a
    // replica on it cannot reach `write_quorum = k`.
    let map = router.map_snapshot();
    let majority: Vec<usize> = (0..NODES).filter(|&n| n != DARK).collect();
    let seed = suite_seed();
    let mut majority_keys = Vec::new();
    let mut minority_keys = Vec::new();
    for i in 0..4000u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        let replicas = map.replicas(cfg.shard_of(key));
        if replicas.contains(&DARK) {
            if minority_keys.len() < 40 {
                minority_keys.push(key);
            }
        } else if majority_keys.len() < 40 {
            majority_keys.push(key);
        }
        if majority_keys.len() == 40 && minority_keys.len() == 40 {
            break;
        }
    }
    assert_eq!(majority_keys.len(), 40);
    assert_eq!(minority_keys.len(), 40);

    chaos.partition(&[&majority, &[DARK]]);

    let mut acked = Vec::new();
    for &key in &majority_keys {
        router
            .insert(key, &[mix64(key)])
            .unwrap_or_else(|e| panic!("majority-pair write {key} must ack in the partition: {e}"));
        acked.push(key);
    }
    for &key in &minority_keys {
        match router.insert(key, &[mix64(key)]) {
            Err(ClusterError::NoQuorum { acked, needed, .. }) => {
                assert!(acked < needed, "refusal must be below quorum");
            }
            other => panic!("minority-reaching write {key} must refuse with NoQuorum, got {other:?}"),
        }
    }
    let stats = router.stats();
    assert_eq!(stats.writes_acked, majority_keys.len() as u64);
    assert_eq!(stats.writes_refused, minority_keys.len() as u64);

    // Heal, repair (the bypassed dark replica was latched suspect), and
    // everything — including the formerly refused keys — serves
    // exactly.
    chaos.heal();
    let reports = router.repair().expect("repair");
    assert_eq!(reports.len(), 1, "repair must declare exactly the dark node");
    assert!(
        reports[0].failed.is_empty(),
        "repair failures: {:?}",
        reports[0].failed
    );
    for &key in &minority_keys {
        router
            .insert(key, &[mix64(key)])
            .unwrap_or_else(|e| panic!("post-heal insert of {key}: {e}"));
        acked.push(key);
    }
    for &key in &acked {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("post-heal lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "acked write {key} lost across the partition"
        );
    }

    chaos.shutdown();
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// A partitioned-then-healed cluster loses zero acknowledged writes,
/// and converges by epoch fencing: after the repair's epoch bump, a
/// client still routing under the old epoch is refused with
/// [`ServeError::StaleEpoch`] — the split-brain guard that keeps a
/// stale map from ever reading a moved shard's leftovers.
#[test]
fn partition_heal_loses_nothing_and_fences_stale_epochs() {
    const NODES: usize = 3;
    const DARK: usize = 2;

    let cfg = ClusterConfig {
        shards: 8,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let chaos = ChaosNet::start(NetFaultPlan::new(), &addrs).expect("chaos start");
    let router = ClusterRouter::new(
        cfg,
        &chaos.addrs(),
        &weights,
        RouterConfig {
            retry: RetryPolicy::none(),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            request_deadline: Duration::from_millis(250),
            write_quorum: 1,
            read_cache: None,
        },
    );

    let seed = suite_seed().wrapping_add(1);
    let mut acked = Vec::new();
    for i in 0..150u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        if router.insert(key, &[mix64(key)]).is_ok() {
            acked.push(key);
        }
    }

    // Node 2 goes dark; with k = 2 every shard keeps a majority-side
    // replica, so quorum-1 writes keep acking — the first write routed
    // through the dark node pays one deadline, latches it, and the rest
    // flow.
    chaos.partition(&[&[0, 1], &[DARK]]);
    for i in 150..300u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        router
            .insert(key, &[mix64(key)])
            .unwrap_or_else(|e| panic!("partitioned write {key} must still reach quorum: {e}"));
        acked.push(key);
    }
    assert!(
        router.node_suspect(DARK),
        "a write proceeded without the dark node; it must be latched"
    );

    // Heal the partition and repair: the dark node missed acked writes,
    // so it is re-replicated away from and stays untrusted.
    chaos.heal();
    let reports = router.repair().expect("repair");
    assert_eq!(reports.len(), 1, "repair must declare exactly the dark node");
    assert!(reports[0].failed.is_empty(), "failures: {:?}", reports[0].failed);
    assert_eq!(router.epoch(), 1);
    for &key in &acked {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("post-heal lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "acked write {key} lost across partition + heal"
        );
    }

    // The split-brain guard, explicitly: a client that slept through
    // the epoch bump and still routes under epoch 0 is refused.
    let map = router.map_snapshot();
    let shard = map.shards_on(0)[0];
    let mut stale_client = TcpClient::connect(addrs[0]).expect("stale client connect");
    match stale_client
        .request(&WireRequest::ShardOp {
            shard,
            epoch: 0,
            op: Op::Lookup(acked[0]),
        })
        .expect("stale request crosses the wire")
    {
        WireResponse::Err(ServeError::StaleEpoch { .. }) => {}
        other => panic!("stale-epoch request must be fenced, got {other:?}"),
    }

    chaos.shutdown();
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// One full flaky-link run: fresh cluster, fresh proxy with the seeded
/// plan, a single-threaded op sequence, then a disarmed audit. Returns
/// everything a determinism comparison needs.
struct FlakyRun {
    outcomes: Vec<Result<(), ClusterError>>,
    stats: RouterStats,
    images: Vec<(usize, u32, Vec<u8>)>,
}

fn run_flaky_drill(seed: u64) -> FlakyRun {
    const NODES: usize = 3;
    const KEYS: u64 = 80;

    let cfg = ClusterConfig {
        shards: 12,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let plan = NetFaultPlan::random(seed, NODES, 8, 9);
    let chaos = ChaosNet::start(plan, &addrs).expect("chaos start");
    let router = ClusterRouter::new(
        cfg,
        &chaos.addrs(),
        &weights,
        RouterConfig {
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(1),
            },
            breaker_threshold: 2,
            // ZERO: the breaker half-opens instantly, so whether a
            // request is allowed never depends on wall-clock timing —
            // the whole outcome sequence is a function of the plan.
            breaker_cooldown: Duration::ZERO,
            connect_timeout: Duration::from_secs(1),
            request_deadline: Duration::from_millis(250),
            write_quorum: 2,
            read_cache: None,
        },
    );

    // Single-threaded traffic: the per-connection frame clocks advance
    // in program order, so the plan's windows fire identically on every
    // run with this seed.
    let mut outcomes = Vec::new();
    let mut acked = Vec::new();
    for i in 0..KEYS {
        let key = mix64(seed ^ i) % (1 << 21);
        let wrote = router.insert(key, &[mix64(key)]);
        if wrote.is_ok() {
            acked.push(key);
        }
        outcomes.push(wrote);
        outcomes.push(router.lookup(key).map(|_| ()));
    }

    // Quiesce the plan and audit over a clean transport. With
    // `write_quorum = k`, an ack certifies the write on *every* mapped
    // replica — auditable straight off the primary, whatever the latch
    // state the chaos left behind.
    chaos.disarm();
    let map = router.map_snapshot();
    for &key in &acked {
        let shard = cfg.shard_of(key);
        let got = direct_lookup(addrs[map.primary(shard)], shard, map.epoch(), key);
        assert_eq!(
            got,
            Some(vec![mix64(key)]),
            "acked write {key} lost under the flaky link"
        );
    }
    let images: Vec<(usize, u32, Vec<u8>)> = (0..NODES)
        .flat_map(|n| {
            map.shards_on(n)
                .into_iter()
                .map(move |s| (n, s))
                .collect::<Vec<_>>()
        })
        .map(|(n, s)| (n, s, pull_image(addrs[n], s)))
        .collect();

    let stats = router.stats();
    chaos.shutdown();
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    FlakyRun {
        outcomes,
        stats,
        images,
    }
}

/// Traffic over a flaky link (seeded drop+delay plan) completes with
/// typed errors only — the asserts inside the run — and the whole drill
/// replays deterministically: two fresh runs from the same
/// [`NetFaultPlan::random`] seed produce identical per-op outcomes,
/// identical [`RouterStats`], and byte-identical final shard images.
#[test]
fn flaky_link_drill_replays_deterministically_from_the_seed() {
    let seed = suite_seed().wrapping_add(2);
    let first = run_flaky_drill(seed);
    let second = run_flaky_drill(seed);

    assert_eq!(
        first.outcomes, second.outcomes,
        "per-op outcomes diverged between identically seeded runs"
    );
    assert_eq!(
        first.stats, second.stats,
        "router stats diverged between identically seeded runs"
    );
    assert_eq!(first.images.len(), second.images.len());
    for ((n1, s1, img1), (n2, s2, img2)) in first.images.iter().zip(&second.images) {
        assert_eq!((n1, s1), (n2, s2));
        assert_eq!(
            img1, img2,
            "shard {s1} image on node {n1} diverged between identically seeded runs"
        );
    }
    assert!(
        first.stats.transport_failures > 0,
        "the plan must actually have faulted traffic (seed {seed:#x})"
    );
}

/// The heartbeater latches a partitioned node suspect within the gated
/// bound — proactively, before any client write pays a timeout — and
/// the router never acknowledges through the suspect: quorum writes
/// keep flowing over the survivors with zero transport failures.
#[test]
fn heartbeat_detects_partitioned_node_within_three_intervals() {
    const NODES: usize = 3;
    const DARK: usize = 2;
    const INTERVAL: Duration = Duration::from_millis(200);

    let cfg = ClusterConfig {
        shards: 8,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (nodes, addrs) = start_cluster(cfg, &weights);
    let chaos = ChaosNet::start(NetFaultPlan::new(), &addrs).expect("chaos start");
    let router = Arc::new(ClusterRouter::new(
        cfg,
        &chaos.addrs(),
        &weights,
        RouterConfig {
            retry: RetryPolicy::none(),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            request_deadline: Duration::from_secs(5),
            write_quorum: 1,
            read_cache: None,
        },
    ));
    let heartbeater = Heartbeater::start(
        Arc::clone(&router),
        HeartbeatConfig {
            interval: INTERVAL,
            probe_timeout: Duration::from_millis(60),
            suspect_after: 2,
            auto_repair: false,
        },
    );

    // Let the heartbeater see a healthy cluster first, then cut one
    // node off. No client traffic runs — detection must be proactive.
    std::thread::sleep(INTERVAL);
    chaos.partition(&[&[0, 1], &[DARK]]);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !router.node_suspect(DARK) {
        assert!(
            Instant::now() < deadline,
            "heartbeat never latched the partitioned node"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let stats = router.stats();
    assert_eq!(stats.heartbeat_detections, 1, "exactly one proactive detection");
    assert!(
        stats.detection_latency_ms_max <= 3 * INTERVAL.as_millis() as u64,
        "detection took {} ms, bound is three intervals ({} ms)",
        stats.detection_latency_ms_max,
        3 * INTERVAL.as_millis()
    );
    assert_eq!(
        stats.transport_failures, 0,
        "proactive detection means no client request ever paid for the dark node"
    );

    // Client traffic arrives only now: every write acks over the
    // survivors (the suspect is out of the route set), still without a
    // single transport failure.
    let seed = suite_seed().wrapping_add(3);
    let mut acked = Vec::new();
    for i in 0..80u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        router
            .insert(key, &[mix64(key)])
            .unwrap_or_else(|e| panic!("write {key} must ack past the suspect: {e}"));
        acked.push(key);
    }
    assert_eq!(
        router.stats().transport_failures,
        0,
        "no write may be routed into the suspected node"
    );
    assert!(router.node_suspect(DARK), "the latch holds under traffic");

    let hb = heartbeater.stop();
    assert_eq!(hb.detections, 1);
    assert!(hb.probes_missed >= 2, "suspicion took at least two misses");
    assert!(hb.probes_ok > 0, "the healthy warm-up answered probes");
    assert_eq!(hb.last_detection_latency_ms, stats.detection_latency_ms_max);

    // Heal + repair + audit closes the loop.
    chaos.heal();
    let reports = router.repair().expect("repair");
    assert_eq!(reports.len(), 1);
    assert!(reports[0].failed.is_empty(), "failures: {:?}", reports[0].failed);
    for &key in &acked {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("post-repair lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "acked write {key} lost across detection + repair"
        );
    }

    chaos.shutdown();
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// `fail_node` drives its map delta's moves on the migration thread
/// pool; every re-replicated shard must still land **byte-identical**
/// to its surviving primary's frozen image.
#[test]
fn concurrent_fail_node_moves_re_replicate_byte_identically() {
    const NODES: usize = 4;
    const VICTIM: usize = 1;

    let cfg = ClusterConfig {
        shards: 16,
        replication: 2,
        shard_capacity: 512,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (mut nodes, addrs) = start_cluster(cfg, &weights);
    let router = ClusterRouter::new(cfg, &addrs, &weights, RouterConfig::default());

    let seed = suite_seed().wrapping_add(4);
    let mut acked = Vec::new();
    for i in 0..400u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        if router.insert(key, &[mix64(key)]).is_ok() {
            acked.push(key);
        }
    }

    nodes[VICTIM].take().unwrap().kill();
    let report = router.fail_node(VICTIM).expect("fail_node");
    assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
    assert!(
        report.delta.moves.len() >= 2,
        "the drill needs multiple moves to exercise the pool, got {}",
        report.delta.moves.len()
    );

    let map = router.map_snapshot();
    for mv in &report.delta.moves {
        let primary = map.primary(mv.shard);
        assert_ne!(primary, mv.to, "a move's target trails its source in replica order");
        let primary_image = pull_image(addrs[primary], mv.shard);
        let moved_image = pull_image(addrs[mv.to], mv.shard);
        assert_eq!(
            primary_image, moved_image,
            "shard {} image diverges on its new replica",
            mv.shard
        );
        assert!(!primary_image.is_empty());
    }
    for &key in &acked {
        assert_eq!(
            router.lookup(key).unwrap_or_else(|e| panic!("post-repair lookup of {key}: {e}")),
            Some(vec![mix64(key)]),
            "acked write {key} lost across the concurrent re-replication"
        );
    }

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// The router's stats and the heartbeater's probe counters mirror into
/// one [`MetricsRegistry`], so a Prometheus / JSON snapshot and the
/// in-process structs always agree — counter for counter.
#[test]
fn router_stats_and_metrics_registry_agree() {
    const NODES: usize = 2;
    const VICTIM: usize = 1;

    let cfg = ClusterConfig {
        shards: 4,
        replication: 2,
        shard_capacity: 256,
        ..ClusterConfig::default()
    };
    let weights = [1u32; NODES];
    let (mut nodes, addrs) = start_cluster(cfg, &weights);
    let registry = MetricsRegistry::new();
    let router = Arc::new(ClusterRouter::new(
        cfg,
        &addrs,
        &weights,
        RouterConfig {
            retry: RetryPolicy::none(),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(20),
            connect_timeout: Duration::from_millis(250),
            request_deadline: Duration::from_secs(5),
            write_quorum: 1,
            read_cache: None,
        },
    ));
    router.set_metrics(&registry);
    let heartbeater = Heartbeater::start_with_metrics(
        Arc::clone(&router),
        HeartbeatConfig {
            interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(30),
            suspect_after: 2,
            auto_repair: false,
        },
        &registry,
    );

    let seed = suite_seed().wrapping_add(5);
    for i in 0..60u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        let _ = router.insert(key, &[mix64(key)]);
        let _ = router.lookup(key);
    }
    nodes[VICTIM].take().unwrap().kill();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !router.node_suspect(VICTIM) {
        assert!(Instant::now() < deadline, "heartbeat never latched the killed node");
        std::thread::sleep(Duration::from_millis(10));
    }
    for i in 60..120u64 {
        let key = mix64(seed ^ i) % (1 << 21);
        let _ = router.insert(key, &[mix64(key)]);
        let _ = router.lookup(key);
    }
    // Quiesce the probe thread before comparing, so neither side moves
    // between the two reads.
    let hb = heartbeater.stop();

    let stats = router.stats();
    let counter = |name: &str, labels: &[(&str, &str)]| registry.counter(name, labels).get();
    assert_eq!(counter("cluster_router_writes_acked", &[]), stats.writes_acked);
    assert_eq!(counter("cluster_router_writes_refused", &[]), stats.writes_refused);
    assert_eq!(
        counter("cluster_router_reads", &[("path", "primary")]),
        stats.reads_primary
    );
    assert_eq!(
        counter("cluster_router_reads", &[("path", "failover")]),
        stats.reads_failover
    );
    assert_eq!(
        counter("cluster_router_transport_failures", &[]),
        stats.transport_failures
    );
    assert_eq!(
        counter("cluster_router_suspect_transitions", &[]),
        stats.suspects_latched
    );
    assert_eq!(
        counter("cluster_router_heartbeat_detections", &[]),
        stats.heartbeat_detections
    );
    assert_eq!(stats.heartbeat_detections, hb.detections);
    assert_eq!(counter("cluster_heartbeat_probes_missed", &[]), hb.probes_missed);
    let rtt = registry.histogram("cluster_heartbeat_probe_rtt_us", &[]).snapshot();
    assert!(!rtt.is_empty(), "answered probes must land in the RTT histogram");
    let latency = registry
        .histogram("cluster_heartbeat_detection_latency_ms", &[])
        .snapshot();
    assert!(!latency.is_empty(), "the detection must land in the latency histogram");
    let rendered = registry.to_prometheus();
    assert!(
        rendered.contains("cluster_router_writes_acked"),
        "router counters must render in the Prometheus snapshot"
    );

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Two full `fail_node` / `restore_node` cycles race live writer
    /// threads: every in-flight op resolves to an ack or a typed error
    /// (the StaleEpoch map-refresh path under concurrent epoch bumps),
    /// zero acked writes are lost, and the epochs converge.
    #[test]
    fn fail_restore_cycles_race_live_traffic(case_seed in 0u64..1 << 32) {
        const NODES: usize = 4;
        const VICTIM: usize = 2;
        const WRITERS: u64 = 2;
        const KEYS_PER_WRITER: u64 = 160;

        let cfg = ClusterConfig {
            shards: 16,
            replication: 2,
            shard_capacity: 512,
            ..ClusterConfig::default()
        };
        let weights = [1u32; NODES];
        let (nodes, addrs) = start_cluster(cfg, &weights);
        let router = ClusterRouter::new(
            cfg,
            &addrs,
            &weights,
            RouterConfig {
                retry: RetryPolicy {
                    attempts: 2,
                    base_delay: Duration::from_millis(5),
                    max_delay: Duration::from_millis(20),
                },
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_millis(20),
                connect_timeout: Duration::from_secs(1),
                request_deadline: Duration::from_secs(30),
                write_quorum: 1,
                read_cache: None,
            },
        );

        let seed = suite_seed() ^ case_seed;
        let acked: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let router = &router;
                let acked = &acked;
                s.spawn(move || {
                    for i in 0..KEYS_PER_WRITER {
                        let key = (mix64(seed ^ (t * KEYS_PER_WRITER + i)) % (1 << 19))
                            | (t << 19);
                        // An error here is a typed refusal (NoQuorum /
                        // Serve) — tolerated; only acks are audited.
                        if router.insert(key, &[mix64(key)]).is_ok() {
                            acked.lock().unwrap().push(key);
                        }
                    }
                });
            }
            // Two admin cycles mid-traffic: each bumps the epoch twice,
            // so writers keep tripping over StaleEpoch refusals and
            // refreshing their route. The scope joins everyone.
            let router = &router;
            let addrs = &addrs;
            s.spawn(move || {
                for _ in 0..2 {
                    let down = router.fail_node(VICTIM).expect("fail_node");
                    assert!(down.failed.is_empty(), "failures: {:?}", down.failed);
                    std::thread::sleep(Duration::from_millis(30));
                    let up = router
                        .restore_node(VICTIM, addrs[VICTIM])
                        .expect("restore_node");
                    assert!(up.failed.is_empty(), "failures: {:?}", up.failed);
                    std::thread::sleep(Duration::from_millis(30));
                }
            });
        });

        prop_assert_eq!(router.epoch(), 4, "two cycles, two bumps each");
        prop_assert!(
            !router.node_suspect(VICTIM),
            "the final restore must have cleared the latch"
        );
        let acked = acked.into_inner().unwrap();
        prop_assert!(acked.len() > 100, "drill needs real traffic, got {}", acked.len());
        for &key in &acked {
            let got = router
                .lookup(key)
                .unwrap_or_else(|e| panic!("post-churn lookup of {key}: {e}"));
            prop_assert_eq!(
                got,
                Some(vec![mix64(key)]),
                "acked write {} lost across fail/restore churn",
                key
            );
        }

        for node in nodes.into_iter().flatten() {
            node.shutdown();
        }
    }
}
