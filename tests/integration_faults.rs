//! Fault-injection properties, generic over every dictionary front-end:
//! each front runs behind `dyn Dict` under pseudo-random [`FaultPlan`]s
//! (dead disks, transient read windows, torn writes, bit rot) with
//! integrity checksums sealed over the built state. Three invariants:
//!
//! 1. **No panics**, ever — hits, misses, and mutations under any plan.
//! 2. **No silent wrong data**: a returned satellite is exactly the
//!    record its key was stored with. Damage surfaces as misses (decodes
//!    fail closed over sanitized reads) or typed [`DictError::Io`]s,
//!    never as fabricated or cross-key data.
//! 3. **Monotone recovery**: after the plan is cleared (failed hardware
//!    replaced) and a scrub pass runs, every key answered exactly under
//!    the fault is still answered exactly — repair never loses ground.
//!
//! Inserted-under-fault keys are deliberately *not* asserted readable:
//! an insert interrupted by a fault may be rejected typed or land
//! partially (fail-closed), both of which are contract-conforming. For
//! the same reason the recovery baseline is measured *after* the
//! mutation phase — a rebuilding front may migrate records while the
//! plan is active, and a migration write that lands on a dead disk is
//! lost at the write path (typed where surfaced), not by the scrub.
//!
//! The vendored `proptest` stand-in draws cases from a fixed-seed
//! deterministic stream (see `integration_batch.rs`); set
//! `PROPTEST_SEED=<u64>` to explore a different corpus.

mod harness;

use expander::FamilyKind;
use harness::{frontends, frontends_with, padded_entries, sat, Frontend, KEY_SPACE};
use pdm::{FaultPlan, Word};
use pdm_dict::DictError;
use proptest::prelude::*;

/// A sorted, deduplicated key set.
fn key_set() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::hash_set(0u64..KEY_SPACE, 5..60).prop_map(|s| {
        let mut v: Vec<u64> = s.into_iter().collect();
        v.sort_unstable();
        v
    })
}

/// Probe keys guaranteed absent: generated keys stay below [`KEY_SPACE`],
/// padding keys just above it, insert-under-fault keys at `+5000`.
fn miss_probes() -> impl Iterator<Item = u64> {
    (0..40u64).map(|i| KEY_SPACE + 1_000 + i * 7)
}

fn drive(f: &Frontend, keys: &[u64], fault_seed: u64) -> Result<(), TestCaseError> {
    let entries = padded_entries(f, keys);
    let mut dict = (f.build)(entries.len(), &entries, 0xFA17);
    let Some(disks) = dict.disks_mut() else {
        // Front without an exposed array (sharded): fault injection goes
        // through its shards' own coverage.
        return Ok(());
    };
    // Seal checksums over the built (trusted) state, then injure it.
    disks.enable_integrity();
    let d = disks.disks();
    let bpd = (0..d).map(|i| disks.blocks_on(i)).min().unwrap_or(1).max(1);
    let mut plan = FaultPlan::random(fault_seed, d, bpd, 6);
    if fault_seed.is_multiple_of(2) {
        plan = plan.dead_disk((fault_seed % d as u64) as usize);
    }
    disks.set_fault_plan(plan);

    // (1) + (2) under the active plan.
    for (k, s) in &entries {
        let out = dict.lookup(*k);
        if let Some(got) = &out.satellite {
            prop_assert_eq!(
                got,
                s,
                "{}: wrong satellite for key {} under plan seed {:#x}",
                f.name,
                k,
                fault_seed
            );
        }
    }
    for probe in miss_probes() {
        let out = dict.lookup(probe);
        prop_assert!(
            out.satellite.is_none(),
            "{}: absent key {probe} fabricated under faults",
            f.name
        );
    }
    if !f.is_static {
        for i in 0..8u64 {
            let k = KEY_SPACE + 5_000 + i;
            // May succeed, fail typed (Io on an unreadable membership
            // probe, overflow on sanitized buckets), or land partially;
            // must never panic.
            match dict.insert(k, &sat(k, f.sigma)) {
                Ok(_) | Err(DictError::Io { .. }) => {}
                Err(e) => {
                    prop_assert!(
                        !matches!(e, DictError::SatelliteWidth { .. }),
                        "{}: insert under fault miswired: {e}",
                        f.name
                    );
                }
            }
        }
        let batch: Vec<(u64, Vec<Word>)> = (0..8u64)
            .map(|i| {
                let k = KEY_SPACE + 6_000 + i;
                (k, sat(k, f.sigma))
            })
            .collect();
        let _ = dict.insert_batch(&batch);
    }
    // Batched lookups under the plan obey the same no-wrong-data rule.
    let query: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
    let (batch_res, _) = dict.lookup_batch(&query);
    for ((k, s), got) in entries.iter().zip(&batch_res) {
        if let Some(got) = got {
            prop_assert_eq!(got, s, "{}: batch wrong satellite for {}", f.name, k);
        }
    }

    // Recovery baseline: what is still exactly answered once the dust of
    // the mutation phase settles, with the plan STILL active.
    let mut exact_during: Vec<u64> = Vec::new();
    for (k, s) in &entries {
        if dict.lookup(*k).satellite.as_ref() == Some(s) {
            exact_during.push(*k);
        }
    }

    // (3) replace the hardware, scrub, and require monotone recovery.
    dict.disks_mut().unwrap().clear_fault_plan();
    let report = dict.scrub();
    prop_assert!(
        report.blocks_scanned > 0,
        "{}: scrub scanned nothing",
        f.name
    );
    let during = exact_during.len();
    let mut lost: Vec<u64> = Vec::new();
    for (k, s) in &entries {
        let out = dict.lookup(*k);
        match &out.satellite {
            Some(got) => {
                prop_assert_eq!(got, s, "{}: wrong satellite for {} after scrub", f.name, k);
            }
            None => {
                if exact_during.contains(k) {
                    lost.push(*k);
                }
            }
        }
    }
    prop_assert!(
        lost.is_empty(),
        "{}: keys exact under the fault but lost after scrub (non-monotone recovery): \
         {lost:?} (of {during} exact during)",
        f.name
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn every_frontend_survives_random_fault_plans(
        keys in key_set(),
        fault_seed in 0u64..1 << 48,
    ) {
        for f in frontends() {
            drive(&f, &keys, fault_seed)?;
        }
    }
}

/// Family rotation: one canned fault plan (with a dead disk — the even
/// seed triggers it) driven through every front over every non-default
/// hash family, proving the seam composes with fault injection.
#[test]
fn fault_recovery_composes_with_every_family() {
    let keys = [3u64, 99, 1_024, 77_777, 524_287];
    for family in FamilyKind::ALL {
        if family == FamilyKind::default() {
            continue;
        }
        for f in frontends_with(family) {
            drive(&f, &keys, 0xFA_0172 & !1).unwrap();
        }
    }
}

/// The canned single-disk-failure drill the chaos CI step mirrors: under
/// one dead disk the one-probe case (b) answers **every** key exactly,
/// and after replacement + scrub the structure is fully exact again with
/// nothing left to repair.
#[test]
fn one_probe_b_single_disk_failure_drill() {
    let f = harness::frontend("one_probe_b");
    let es = padded_entries(&f, &harness::dense_keys(150));
    let mut dict = (f.build)(es.len(), &es, 0xD1E5);
    let disks = dict.disks_mut().unwrap();
    disks.enable_integrity();
    disks.set_fault_plan(FaultPlan::new().dead_disk(4));
    for (k, s) in &es {
        assert_eq!(
            dict.lookup(*k).satellite.as_ref(),
            Some(s),
            "key {k} lost under a single dead disk"
        );
    }
    dict.disks_mut().unwrap().clear_fault_plan();
    let report = dict.scrub();
    assert_eq!(report.unrepairable_keys, 0, "{report:?}");
    assert!(report.repaired_fields > 0, "{report:?}");
    for (k, s) in &es {
        let out = dict.lookup(*k);
        assert_eq!(out.satellite.as_ref(), Some(s));
        assert!(out.is_exact(), "key {k} still degraded after scrub");
    }
    let second = dict.scrub();
    assert_eq!(second.repaired_blocks, 0, "idle scrub repaired: {second:?}");
}
