//! Differential batch harness, generic over every dictionary front-end:
//! each front is described once (a `dyn Dict` constructor plus explicit
//! quirk flags, see `harness.rs`) and every property below runs against
//! all of them. `lookup_batch` must return results byte-identical to
//! sequential lookups and its charged cost must sit between the per-key
//! maximum and the sequential sum; `insert_batch` must leave the
//! structure in the same state as a sequential insertion loop —
//! including per-key error reporting for duplicates.
//!
//! Caveat: the vendored `proptest` stand-in (see `vendor/proptest`)
//! draws cases from a fixed-seed deterministic stream with no shrinking
//! or persistence, so by default every run replays the *identical* case
//! set — these properties are a reproducible corpus, not an ongoing
//! search for new inputs. Set `PROPTEST_SEED=<u64>` to explore a
//! different corpus (CI can rotate it); any failure replays exactly
//! under the seed that produced it.

mod harness;

use expander::FamilyKind;
use harness::{dense_keys, disk_image, frontends, frontends_with, padded_entries, sat, Frontend, KEY_SPACE, UNIVERSE};
use pdm::{BatchPlan, BlockAddr, DiskArray, PdmConfig, Word};
use pdm_dict::basic::{BasicDict, BasicDictConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::{Dict, DictError, DictParams, Dictionary, ErrorKind};
use proptest::prelude::*;

/// A sorted, deduplicated key set.
fn key_set() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::hash_set(0u64..KEY_SPACE, 5..60).prop_map(|s| {
        let mut v: Vec<u64> = s.into_iter().collect();
        v.sort_unstable();
        v
    })
}

/// Arbitrary probe keys — mostly misses, occasionally hits.
fn probes() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..KEY_SPACE, 1..50)
}

/// The lookup differential: batch results equal sequential results, and
/// the batch cost sits between the per-key max and the sequential sum.
fn diff_lookup_batch(f: &Frontend, keys: &[u64], extra: &[u64]) -> Result<(), TestCaseError> {
    let entries = padded_entries(f, keys);
    let mut dict = (f.build)(entries.len(), &entries, 0xBA7C);
    let mut queries: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
    queries.extend(extra);

    let mut seq = Vec::with_capacity(queries.len());
    let mut seq_sum = 0u64;
    let mut seq_max = 0u64;
    for &k in &queries {
        let out = dict.lookup(k);
        seq_sum += out.cost.parallel_ios;
        seq_max = seq_max.max(out.cost.parallel_ios);
        seq.push(out.satellite);
    }
    let (batch, cost) = dict.lookup_batch(&queries);
    prop_assert_eq!(&batch, &seq, "{}: batch lookups diverged from sequential", f.name);
    prop_assert!(
        cost.parallel_ios <= seq_sum,
        "{}: batch cost {} exceeds sequential sum {}",
        f.name,
        cost.parallel_ios,
        seq_sum
    );
    prop_assert!(
        cost.parallel_ios >= seq_max,
        "{}: batch cost {} undercuts the per-key max {}",
        f.name,
        cost.parallel_ios,
        seq_max
    );
    Ok(())
}

/// The insert differential: twin structures with identical seeds, one
/// inserting sequentially and one as a single batch, must report the
/// same per-key outcomes and hold the same contents.
fn diff_insert_batch(f: &Frontend, keys: &[u64]) -> Result<(), TestCaseError> {
    let mut entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, sat(k, f.sigma))).collect();
    if f.intra_batch_dup {
        // Duplicate appended so the error path is exercised in both twins.
        entries.push((keys[0], sat(keys[0], f.sigma)));
    }
    let cap = entries.len();
    let seed = 0x5E0;

    let mut seq_dict = (f.build)(cap, &[], seed);
    let seq_res: Vec<Result<(), ErrorKind>> = entries
        .iter()
        .map(|(k, s)| seq_dict.insert(*k, s).map(|_| ()).map_err(|e| e.kind()))
        .collect();

    let mut batch_dict = (f.build)(cap, &[], seed);
    let (batch_res, batch_cost) = batch_dict.insert_batch(&entries);
    let batch_res: Vec<Result<(), ErrorKind>> = batch_res
        .into_iter()
        .map(|r| r.map_err(|e| e.kind()))
        .collect();

    prop_assert_eq!(&batch_res, &seq_res, "{}: per-key insert outcomes diverged", f.name);
    prop_assert_eq!(batch_dict.len(), seq_dict.len(), "{}: lengths diverged", f.name);
    prop_assert!(batch_cost.parallel_ios >= 1);

    if f.byte_identical {
        let (img_a, writes_a) = {
            let d = seq_dict.disks().unwrap();
            (disk_image(d), d.stats().block_writes)
        };
        let (img_b, writes_b) = {
            let d = batch_dict.disks().unwrap();
            (disk_image(d), d.stats().block_writes)
        };
        prop_assert_eq!(img_b, img_a, "{}: disk images diverged", f.name);
        // The batch flushes each dirty block once; sequential pays one
        // write batch per key.
        prop_assert!(
            writes_b <= writes_a,
            "{}: batch wrote {} blocks, sequential only {}",
            f.name,
            writes_b,
            writes_a
        );
    } else {
        // Pacing-divergent fronts: contents must still agree.
        let (seq_found, _) = seq_dict.lookup_batch(keys);
        let (batch_found, _) = batch_dict.lookup_batch(keys);
        prop_assert_eq!(batch_found, seq_found, "{}: contents diverged", f.name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lookup_batch_matches_sequential_for_every_frontend(
        keys in key_set(),
        extra in probes(),
    ) {
        for f in frontends() {
            diff_lookup_batch(&f, &keys, &extra)?;
        }
    }

    #[test]
    fn insert_batch_matches_sequential_for_every_frontend(keys in key_set()) {
        for f in frontends().iter().filter(|f| !f.is_static) {
            diff_insert_batch(f, &keys)?;
        }
    }

    #[test]
    fn basic_dict_batch_cost_meets_the_plan_lower_bound(
        keys in key_set(),
        extra in probes(),
    ) {
        // Front-end-specific sharpening of the generic lower bound: for
        // BasicDict the probe addresses are observable, so the batch cost
        // can be pinned against the per-disk maximum of unique blocks.
        let d = 8;
        let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
        let mut alloc = DiskAllocator::new(d);
        let cfg = BasicDictConfig::log_load(keys.len().max(4), UNIVERSE, d, 1, 0xBA7C);
        let mut dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
        for &k in &keys {
            dict.insert(&mut disks, k, &[k]).unwrap();
        }
        let mut queries = keys.clone();
        queries.extend(&extra);
        let (_, cost) = dict.lookup_batch(&mut disks, &queries);
        let all: Vec<BlockAddr> = queries.iter().flat_map(|&k| dict.probe_addrs(k)).collect();
        let bound = BatchPlan::new(disks.disks(), &all).num_rounds() as u64;
        prop_assert!(
            cost.parallel_ios >= bound,
            "batch cost {} undercuts the per-disk max {}", cost.parallel_ios, bound
        );
    }

    #[test]
    fn dictionary_insert_batch_roundtrips_through_rebuilds(keys in key_set()) {
        // Rebuild-front quirk pinned explicitly: capacity far below the
        // key count, so insert_batch must ride through at least one
        // capacity-triggered rebuild, and a *second* batch of the same
        // keys (cross-batch duplicates, unlike the intra-batch dup the
        // generic harness skips for this front) must fail per key while
        // changing nothing.
        let params = DictParams::new(16, UNIVERSE, 1)
            .with_degree(20)
            .with_epsilon(0.5)
            .with_seed(0xFEEE);
        let mut dict = Dictionary::new(params, 64).unwrap();
        let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, vec![k])).collect();
        let (res, _) = Dict::insert_batch(&mut dict, &entries);
        for (i, r) in res.iter().enumerate() {
            prop_assert!(r.is_ok(), "fresh key {} rejected: {:?}", entries[i].0, r);
        }
        prop_assert_eq!(Dict::len(&dict), keys.len());
        let (found, _) = Dict::lookup_batch(&mut dict, &keys);
        for (i, f) in found.iter().enumerate() {
            prop_assert_eq!(f.as_deref(), Some(&[keys[i]][..]), "key {} lost", keys[i]);
        }
        let (res2, _) = Dict::insert_batch(&mut dict, &entries);
        for r in &res2 {
            prop_assert!(matches!(r, Err(DictError::DuplicateKey(_))), "duplicate accepted");
        }
        prop_assert_eq!(Dict::len(&dict), keys.len());
    }
}

/// Family rotation: the batch differentials above run over the default
/// family; this replays them under every other hash family, proving the
/// seam composes with the batch paths (satellite of the hashfam PR).
#[test]
fn batch_differentials_hold_under_family_rotation() {
    let keys = dense_keys(24);
    for family in FamilyKind::ALL {
        if family == FamilyKind::default() {
            continue;
        }
        for f in frontends_with(family) {
            diff_lookup_batch(&f, &keys, &[KEY_SPACE - 3, KEY_SPACE - 11]).unwrap();
            if !f.is_static {
                diff_insert_batch(&f, &keys).unwrap();
            }
        }
    }
}

#[test]
fn static_frontends_reject_mutation() {
    for f in frontends().iter().filter(|f| f.is_static) {
        let entries = padded_entries(f, &[1, 2, 3]);
        let mut dict = (f.build)(entries.len(), &entries, 0x57A7);
        let err = dict.insert(9999, &sat(9999, f.sigma)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnsupportedParams, "{}", f.name);
        let err = dict.delete(entries[0].0).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnsupportedParams, "{}", f.name);
    }
}
