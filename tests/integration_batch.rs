//! Differential batch harness: for every dictionary front-end,
//! `lookup_batch` must return results byte-identical to sequential
//! lookups, and its charged cost must sit between the per-disk-max
//! lower bound and the sequential sum. `insert_batch` must leave the
//! structure in the same state as a sequential insertion loop —
//! including per-key error reporting for duplicates.
//!
//! Caveat: the vendored `proptest` stand-in (see `vendor/proptest`)
//! draws cases from a fixed-seed deterministic stream with no shrinking
//! or persistence, so by default every run replays the *identical* case
//! set — these properties are a reproducible corpus, not an ongoing
//! search for new inputs. Set `PROPTEST_SEED=<u64>` to explore a
//! different corpus (CI can rotate it); any failure replays exactly
//! under the seed that produced it.

use pdm::{BatchPlan, BlockAddr, DiskArray, PdmConfig, Word};
use pdm_dict::basic::{BasicDict, BasicDictConfig};
use pdm_dict::concurrent::ShardedDictionary;
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::{DictError, DictParams, Dictionary, DynamicDict};
use proptest::prelude::*;

/// A sorted, deduplicated key set.
fn key_set() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::hash_set(0u64..(1 << 20), 5..60).prop_map(|s| {
        let mut v: Vec<u64> = s.into_iter().collect();
        v.sort_unstable();
        v
    })
}

/// Arbitrary probe keys — mostly misses, occasionally hits.
fn probes() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 20), 1..50)
}

/// Snapshot every block of every disk (byte-identity witness).
fn disk_image(disks: &DiskArray) -> Vec<Vec<Word>> {
    (0..disks.disks())
        .flat_map(|d| (0..disks.blocks_on(d)).map(move |b| (d, b)))
        .map(|(d, b)| disks.peek(BlockAddr::new(d, b)).to_vec())
        .collect()
}

fn basic_pair(n: usize, seed: u64) -> (DiskArray, DiskAllocator, BasicDictConfig) {
    let d = 8;
    let disks = DiskArray::new(PdmConfig::new(d, 64), 0);
    let alloc = DiskAllocator::new(d);
    let cfg = BasicDictConfig::log_load(n.max(4), 1 << 20, d, 1, seed);
    (disks, alloc, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn basic_dict_lookup_batch_matches_sequential(keys in key_set(), extra in probes()) {
        let (mut disks, mut alloc, cfg) = basic_pair(keys.len(), 0xBA7C);
        let mut dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
        for &k in &keys {
            dict.insert(&mut disks, k, &[k]).unwrap();
        }
        let mut queries = keys.clone();
        queries.extend(&extra);

        let mut seq = Vec::with_capacity(queries.len());
        let mut seq_sum = 0u64;
        for &k in &queries {
            let out = dict.lookup(&mut disks, k);
            seq_sum += out.cost.parallel_ios;
            seq.push(out.satellite);
        }
        let (batch, cost) = dict.lookup_batch(&mut disks, &queries);
        prop_assert_eq!(&batch, &seq, "batch lookups diverged from sequential");
        prop_assert!(
            cost.parallel_ios <= seq_sum,
            "batch cost {} exceeds sequential sum {}", cost.parallel_ios, seq_sum
        );
        // Hard lower bound: the per-disk maximum of unique probe blocks.
        let all: Vec<BlockAddr> = queries.iter().flat_map(|&k| dict.probe_addrs(k)).collect();
        let bound = BatchPlan::new(disks.disks(), &all).num_rounds() as u64;
        prop_assert!(
            cost.parallel_ios >= bound,
            "batch cost {} undercuts the per-disk max {}", cost.parallel_ios, bound
        );
    }

    #[test]
    fn basic_dict_insert_batch_is_byte_identical_to_sequential(keys in key_set()) {
        // Twin structures with identical seeds; one inserts sequentially,
        // the other as a single batch (with a duplicate appended so the
        // error path is exercised in both).
        let mut entries: Vec<(u64, Vec<Word>)> =
            keys.iter().map(|&k| (k, vec![k])).collect();
        entries.push((keys[0], vec![keys[0]]));

        let (mut disks_a, mut alloc_a, cfg) = basic_pair(keys.len(), 0x5E0);
        let mut seq_dict = BasicDict::create(&mut disks_a, &mut alloc_a, 0, cfg).unwrap();
        let seq_res: Vec<Result<(), DictError>> = entries
            .iter()
            .map(|(k, s)| seq_dict.insert(&mut disks_a, *k, s).map(|_| ()))
            .collect();

        let (mut disks_b, mut alloc_b, cfg) = basic_pair(keys.len(), 0x5E0);
        let mut batch_dict = BasicDict::create(&mut disks_b, &mut alloc_b, 0, cfg).unwrap();
        let (batch_res, batch_cost) = batch_dict.insert_batch(&mut disks_b, &entries);

        prop_assert_eq!(&batch_res, &seq_res, "per-key insert outcomes diverged");
        prop_assert_eq!(batch_dict.len(), seq_dict.len());
        prop_assert_eq!(disk_image(&disks_b), disk_image(&disks_a), "disk images diverged");
        // The batch flushes each dirty block once; sequential pays one
        // write batch per key.
        let seq_writes = disks_a.stats().block_writes;
        prop_assert!(disks_b.stats().block_writes <= seq_writes);
        prop_assert!(batch_cost.parallel_ios >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn one_probe_lookup_batch_matches_sequential(n in 20usize..100, extra in probes()) {
        for variant in [OneProbeVariant::CaseB, OneProbeVariant::CaseA] {
            let d = 13;
            let nd = match variant {
                OneProbeVariant::CaseA => 2 * d,
                OneProbeVariant::CaseB => d,
            };
            let mut disks = DiskArray::new(PdmConfig::new(nd, 64), 0);
            let mut alloc = DiskAllocator::new(nd);
            let entries: Vec<(u64, Vec<Word>)> = (0..n as u64)
                .map(|i| {
                    let k = i.wrapping_mul(0x9E37_79B9).wrapping_add(7) % (1 << 20);
                    (k, vec![k, k ^ 3])
                })
                .collect();
            let params = DictParams::new(n, 1 << 20, 2).with_degree(d).with_seed(77);
            let (dict, _) =
                OneProbeStatic::build(&mut disks, &mut alloc, 0, &params, variant, &entries)
                    .unwrap();

            let mut queries: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
            queries.extend(&extra);
            let mut seq = Vec::with_capacity(queries.len());
            let mut seq_sum = 0u64;
            let mut seq_max = 0u64;
            for &k in &queries {
                let out = dict.lookup(&mut disks, k);
                seq_sum += out.cost.parallel_ios;
                seq_max = seq_max.max(out.cost.parallel_ios);
                seq.push(out.satellite);
            }
            let (batch, cost) = dict.lookup_batch(&mut disks, &queries);
            prop_assert_eq!(&batch, &seq, "{:?} batch diverged", variant);
            prop_assert!(cost.parallel_ios <= seq_sum);
            // Unique-blocks-per-disk lower bound, witnessed per key.
            prop_assert!(cost.parallel_ios >= seq_max);
        }
    }

    #[test]
    fn dynamic_dict_lookup_batch_matches_sequential(keys in key_set(), extra in probes()) {
        let d = 20;
        let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
        let mut alloc = DiskAllocator::new(2 * d);
        let params = DictParams::new(keys.len().max(4), 1 << 20, 2)
            .with_degree(d)
            .with_epsilon(0.5)
            .with_seed(0xD1C7);
        let mut dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
        for &k in &keys {
            dict.insert(&mut disks, k, &[k, k ^ 9]).unwrap();
        }
        let mut queries = keys.clone();
        queries.extend(&extra);

        let mut seq = Vec::with_capacity(queries.len());
        let mut seq_sum = 0u64;
        let mut seq_max = 0u64;
        for &k in &queries {
            let out = dict.lookup(&mut disks, k);
            seq_sum += out.cost.parallel_ios;
            seq_max = seq_max.max(out.cost.parallel_ios);
            seq.push(out.satellite);
        }
        let (batch, cost) = dict.lookup_batch(&mut disks, &queries);
        prop_assert_eq!(&batch, &seq, "dynamic batch diverged from sequential");
        prop_assert!(cost.parallel_ios <= seq_sum);
        prop_assert!(cost.parallel_ios >= seq_max);
    }

    #[test]
    fn dynamic_dict_insert_batch_is_byte_identical_to_sequential(keys in key_set()) {
        let d = 20;
        let setup = || {
            let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
            let mut alloc = DiskAllocator::new(2 * d);
            let params = DictParams::new(keys.len().max(4), 1 << 20, 1)
                .with_degree(d)
                .with_epsilon(0.5)
                .with_seed(0xD1C8);
            let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
            (disks, dict)
        };
        let mut entries: Vec<(u64, Vec<Word>)> =
            keys.iter().map(|&k| (k, vec![k])).collect();
        entries.push((keys[0], vec![keys[0]])); // duplicate: error path

        let (mut disks_a, mut seq_dict) = setup();
        let seq_res: Vec<Result<(), DictError>> = entries
            .iter()
            .map(|(k, s)| seq_dict.insert(&mut disks_a, *k, s).map(|_| ()))
            .collect();

        let (mut disks_b, mut batch_dict) = setup();
        let (batch_res, _) = batch_dict.insert_batch(&mut disks_b, &entries);

        prop_assert_eq!(&batch_res, &seq_res, "per-key insert outcomes diverged");
        prop_assert_eq!(batch_dict.len(), seq_dict.len());
        prop_assert_eq!(batch_dict.level_population(), seq_dict.level_population());
        prop_assert_eq!(disk_image(&disks_b), disk_image(&disks_a), "disk images diverged");
    }

    #[test]
    fn dictionary_lookup_batch_matches_sequential(keys in key_set(), extra in probes()) {
        // Small initial capacity so batches regularly land mid-rebuild.
        let params = DictParams::new(16, 1 << 20, 1)
            .with_degree(20)
            .with_epsilon(0.5)
            .with_seed(0xFEED);
        let mut dict = Dictionary::new(params, 64).unwrap();
        for &k in &keys {
            dict.insert(k, &[k]).unwrap();
        }
        let mut queries = keys.clone();
        queries.extend(&extra);

        let mut seq = Vec::with_capacity(queries.len());
        let mut seq_sum = 0u64;
        let mut seq_max = 0u64;
        for &k in &queries {
            let out = dict.lookup(k);
            seq_sum += out.cost.parallel_ios;
            seq_max = seq_max.max(out.cost.parallel_ios);
            seq.push(out.satellite);
        }
        let (batch, cost) = dict.lookup_batch(&queries);
        prop_assert_eq!(&batch, &seq, "rebuilding dictionary batch diverged");
        prop_assert!(cost.parallel_ios <= seq_sum);
        prop_assert!(cost.parallel_ios >= seq_max);
    }

    #[test]
    fn dictionary_insert_batch_roundtrips_through_rebuilds(keys in key_set()) {
        // Capacity far below the key count: insert_batch must ride
        // through at least one capacity-triggered rebuild. (16 is the
        // smallest capacity at which even a *sequential* insert loop
        // survives its rebuild windows — below that the replacement can
        // fill before migration completes.)
        let params = DictParams::new(16, 1 << 20, 1)
            .with_degree(20)
            .with_epsilon(0.5)
            .with_seed(0xFEEE);
        let mut dict = Dictionary::new(params, 64).unwrap();
        let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, vec![k])).collect();
        let (res, _) = dict.insert_batch(&entries);
        for (i, r) in res.iter().enumerate() {
            prop_assert!(r.is_ok(), "fresh key {} rejected: {:?}", entries[i].0, r);
        }
        prop_assert_eq!(dict.len(), keys.len());
        let (found, _) = dict.lookup_batch(&keys);
        for (i, f) in found.iter().enumerate() {
            prop_assert_eq!(f.as_deref(), Some(&[keys[i]][..]), "key {} lost", keys[i]);
        }
        // A second batch of the same keys must fail per key, change nothing.
        let (res2, _) = dict.insert_batch(&entries);
        for r in &res2 {
            prop_assert!(matches!(r, Err(DictError::DuplicateKey(_))), "duplicate accepted");
        }
        prop_assert_eq!(dict.len(), keys.len());
    }

    #[test]
    fn sharded_dictionary_batch_matches_sequential(keys in key_set(), extra in probes()) {
        let params = DictParams::new(64, 1 << 20, 1)
            .with_degree(16)
            .with_epsilon(1.0)
            .with_seed(0x5A);
        let dict = ShardedDictionary::new(4, params, 128).unwrap();
        let entries: Vec<(u64, Vec<Word>)> = keys.iter().map(|&k| (k, vec![k])).collect();
        let (res, _) = dict.insert_batch(&entries);
        for r in &res {
            prop_assert!(r.is_ok());
        }
        let mut queries = keys.clone();
        queries.extend(&extra);

        let mut seq = Vec::with_capacity(queries.len());
        let mut seq_sum = 0u64;
        let mut seq_max = 0u64;
        for &k in &queries {
            let out = dict.lookup(k);
            seq_sum += out.cost.parallel_ios;
            seq_max = seq_max.max(out.cost.parallel_ios);
            seq.push(out.satellite);
        }
        let (batch, cost) = dict.lookup_batch(&queries);
        prop_assert_eq!(&batch, &seq, "sharded batch diverged from sequential");
        prop_assert!(cost.parallel_ios <= seq_sum);
        prop_assert!(cost.parallel_ios >= seq_max);
    }
}
