//! End-to-end harness integration: every subject runs every workload
//! correctly, and the Figure 1 shape assertions hold on small instances.

use bench::evaluate;
use bench::measure::{
    BTreeSubject, BasicSubject, CuckooSubject, DghpSubject, DynamicSubject, FolkloreSubject,
    OneProbeSubject, StripedSubject, Subject,
};
use bench::workloads::{clustered_keys, entries_for, miss_probes, uniform_keys};
use pdm_dict::one_probe::OneProbeVariant;

fn all_subjects(n: usize, sigma: usize) -> Vec<Box<dyn Subject>> {
    let block = 128;
    vec![
        Box::new(BasicSubject::new(n, sigma, 20, block, 1)),
        Box::new(OneProbeSubject::new(
            n,
            sigma,
            13,
            block,
            OneProbeVariant::CaseA,
            2,
        )),
        Box::new(OneProbeSubject::new(
            n,
            sigma,
            13,
            block,
            OneProbeVariant::CaseB,
            3,
        )),
        Box::new(DynamicSubject::new(n, sigma, 20, block, 0.5, 4)),
        Box::new(StripedSubject::new(n, sigma, 16, block, 5)),
        Box::new(CuckooSubject::new(n, sigma, 16, block, 6)),
        Box::new(DghpSubject::new(n, sigma, 16, block, 7)),
        Box::new(FolkloreSubject::new(n, sigma, 16, block, 4, 8)),
        Box::new(BTreeSubject::new(sigma, 16, block)),
    ]
}

#[test]
fn every_subject_is_correct_on_uniform_keys() {
    let n = 500;
    let sigma = 2;
    let keys = uniform_keys(n, 1 << 40, 0x11);
    let entries = entries_for(&keys, sigma);
    let misses = miss_probes(&keys, 1 << 40, 300, 0x12);
    for mut subject in all_subjects(n, sigma) {
        let report = evaluate(subject.as_mut(), &entries, &misses, &keys[..50])
            .unwrap_or_else(|e| panic!("{}: {e}", subject.name()));
        assert_eq!(report.failures, 0, "{} had lookup failures", report.name);
        assert!(report.lookup_avg >= 1.0);
    }
}

#[test]
fn every_subject_is_correct_on_clustered_keys() {
    // Sequential key runs — adversarial for weak hash mixing.
    let n = 400;
    let sigma = 1;
    let keys = clustered_keys(n, 1 << 40, 8, 0x21);
    let entries = entries_for(&keys, sigma);
    let misses = miss_probes(&keys, 1 << 40, 200, 0x22);
    for mut subject in all_subjects(n, sigma) {
        let report = evaluate(subject.as_mut(), &entries, &misses, &[])
            .unwrap_or_else(|e| panic!("{}: {e}", subject.name()));
        assert_eq!(
            report.failures, 0,
            "{} failed on clustered keys",
            report.name
        );
    }
}

#[test]
fn figure1_shape_assertions() {
    // The qualitative content of Figure 1, checked mechanically.
    let n = 600;
    let sigma = 2;
    let keys = uniform_keys(n, 1 << 40, 0x31);
    let entries = entries_for(&keys, sigma);
    let misses = miss_probes(&keys, 1 << 40, 400, 0x32);
    let mut reports = std::collections::HashMap::new();
    for mut subject in all_subjects(n, sigma) {
        let r = evaluate(subject.as_mut(), &entries, &misses, &[]).unwrap();
        reports.insert(r.name.clone(), r);
    }
    // One-probe rows: worst-case lookup exactly 1 parallel I/O.
    for name in [
        "§4.2 one-probe a (det., static)",
        "§4.2 one-probe b (det., static)",
        "cuckoo [13] (rand.)",
    ] {
        assert_eq!(reports[name].lookup_worst, 1, "{name}");
    }
    // §4.1: worst-case lookup 1 I/O, worst-case insert 2 I/Os.
    let basic = &reports["§4.1 basic (det.)"];
    assert_eq!(basic.lookup_worst, 1);
    assert_eq!(basic.insert_worst, Some(2));
    // §4.3: averages within 1+ɛ / 2+ɛ (ɛ = 0.5), misses exactly 1.
    let dynamic = &reports["§4.3 dynamic (det.)"];
    assert!(dynamic.lookup_avg <= 1.5);
    assert!(dynamic.insert_avg.unwrap() <= 2.5);
    assert_eq!(dynamic.miss_worst, 1);
    // B-tree pays its height: strictly more than 1 I/O per lookup once
    // the tree is taller than a root leaf (narrow stripes force height).
    let mut tall_btree = BTreeSubject::new(sigma, 4, 16);
    let tb = evaluate(&mut tall_btree, &entries, &misses, &[]).unwrap();
    assert!(tb.lookup_avg >= 2.0, "B-tree avg {}", tb.lookup_avg);
    assert!(
        tb.lookup_avg > dynamic.lookup_avg,
        "the dictionary must beat the B-tree on random access"
    );
    // Cuckoo's full-stripe bandwidth beats the key-value rows' σ words.
    assert!(reports["cuckoo [13] (rand.)"].bandwidth_words > sigma);
}

#[test]
fn deterministic_structures_are_reproducible_across_runs() {
    // Same seed -> byte-identical costs; different data layout decisions
    // never depend on ambient randomness.
    let n = 300;
    let keys = uniform_keys(n, 1 << 40, 0x41);
    let entries = entries_for(&keys, 1);
    let misses = miss_probes(&keys, 1 << 40, 100, 0x42);
    let run = || {
        let mut s = DynamicSubject::new(n, 1, 20, 128, 0.5, 99);
        let r = evaluate(&mut s, &entries, &misses, &[]).unwrap();
        (r.build_ios, r.lookup_avg.to_bits(), r.miss_avg.to_bits())
    };
    assert_eq!(run(), run());
}
