//! Theorem claims verified from the *exported metrics*, not internal
//! state: the observability layer must be able to witness the paper's
//! guarantees end to end. Also pins the zero-perturbation property of
//! installed hooks at the front-end level.

mod harness;

use harness::{dense_keys, frontend, padded_entries};
use pdm::metrics::{MetricsRegistry, PARALLEL_IOS_TOTAL};
use pdm_dict::traits::{DICT_OPS_TOTAL, DICT_OP_PARALLEL_IOS};
use std::sync::Arc;

/// Theorem 6: every OneProbeStatic lookup — hit or miss — costs exactly
/// one parallel I/O, read off the exported p99 (buckets 0 and 1 of the
/// log₂ histogram are exact, so p99 == 1 is the genuine claim, not a
/// bucket upper bound).
#[test]
fn one_probe_p99_lookup_is_one_in_exported_metrics() {
    let f = frontend("one_probe_b");
    let entries = padded_entries(&f, &dense_keys(200));
    let mut dict = (f.build)(entries.len(), &entries, 0x0b5e);

    let registry = Arc::new(MetricsRegistry::new());
    dict.set_metrics(Some(Arc::clone(&registry)));
    for (k, _) in &entries {
        assert!(dict.lookup(*k).found());
    }
    for miss in 0..200u64 {
        dict.lookup(harness::KEY_SPACE - 1 - miss);
    }
    dict.refresh_gauges();

    let snap = registry.snapshot();
    let labels = [("dict", "one_probe"), ("op", "lookup")];
    let hist = snap
        .histogram(DICT_OP_PARALLEL_IOS, &labels)
        .expect("lookup cost histogram exported");
    assert_eq!(hist.count, 400);
    assert_eq!(hist.percentile(0.50), 1, "p50 lookup != 1 parallel I/O");
    assert_eq!(hist.percentile(0.99), 1, "p99 lookup != 1 parallel I/O");
    assert_eq!(hist.max, 1, "max lookup != 1 parallel I/O");
    // Hits and misses split the `outcome` label; the sum covers both.
    assert_eq!(
        snap.counter(
            DICT_OPS_TOTAL,
            &[("dict", "one_probe"), ("op", "lookup"), ("outcome", "hit")],
        ),
        Some(200)
    );
    assert_eq!(snap.counter_sum(DICT_OPS_TOTAL, &labels), Some(400));

    // The same numbers must survive the serialized exports.
    let json = snap.to_json();
    assert!(json.contains("dict_op_parallel_ios"), "JSON lost the histogram");
    assert!(json.contains("one_probe"), "JSON lost the dict label");
    let prom = snap.to_prometheus();
    assert!(prom.contains("dict_op_parallel_ios_bucket"), "Prometheus lost the buckets");
    assert!(prom.contains("dict=\"one_probe\""), "Prometheus lost the dict label");
}

/// Lemma 3 via the gauges: BasicDict's maximum bucket load, exported by
/// `refresh_gauges`, stays within the average plus the small logarithmic
/// additive term (the same shape `basic.rs` pins internally).
#[test]
fn basic_max_bucket_load_within_lemma3_bound_in_exported_metrics() {
    let f = frontend("basic");
    let n = 800;
    let entries = padded_entries(&f, &dense_keys(n));
    let mut dict = (f.build)(n, &entries, 0x1e3);

    let registry = Arc::new(MetricsRegistry::new());
    dict.set_metrics(Some(Arc::clone(&registry)));
    dict.refresh_gauges();

    let snap = registry.snapshot();
    let labels = [("dict", "basic")];
    let max_load = snap
        .gauge("dict_max_bucket_load", &labels)
        .expect("max bucket load gauge exported") as f64;
    let buckets = snap
        .gauge("dict_buckets", &labels)
        .expect("bucket count gauge exported") as f64;
    assert!(buckets > 0.0);
    let avg = n as f64 / buckets;
    assert!(
        max_load <= avg + 12.0,
        "exported max load {max_load} too far above average {avg}"
    );
    assert_eq!(snap.gauge("dict_len", &labels), Some(n as i64));
}

/// Installing hooks must not change behavior: twin fronts with identical
/// seeds, one instrumented, must do byte-identical work. (The pdm crate
/// pins the same property at the executor level; this is the end-to-end
/// version through `dyn Dict`.) Also checks the exported parallel-I/O
/// counters reconcile with the disk array's own `IoStats`.
#[test]
fn installed_hooks_do_not_perturb_front_end_behavior() {
    let f = frontend("dynamic");
    let keys = dense_keys(120);
    let entries = padded_entries(&f, &keys);

    let mut plain = (f.build)(entries.len(), &entries, 0xD0);
    let mut hooked = (f.build)(entries.len(), &entries, 0xD0);
    let registry = Arc::new(MetricsRegistry::new());
    hooked.set_metrics(Some(Arc::clone(&registry)));

    let queries: Vec<u64> = keys.iter().copied().chain(7000..7050).collect();
    let (res_a, cost_a) = plain.lookup_batch(&queries);
    let (res_b, cost_b) = hooked.lookup_batch(&queries);
    assert_eq!(res_b, res_a, "hooks changed lookup results");
    assert_eq!(cost_b.parallel_ios, cost_a.parallel_ios, "hooks changed costs");
    for &k in &queries {
        assert_eq!(hooked.lookup(k).satellite, plain.lookup(k).satellite);
    }
    let stats_a = plain.disks().unwrap().stats();
    let stats_b = hooked.disks().unwrap().stats();
    assert_eq!(stats_b, stats_a, "hooks changed the I/O schedule");

    // The sink was installed after preload, so the counters cover exactly
    // the queries above; they must agree with the delta the disk array
    // itself counted (reads and writes split the same total).
    let snap = registry.snapshot();
    let read = snap.counter(PARALLEL_IOS_TOTAL, &[("op", "read")]).unwrap_or(0);
    let write = snap.counter(PARALLEL_IOS_TOTAL, &[("op", "write")]).unwrap_or(0);
    assert!(read > 0, "no read I/O reached the metrics sink");
    assert!(
        read + write <= stats_b.parallel_ios,
        "sink counted more I/O ({}) than the disks did ({})",
        read + write,
        stats_b.parallel_ios
    );
}
